#!/usr/bin/env bash
# Counterpart of the paper's res.sh (appendix A.6): summarizes the
# speedups recorded in output/*.csv.
set -euo pipefail
cd "$(dirname "$0")/.."
for f in output/*.csv; do
  [[ -e "$f" ]] || { echo "no results in output/; run scripts/evaluation.sh first"; exit 1; }
  echo "== $f =="
  if command -v column >/dev/null; then
    column -s, -t < "$f" | head -50
  else
    head -50 "$f" | tr ',' '\t'
  fi
  echo
done
