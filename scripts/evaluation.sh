#!/usr/bin/env bash
# Artifact-style evaluation script (counterpart of the paper's
# evaluation.sh, appendix A.5): builds the workspace and regenerates the
# requested figures into output/.
#
#   ./scripts/evaluation.sh -fig2 true     # Figure 2 experiments
#   ./scripts/evaluation.sh -fig3 true     # Figure 3 experiments (default)
#   ./scripts/evaluation.sh -fig5 true     # Figures 2-5 (everything)
set -euo pipefail
cd "$(dirname "$0")/.."

FIG2=false; FIG3=false; FIG5=false
while [[ $# -gt 0 ]]; do
  case "$1" in
    -fig2) FIG2="$2"; shift 2 ;;
    -fig3) FIG3="$2"; shift 2 ;;
    -fig5) FIG5="$2"; shift 2 ;;
    *) echo "unknown option $1"; exit 2 ;;
  esac
done
if [[ "$FIG2" != true && "$FIG3" != true && "$FIG5" != true ]]; then
  FIG3=true  # the paper's default
fi

cargo build --release -p limpet-harness

FLAGS=()
[[ "$FIG2" == true ]] && FLAGS+=(--fig2)
[[ "$FIG3" == true ]] && FLAGS+=(--fig3)
if [[ "$FIG5" == true ]]; then
  FLAGS=(--fig2 --fig3 --fig4 --fig5)
fi

exec cargo run --release -p limpet-harness --bin figures -- "${FLAGS[@]}"
