#!/usr/bin/env bash
# Tier-1 verification gate in one command.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p limpet-opt"
cargo build --release -p limpet-opt

echo "==> limpet-opt smoke (pipeline round-trip)"
./target/release/limpet-opt --list-passes > /dev/null
printf 'module @m {\n  func.func @compute() {\n    func.return\n  }\n}\n' \
  | ./target/release/limpet-opt --pipeline "const-prop,cse,dce" - > /dev/null

echo "==> cargo test -q"
cargo test -q

echo "==> FileCheck-lite golden pass tests"
cargo test -q -p limpet-pm --test filecheck_golden

echo "==> fault-injection suite (degradation chain + health guards + disk faults)"
cargo test -q -p limpet-harness --test fault_injection --test health_guard

echo "==> persistent kernel-cache suite (disk tier, integrity, concurrency)"
cargo test -q -p limpet-harness --test persistent_cache

echo "==> disk-cache persistence gate (warm second process, fault degradation)"
# Cold run populates a throwaway cache dir; a second, fresh process must
# then produce zero cold compiles and bit-identical trajectory digests;
# a third run with all three disk faults injected must degrade to
# recompiles (recorded incidents) while keeping the digests identical.
PERSIST_DIR=$(mktemp -d)
PERSIST_OUT=$(mktemp -d)
SUBSET=HodgkinHuxley,BeelerReuter,TenTusscherPanfilov
./target/release/figures --digest --models "$SUBSET" --cache-dir "$PERSIST_DIR" \
  > "$PERSIST_OUT/cold.txt"
cp output/digests.csv "$PERSIST_OUT/cold.csv"
./target/release/figures --digest --models "$SUBSET" --cache-dir "$PERSIST_DIR" \
  > "$PERSIST_OUT/warm.txt"
cp output/digests.csv "$PERSIST_OUT/warm.csv"
grep -q " 0 cold compilations" "$PERSIST_OUT/warm.txt" \
  || { echo "persistence gate: warm second process recompiled"; cat "$PERSIST_OUT/warm.txt"; exit 1; }
cmp "$PERSIST_OUT/cold.csv" "$PERSIST_OUT/warm.csv" \
  || { echo "persistence gate: warm digests diverged from cold"; exit 1; }
LIMPET_INJECT="disk-corrupt@3,disk-truncate@5,disk-stale-version@1" \
  ./target/release/figures --digest --models "$SUBSET" --cache-dir "$PERSIST_DIR" \
  > "$PERSIST_OUT/faulted.txt"
cp output/digests.csv "$PERSIST_OUT/faulted.csv"
grep -q "disk cache entry rejected" "$PERSIST_OUT/faulted.txt" \
  || { echo "persistence gate: injected disk faults left no incident"; cat "$PERSIST_OUT/faulted.txt"; exit 1; }
# The digest columns must match; the tier column may legitimately
# differ (a faulted lookup can finish on a different rung).
cmp <(cut -d, -f1-3 "$PERSIST_OUT/cold.csv") <(cut -d, -f1-3 "$PERSIST_OUT/faulted.csv") \
  || { echo "persistence gate: faulted digests diverged from cold"; exit 1; }
./target/release/figures --cache stat --cache-dir "$PERSIST_DIR" > /dev/null
./target/release/figures --cache clear --cache-dir "$PERSIST_DIR" | grep -q "cleared" \
  || { echo "persistence gate: cache clear failed"; exit 1; }
rm -rf "$PERSIST_DIR" "$PERSIST_OUT"

echo "==> real-thread differential suite (pool vs single-thread, bit-exact)"
cargo test -q -p limpet-harness --test real_threads

echo "==> real-thread figure gate (provenance tags + digest parity)"
# fig3 + fig4 with real threads on the CI subset: every CSV row must
# carry a measured|modeled provenance tag, the measured region must
# actually be exercised (fig4's T <= 2 points, via explicit
# oversubscription on 1-core runners; fig3's T=32 rows stay modeled),
# and trajectory digests must be bit-identical with and without the
# real-thread path enabled.
RT_DIR=$(mktemp -d)
RT_OUT=$(mktemp -d)
./target/release/figures --fig3 --fig4 --digest --real-threads --max-threads 2 \
  --models "$SUBSET" --cells 64 --steps 16 --repeats 3 --cache-dir "$RT_DIR" \
  > "$RT_OUT/real.txt"
cp output/fig3.csv "$RT_OUT/fig3.csv"
cp output/fig4.csv "$RT_OUT/fig4.csv"
cp output/digests.csv "$RT_OUT/real_digests.csv"
awk -F, 'NR > 1 && $4 != "measured" && $4 != "modeled" { bad = 1 }
         END { exit bad }' "$RT_OUT/fig3.csv" \
  || { echo "real-thread gate: fig3 row missing measured|modeled tag"; cat "$RT_OUT/fig3.csv"; exit 1; }
awk -F, 'NR > 1 && $5 != "measured" && $5 != "modeled" { bad = 1 }
         END { exit bad }' "$RT_OUT/fig4.csv" \
  || { echo "real-thread gate: fig4 row missing measured|modeled tag"; cat "$RT_OUT/fig4.csv"; exit 1; }
grep -q "measured" "$RT_OUT/fig4.csv" && grep -q "modeled" "$RT_OUT/fig4.csv" \
  || { echo "real-thread gate: fig4 must mix measured and modeled rows"; cat "$RT_OUT/fig4.csv"; exit 1; }
grep -q "measuring T <= 2" "$RT_OUT/real.txt" \
  || { echo "real-thread gate: measured region not announced"; cat "$RT_OUT/real.txt"; exit 1; }
./target/release/figures --digest --models "$SUBSET" \
  --cells 64 --steps 16 --cache-dir "$RT_DIR" > /dev/null
cmp output/digests.csv "$RT_OUT/real_digests.csv" \
  || { echo "real-thread gate: digests diverged from single-thread run"; exit 1; }
rm -rf "$RT_DIR" "$RT_OUT"

echo "==> native-tier gate (promotion, bit-identity, fault degradation, warm restart)"
# The CI-subset roster runs with native promotion on: blocking promotion
# must compile, probate, and hot-swap every model with full-state
# bit-identity against bytecode; the async path (--digest --native) must
# leave digests bit-identical to the bytecode tier regardless of swap
# timing; a warm second process must start at the native tier with zero
# recompiles; and each injected native fault must degrade cleanly to
# bytecode with the incident surfaced and nothing quarantined persisted.
NATIVE_DIR=$(mktemp -d)
NATIVE_OUT=$(mktemp -d)
./target/release/figures --digest --models "$SUBSET" --cells 64 --steps 400 \
  --cache-dir "$NATIVE_DIR" > "$NATIVE_OUT/bytecode.txt"
cp output/digests.csv "$NATIVE_OUT/bytecode.csv"
./target/release/figures --digest --models "$SUBSET" --cells 64 --steps 400 \
  --native --native-threshold 1 --cache-dir "$NATIVE_DIR" > "$NATIVE_OUT/async.txt"
cp output/digests.csv "$NATIVE_OUT/async.csv"
# Compare model/config/digest only: the async run legitimately reports
# tier native where the bytecode run reports optimized — the digest
# equality is the claim.
cmp <(cut -d, -f1-3 "$NATIVE_OUT/bytecode.csv") <(cut -d, -f1-3 "$NATIVE_OUT/async.csv") \
  || { echo "native gate: digests diverged under --native"; diff "$NATIVE_OUT/bytecode.csv" "$NATIVE_OUT/async.csv" || true; exit 1; }
./target/release/figures --native-bench --models "$SUBSET" --cells 64 --steps 100 \
  --repeats 2 --cache-dir "$NATIVE_DIR" > "$NATIVE_OUT/bench.txt"
grep -q "native-promoted" "$NATIVE_OUT/bench.txt" \
  || { echo "native gate: no model promoted"; cat "$NATIVE_OUT/bench.txt"; exit 1; }
grep -q "bits DIFF" "$NATIVE_OUT/bench.txt" \
  && { echo "native gate: native tier diverged from bytecode"; cat "$NATIVE_OUT/bench.txt"; exit 1; }
grep -q "native unavailable" "$NATIVE_OUT/bench.txt" \
  && { echo "native gate: a subset model failed to promote"; cat "$NATIVE_OUT/bench.txt"; exit 1; }
# Warm restart over the same cache dir: the shared objects load from
# disk (re-probated), so the process reaches the native tier with zero
# cc invocations.
./target/release/figures --native-bench --models "$SUBSET" --cells 64 --steps 100 \
  --repeats 2 --cache-dir "$NATIVE_DIR" > "$NATIVE_OUT/warm.txt"
grep -q "0 cc compile(s)" "$NATIVE_OUT/warm.txt" \
  || { echo "native gate: warm process recompiled native kernels"; cat "$NATIVE_OUT/warm.txt"; exit 1; }
grep -q "3 disk hit(s)" "$NATIVE_OUT/warm.txt" \
  || { echo "native gate: warm process did not load shared objects from disk"; cat "$NATIVE_OUT/warm.txt"; exit 1; }
grep -q "bits DIFF" "$NATIVE_OUT/warm.txt" \
  && { echo "native gate: warm native tier diverged"; cat "$NATIVE_OUT/warm.txt"; exit 1; }
# Injected native faults: each quarantines the native slot, degrades to
# bytecode bit-identically, surfaces the incident, and persists nothing.
./target/release/figures --digest --models HodgkinHuxley --cells 64 --steps 400 \
  --cache-dir "$NATIVE_OUT/hh-ref" > /dev/null
cp output/digests.csv "$NATIVE_OUT/hh.csv"
for FAULT in cc-fail dlopen-fail native-divergent compile-hang; do
  FDIR=$(mktemp -d)
  # A hung compiler is killed by the cc watchdog and quarantined under
  # its own incident kind, not the generic compiler-failure one.
  MARK="$FAULT"; [ "$FAULT" = compile-hang ] && MARK=cc-timeout
  LIMPET_INJECT="$FAULT@7" ./target/release/figures --digest --models HodgkinHuxley \
    --cells 64 --steps 400 --native --native-threshold 1 --cache-dir "$FDIR" \
    > "$NATIVE_OUT/fault-$FAULT.txt"
  cp output/digests.csv "$NATIVE_OUT/fault-$FAULT.csv"
  LIMPET_INJECT="$FAULT@7" ./target/release/figures --native-bench --models HodgkinHuxley \
    --cells 64 --steps 100 --repeats 1 --cache-dir "$FDIR" \
    >> "$NATIVE_OUT/fault-$FAULT.txt"
  cmp <(cut -d, -f1-3 "$NATIVE_OUT/hh.csv") <(cut -d, -f1-3 "$NATIVE_OUT/fault-$FAULT.csv") \
    || { echo "native gate: $FAULT run diverged from bytecode"; exit 1; }
  grep -q "\[$MARK\]" "$NATIVE_OUT/fault-$FAULT.txt" \
    || { echo "native gate: $MARK incident not surfaced"; cat "$NATIVE_OUT/fault-$FAULT.txt"; exit 1; }
  if ls "$FDIR"/native-*.lso > /dev/null 2>&1; then
    echo "native gate: $FAULT persisted a quarantined shared object"; ls "$FDIR"; exit 1
  fi
  rm -rf "$FDIR"
done
rm -rf "$NATIVE_DIR" "$NATIVE_OUT"

echo "==> native-tier test suites (unit + roster differential)"
cargo test -q -p limpet-harness --test native_tier
cargo test -q -p limpet-harness --lib native

echo "==> limpet-opt round-trip fuzz smoke (fixed-seed)"
cargo test -q -p limpet-opt --test fuzz_roundtrip

echo "==> easyml no-panic lint gate"
cargo clippy -q -p limpet-easyml -- -D clippy::unwrap_used -D clippy::expect_used

echo "==> vm_dispatch bench smoke (bytecode-optimizer regression gate)"
# Recomputes the deterministic executed-instrs/step of a 3-model subset
# and fails if any optimized count regressed above BENCH_vm_dispatch.json.
./target/release/vm_dispatch --check --models HodgkinHuxley,BeelerReuter,TenTusscherPanfilov

echo "==> simulation service gate (limpet-serve end-to-end)"
# Drives the daemon through the full service story: 12 concurrent jobs
# across 2 tenants over one shared kernel cache with digests bit-identical
# to the single-process figures driver; typed over-quota rejections; an
# injected-fault job degrading per-job while the daemon stays up; kill -9
# + restart resuming the journaled job with an identical digest; and
# SIGTERM / shutdown-verb clean exits.
SERVE_DIR=$(mktemp -d)
SERVE_OUT=$(mktemp -d)
SERVE_SOCK="$SERVE_DIR/serve.sock"
SERVE_PID=""
SERVE2_PID=""
TIGHT_PID=""
SLOW_PID=""
trap 'kill -9 ${SERVE_PID:-} ${SERVE2_PID:-} ${TIGHT_PID:-} ${SLOW_PID:-} 2>/dev/null || true' EXIT
CLIENT=./target/release/limpet-client

# Ground truth from the single-process driver, into the same cache dir
# the daemon will share (compile-once per machine).
./target/release/figures --digest --models "$SUBSET" --cells 64 --steps 16 \
  --cache-dir "$SERVE_DIR" > /dev/null
sort output/digests.csv > "$SERVE_OUT/expected.csv"

# --checkpoint-every is deliberately coarse here: the chunk-1 victim
# below would otherwise fsync a snapshot every single step of its
# headless re-run. The dedicated checkpoint gate covers mid-trajectory
# snapshot resume; this gate covers journal replay.
./target/release/limpet-serve --unix "$SERVE_SOCK" --workers 4 \
  --cache-dir "$SERVE_DIR" --journal "$SERVE_DIR/jobs.journal" \
  --checkpoint-every 1000 > "$SERVE_OUT/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] \
  || { echo "service gate: daemon did not come up"; cat "$SERVE_OUT/serve.log"; exit 1; }

# 3 models x 2 configs = 12 concurrent jobs round-robined over 2 tenants.
"$CLIENT" --unix "$SERVE_SOCK" drive --models "$SUBSET" \
  --configs baseline,limpetMLIR-AVX-512 --tenants ci-a,ci-b \
  --cells 64 --steps 16 | sort > "$SERVE_OUT/drive.csv"
cmp "$SERVE_OUT/expected.csv" "$SERVE_OUT/drive.csv" \
  || { echo "service gate: daemon digests diverged from figures --digest"; \
       diff "$SERVE_OUT/expected.csv" "$SERVE_OUT/drive.csv" || true; exit 1; }

# Injected fault: the job degrades to the reference tier (quarantining
# its kernel, not the daemon) and completes. The SSE config keeps the
# quarantined key disjoint from the parity configs above.
"$CLIENT" --unix "$SERVE_SOCK" submit --model HodgkinHuxley --config sse \
  --cells 16 --steps 8 --tenant ci-a --inject verify-fail@7 \
  > "$SERVE_OUT/fault.txt"
grep -q '"status":"done"' "$SERVE_OUT/fault.txt" \
  || { echo "service gate: injected-fault job did not complete"; cat "$SERVE_OUT/fault.txt"; exit 1; }
grep -q '"tier":"reference"' "$SERVE_OUT/fault.txt" \
  || { echo "service gate: injected-fault job did not degrade to reference tier"; cat "$SERVE_OUT/fault.txt"; exit 1; }
"$CLIENT" --unix "$SERVE_SOCK" stats > "$SERVE_OUT/stats.json"
grep -q '"kind":"tier-fallback"' "$SERVE_OUT/stats.json" \
  || { echo "service gate: stats verb does not report the tier-fallback incident"; cat "$SERVE_OUT/stats.json"; exit 1; }
grep -q '"quarantined":1' "$SERVE_OUT/stats.json" \
  || { echo "service gate: stats verb does not report the quarantined kernel"; cat "$SERVE_OUT/stats.json"; exit 1; }
"$CLIENT" --unix "$SERVE_SOCK" ping | grep -q '"event":"pong"' \
  || { echo "service gate: daemon died after the injected fault"; exit 1; }

# Reference digest for the crash-recovery job shape.
"$CLIENT" --unix "$SERVE_SOCK" submit --model HodgkinHuxley --cells 64 \
  --steps 20000 --chunk 20000 --id ref-victim --tenant ci-a > "$SERVE_OUT/ref.txt"
REF_DIGEST=$(grep -o '"digest":"[0-9a-f]\{16\}"' "$SERVE_OUT/ref.txt" | head -1)
[ -n "$REF_DIGEST" ] || { echo "service gate: no reference digest"; cat "$SERVE_OUT/ref.txt"; exit 1; }

# kill -9 mid-run: the victim streams one event per step to a reader
# sleeping 1 s per event, so it is deterministically stalled mid-run
# (blocked on its own backpressure) when the kill lands.
"$CLIENT" --unix "$SERVE_SOCK" submit --model HodgkinHuxley --cells 64 \
  --steps 20000 --chunk 1 --id victim --tenant ci-a --slow-ms 1000 \
  > /dev/null 2>&1 &
SLOW_PID=$!
sleep 2
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
kill "$SLOW_PID" 2>/dev/null || true
wait "$SLOW_PID" 2>/dev/null || true
SLOW_PID=""

# Restart over the same journal: the victim resumes headless and its
# digest must be bit-identical to the uninterrupted reference run.
./target/release/limpet-serve --unix "$SERVE_SOCK" --workers 2 \
  --cache-dir "$SERVE_DIR" --journal "$SERVE_DIR/jobs.journal" \
  --checkpoint-every 1000 > "$SERVE_OUT/serve2.log" 2>&1 &
SERVE2_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] \
  || { echo "service gate: daemon did not restart"; cat "$SERVE_OUT/serve2.log"; exit 1; }
RESUMED=""
for _ in $(seq 1 240); do
  "$CLIENT" --unix "$SERVE_SOCK" result --id victim > "$SERVE_OUT/victim.txt" || true
  if grep -q '"event":"done"' "$SERVE_OUT/victim.txt"; then RESUMED=yes; break; fi
  sleep 0.5
done
[ -n "$RESUMED" ] || { echo "service gate: resumed job never finished"; cat "$SERVE_OUT/serve2.log"; exit 1; }
VICTIM_DIGEST=$(grep -o '"digest":"[0-9a-f]\{16\}"' "$SERVE_OUT/victim.txt" | head -1)
[ "$VICTIM_DIGEST" = "$REF_DIGEST" ] \
  || { echo "service gate: resumed digest $VICTIM_DIGEST != reference $REF_DIGEST"; exit 1; }
"$CLIENT" --unix "$SERVE_SOCK" stats | grep -q '"resumed":1' \
  || { echo "service gate: restart did not resume exactly the victim"; exit 1; }
# Shutdown verb: clean exit, journal flushed.
"$CLIENT" --unix "$SERVE_SOCK" shutdown | grep -q '"event":"stopping"' \
  || { echo "service gate: shutdown verb not acknowledged"; exit 1; }
wait "$SERVE2_PID" \
  || { echo "service gate: daemon exited uncleanly after shutdown verb"; exit 1; }
SERVE2_PID=""

# Tight-quota daemon: per-tenant 429s under flood, 413 on an oversized
# job, and a clean SIGTERM exit.
TIGHT_SOCK="$SERVE_DIR/tight.sock"
./target/release/limpet-serve --unix "$TIGHT_SOCK" --workers 1 \
  --max-jobs 2 --max-cost 2000000 --cache-dir "$SERVE_DIR" \
  > "$SERVE_OUT/tight.log" 2>&1 &
TIGHT_PID=$!
for _ in $(seq 1 100); do [ -S "$TIGHT_SOCK" ] && break; sleep 0.1; done
[ -S "$TIGHT_SOCK" ] \
  || { echo "service gate: tight-quota daemon did not come up"; cat "$SERVE_OUT/tight.log"; exit 1; }
"$CLIENT" --unix "$TIGHT_SOCK" flood --model HodgkinHuxley --count 6 \
  --tenant bob --cells 64 --steps 20000 > "$SERVE_OUT/flood.txt"
grep -q '^rejected-429 ' "$SERVE_OUT/flood.txt" \
  || { echo "service gate: flood produced no 429 rejections"; cat "$SERVE_OUT/flood.txt"; exit 1; }
"$CLIENT" --unix "$TIGHT_SOCK" submit --model HodgkinHuxley --cells 8192 \
  --steps 100000 --tenant bob > "$SERVE_OUT/oversized.txt" 2>&1 || true
grep -q '"code":413' "$SERVE_OUT/oversized.txt" \
  || { echo "service gate: oversized job not rejected with 413"; cat "$SERVE_OUT/oversized.txt"; exit 1; }
kill -TERM "$TIGHT_PID"
wait "$TIGHT_PID" \
  || { echo "service gate: daemon exited uncleanly on SIGTERM"; exit 1; }
TIGHT_PID=""
trap - EXIT
rm -rf "$SERVE_DIR" "$SERVE_OUT"

echo "==> chaos survivability gate (seeded soak: deadlines, watchdog, hostile wire)"
# A fixed-seed chaos soak drives a deadline+watchdog-armed daemon through
# slow-loris writes, torn frames, mid-stream disconnects, and injected
# worker hangs across 2 tenants. The daemon must survive it all (still
# answering ping), the digest CSV must stay byte-identical to the
# single-process figures driver, and the wedged-worker machinery must
# actually have fired (watchdog reclaim + respawn in `survivability`).
# `timeout` puts a hard wall clock on the soak — a hang here is itself a
# gate failure.
CHAOS_DIR=$(mktemp -d)
CHAOS_OUT=$(mktemp -d)
CHAOS_SOCK="$CHAOS_DIR/chaos.sock"
CHAOS_PID=""
trap 'kill -9 ${CHAOS_PID:-} 2>/dev/null || true' EXIT
./target/release/figures --digest --models "$SUBSET" --cells 64 --steps 16 \
  --cache-dir "$CHAOS_DIR" > /dev/null
sort output/digests.csv > "$CHAOS_OUT/expected.csv"
./target/release/limpet-serve --unix "$CHAOS_SOCK" --workers 4 \
  --cache-dir "$CHAOS_DIR" --deadline-ms 60000 --watchdog-ms 200 \
  > "$CHAOS_OUT/serve.log" 2>&1 &
CHAOS_PID=$!
for _ in $(seq 1 100); do [ -S "$CHAOS_SOCK" ] && break; sleep 0.1; done
[ -S "$CHAOS_SOCK" ] \
  || { echo "chaos gate: daemon did not come up"; cat "$CHAOS_OUT/serve.log"; exit 1; }
timeout 300 "$CLIENT" --unix "$CHAOS_SOCK" --chaos --seed 1 --rounds 2 \
  --models "$SUBSET" --configs baseline,limpetMLIR-AVX-512 \
  --tenants chaos-a,chaos-b --cells 64 --steps 16 \
  > "$CHAOS_OUT/chaos.csv" 2> "$CHAOS_OUT/chaos.log" \
  || { echo "chaos gate: soak failed or blew its wall clock"; \
       cat "$CHAOS_OUT/chaos.log" "$CHAOS_OUT/serve.log"; exit 1; }
sort "$CHAOS_OUT/chaos.csv" > "$CHAOS_OUT/chaos.sorted.csv"
cmp "$CHAOS_OUT/expected.csv" "$CHAOS_OUT/chaos.sorted.csv" \
  || { echo "chaos gate: digests diverged under chaos"; \
       diff "$CHAOS_OUT/expected.csv" "$CHAOS_OUT/chaos.sorted.csv" || true; exit 1; }
grep -q "resolved=" "$CHAOS_OUT/chaos.log" \
  || { echo "chaos gate: no soak summary"; cat "$CHAOS_OUT/chaos.log"; exit 1; }
"$CLIENT" --unix "$CHAOS_SOCK" stats > "$CHAOS_OUT/stats.json"
grep -q '"survivability"' "$CHAOS_OUT/stats.json" \
  || { echo "chaos gate: stats verb lacks the survivability block"; cat "$CHAOS_OUT/stats.json"; exit 1; }
grep -q '"watchdog_stalls":0' "$CHAOS_OUT/stats.json" \
  && { echo "chaos gate: seeded soak never tripped the watchdog (seed drifted?)"; \
       cat "$CHAOS_OUT/chaos.log" "$CHAOS_OUT/stats.json"; exit 1; }
"$CLIENT" --unix "$CHAOS_SOCK" shutdown | grep -q '"event":"stopping"' \
  || { echo "chaos gate: shutdown verb not acknowledged"; exit 1; }
wait "$CHAOS_PID" \
  || { echo "chaos gate: daemon exited uncleanly after the soak"; exit 1; }
CHAOS_PID=""
trap - EXIT
rm -rf "$CHAOS_DIR" "$CHAOS_OUT"

echo "==> checkpoint gate (durable mid-trajectory snapshots: kill -9 resume, fault fallback)"
# Proves the tentpole end to end on the CI subset shape: a daemon writing
# durable snapshots is kill -9ed mid-trajectory; the restarted daemon
# must resume the victim from a snapshot (resumed step > 0 in its log,
# not a step-0 re-run) with a digest bit-identical to an uninterrupted
# reference; then an injected ckpt-corrupt on a later job's snapshot
# load must self-heal onto the previous rotation and still match.
CKPT_DIR=$(mktemp -d)
CKPT_OUT=$(mktemp -d)
CKPT_SOCK="$CKPT_DIR/ckpt.sock"
CKPT_PID=""
CKPT2_PID=""
CKPT_SLOW_PID=""
trap 'kill -9 ${CKPT_PID:-} ${CKPT2_PID:-} ${CKPT_SLOW_PID:-} 2>/dev/null || true' EXIT
SNAPDIR="$CKPT_DIR/checkpoints"
./target/release/limpet-serve --unix "$CKPT_SOCK" --workers 2 \
  --cache-dir "$CKPT_DIR" --journal "$CKPT_DIR/jobs.journal" \
  --checkpoint-every 5 > "$CKPT_OUT/serve.log" 2>&1 &
CKPT_PID=$!
for _ in $(seq 1 100); do [ -S "$CKPT_SOCK" ] && break; sleep 0.1; done
[ -S "$CKPT_SOCK" ] \
  || { echo "checkpoint gate: daemon did not come up"; cat "$CKPT_OUT/serve.log"; exit 1; }

# Uninterrupted reference for the victim shape.
"$CLIENT" --unix "$CKPT_SOCK" submit --model BeelerReuter --cells 64 \
  --steps 6000 --chunk 50 --id ckpt-ref --tenant ci-a > "$CKPT_OUT/ref.txt"
REF_DIGEST=$(grep -o '"digest":"[0-9a-f]\{16\}"' "$CKPT_OUT/ref.txt" | head -1)
[ -n "$REF_DIGEST" ] || { echo "checkpoint gate: no reference digest"; cat "$CKPT_OUT/ref.txt"; exit 1; }

# Victim: a slow reader keeps it mid-trajectory while the cadence writes
# snapshots; kill -9 lands only after a snapshot is durably on disk.
"$CLIENT" --unix "$CKPT_SOCK" submit --model BeelerReuter --cells 64 \
  --steps 6000 --chunk 50 --id ckpt-victim --tenant ci-a --slow-ms 200 \
  > /dev/null 2>&1 &
CKPT_SLOW_PID=$!
SNAPPED=""
for _ in $(seq 1 100); do
  ls "$SNAPDIR"/ckpt-*-ckpt-victim.lcp > /dev/null 2>&1 && { SNAPPED=yes; break; }
  sleep 0.1
done
[ -n "$SNAPPED" ] \
  || { echo "checkpoint gate: no snapshot written before kill"; ls -la "$SNAPDIR" 2>/dev/null; cat "$CKPT_OUT/serve.log"; exit 1; }
kill -9 "$CKPT_PID"
wait "$CKPT_PID" 2>/dev/null || true
CKPT_PID=""
kill "$CKPT_SLOW_PID" 2>/dev/null || true
wait "$CKPT_SLOW_PID" 2>/dev/null || true
CKPT_SLOW_PID=""

# Restart: journal replay re-admits the victim, which must resume from
# the snapshot — mid-trajectory, not step 0 — and finish bit-identical.
./target/release/limpet-serve --unix "$CKPT_SOCK" --workers 2 \
  --cache-dir "$CKPT_DIR" --journal "$CKPT_DIR/jobs.journal" \
  --checkpoint-every 5 > "$CKPT_OUT/serve2.log" 2>&1 &
CKPT2_PID=$!
for _ in $(seq 1 100); do [ -S "$CKPT_SOCK" ] && break; sleep 0.1; done
[ -S "$CKPT_SOCK" ] \
  || { echo "checkpoint gate: daemon did not restart"; cat "$CKPT_OUT/serve2.log"; exit 1; }
DONE=""
for _ in $(seq 1 240); do
  "$CLIENT" --unix "$CKPT_SOCK" result --id ckpt-victim > "$CKPT_OUT/victim.txt" || true
  if grep -q '"event":"done"' "$CKPT_OUT/victim.txt"; then DONE=yes; break; fi
  sleep 0.5
done
[ -n "$DONE" ] || { echo "checkpoint gate: victim never finished"; cat "$CKPT_OUT/serve2.log"; exit 1; }
grep -Eq 'checkpoint: resumed job ckpt-victim at step [1-9]' "$CKPT_OUT/serve2.log" \
  || { echo "checkpoint gate: victim was not resumed from a snapshot (step-0 re-run?)"; cat "$CKPT_OUT/serve2.log"; exit 1; }
VICTIM_DIGEST=$(grep -o '"digest":"[0-9a-f]\{16\}"' "$CKPT_OUT/victim.txt" | head -1)
[ "$VICTIM_DIGEST" = "$REF_DIGEST" ] \
  || { echo "checkpoint gate: resumed digest $VICTIM_DIGEST != reference $REF_DIGEST"; exit 1; }

# Injected ckpt-corrupt: abort a job so it leaves current + previous
# rotations, then re-submit the same id with the fault armed. The load
# must reject the corrupted current (self-healing it away), fall back to
# the previous rotation, and still finish with the reference digest.
"$CLIENT" --unix "$CKPT_SOCK" submit --model BeelerReuter --cells 64 \
  --steps 6000 --chunk 50 --id ckpt-prev --tenant ci-a --slow-ms 500 \
  > /dev/null 2>&1 &
CKPT_SLOW_PID=$!
ROTATED=""
for _ in $(seq 1 100); do
  if ls "$SNAPDIR"/ckpt-*-ckpt-prev.lcp > /dev/null 2>&1 \
     && ls "$SNAPDIR"/ckpt-*-ckpt-prev.prev.lcp > /dev/null 2>&1; then ROTATED=yes; break; fi
  sleep 0.1
done
[ -n "$ROTATED" ] \
  || { echo "checkpoint gate: no rotated snapshot pair"; ls -la "$SNAPDIR" 2>/dev/null; exit 1; }
kill "$CKPT_SLOW_PID" 2>/dev/null || true
wait "$CKPT_SLOW_PID" 2>/dev/null || true
CKPT_SLOW_PID=""
sleep 1  # the disconnect abort lands and writes its final snapshot
"$CLIENT" --unix "$CKPT_SOCK" submit --model BeelerReuter --cells 64 \
  --steps 6000 --chunk 50 --id ckpt-prev --tenant ci-a \
  --inject ckpt-corrupt@7 > "$CKPT_OUT/corrupt.txt"
grep -q '"status":"done"' "$CKPT_OUT/corrupt.txt" \
  || { echo "checkpoint gate: faulted resume did not complete"; cat "$CKPT_OUT/corrupt.txt"; exit 1; }
CORRUPT_DIGEST=$(grep -o '"digest":"[0-9a-f]\{16\}"' "$CKPT_OUT/corrupt.txt" | head -1)
[ "$CORRUPT_DIGEST" = "$REF_DIGEST" ] \
  || { echo "checkpoint gate: previous-rotation digest $CORRUPT_DIGEST != reference $REF_DIGEST"; exit 1; }
grep -q 'checksum-mismatch' "$CKPT_OUT/serve2.log" \
  || { echo "checkpoint gate: corrupted snapshot was not rejected on the checksum rung"; cat "$CKPT_OUT/serve2.log"; exit 1; }
grep -q 'previous rotation' "$CKPT_OUT/serve2.log" \
  || { echo "checkpoint gate: resume did not fall back to the previous rotation"; cat "$CKPT_OUT/serve2.log"; exit 1; }
"$CLIENT" --unix "$CKPT_SOCK" stats > "$CKPT_OUT/stats.json"
grep -Eq '"checkpoints":[1-9]' "$CKPT_OUT/stats.json" \
  || { echo "checkpoint gate: no checkpoints counted"; cat "$CKPT_OUT/stats.json"; exit 1; }
grep -Eq '"resumes":[1-9]' "$CKPT_OUT/stats.json" \
  || { echo "checkpoint gate: no resumes counted"; cat "$CKPT_OUT/stats.json"; exit 1; }
grep -Eq '"checkpoint_rejects":[1-9]' "$CKPT_OUT/stats.json" \
  || { echo "checkpoint gate: the injected reject was not counted"; cat "$CKPT_OUT/stats.json"; exit 1; }
"$CLIENT" --unix "$CKPT_SOCK" shutdown | grep -q '"event":"stopping"' \
  || { echo "checkpoint gate: shutdown verb not acknowledged"; exit 1; }
wait "$CKPT2_PID" \
  || { echo "checkpoint gate: daemon exited uncleanly after shutdown"; exit 1; }
CKPT2_PID=""
trap - EXIT
rm -rf "$CKPT_DIR" "$CKPT_OUT"

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI: all gates passed"
