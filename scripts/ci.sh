#!/usr/bin/env bash
# Tier-1 verification gate in one command.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p limpet-opt"
cargo build --release -p limpet-opt

echo "==> limpet-opt smoke (pipeline round-trip)"
./target/release/limpet-opt --list-passes > /dev/null
printf 'module @m {\n  func.func @compute() {\n    func.return\n  }\n}\n' \
  | ./target/release/limpet-opt --pipeline "const-prop,cse,dce" - > /dev/null

echo "==> cargo test -q"
cargo test -q

echo "==> FileCheck-lite golden pass tests"
cargo test -q -p limpet-pm --test filecheck_golden

echo "==> fault-injection suite (degradation chain + health guards + disk faults)"
cargo test -q -p limpet-harness --test fault_injection --test health_guard

echo "==> persistent kernel-cache suite (disk tier, integrity, concurrency)"
cargo test -q -p limpet-harness --test persistent_cache

echo "==> disk-cache persistence gate (warm second process, fault degradation)"
# Cold run populates a throwaway cache dir; a second, fresh process must
# then produce zero cold compiles and bit-identical trajectory digests;
# a third run with all three disk faults injected must degrade to
# recompiles (recorded incidents) while keeping the digests identical.
PERSIST_DIR=$(mktemp -d)
PERSIST_OUT=$(mktemp -d)
SUBSET=HodgkinHuxley,BeelerReuter,TenTusscherPanfilov
./target/release/figures --digest --models "$SUBSET" --cache-dir "$PERSIST_DIR" \
  > "$PERSIST_OUT/cold.txt"
cp output/digests.csv "$PERSIST_OUT/cold.csv"
./target/release/figures --digest --models "$SUBSET" --cache-dir "$PERSIST_DIR" \
  > "$PERSIST_OUT/warm.txt"
cp output/digests.csv "$PERSIST_OUT/warm.csv"
grep -q " 0 cold compilations" "$PERSIST_OUT/warm.txt" \
  || { echo "persistence gate: warm second process recompiled"; cat "$PERSIST_OUT/warm.txt"; exit 1; }
cmp "$PERSIST_OUT/cold.csv" "$PERSIST_OUT/warm.csv" \
  || { echo "persistence gate: warm digests diverged from cold"; exit 1; }
LIMPET_INJECT="disk-corrupt@3,disk-truncate@5,disk-stale-version@1" \
  ./target/release/figures --digest --models "$SUBSET" --cache-dir "$PERSIST_DIR" \
  > "$PERSIST_OUT/faulted.txt"
cp output/digests.csv "$PERSIST_OUT/faulted.csv"
grep -q "disk cache entry rejected" "$PERSIST_OUT/faulted.txt" \
  || { echo "persistence gate: injected disk faults left no incident"; cat "$PERSIST_OUT/faulted.txt"; exit 1; }
cmp "$PERSIST_OUT/cold.csv" "$PERSIST_OUT/faulted.csv" \
  || { echo "persistence gate: faulted digests diverged from cold"; exit 1; }
./target/release/figures --cache stat --cache-dir "$PERSIST_DIR" > /dev/null
./target/release/figures --cache clear --cache-dir "$PERSIST_DIR" | grep -q "cleared" \
  || { echo "persistence gate: cache clear failed"; exit 1; }
rm -rf "$PERSIST_DIR" "$PERSIST_OUT"

echo "==> real-thread differential suite (pool vs single-thread, bit-exact)"
cargo test -q -p limpet-harness --test real_threads

echo "==> real-thread figure gate (provenance tags + digest parity)"
# fig3 + fig4 with real threads on the CI subset: every CSV row must
# carry a measured|modeled provenance tag, the measured region must
# actually be exercised (fig4's T <= 2 points, via explicit
# oversubscription on 1-core runners; fig3's T=32 rows stay modeled),
# and trajectory digests must be bit-identical with and without the
# real-thread path enabled.
RT_DIR=$(mktemp -d)
RT_OUT=$(mktemp -d)
./target/release/figures --fig3 --fig4 --digest --real-threads --max-threads 2 \
  --models "$SUBSET" --cells 64 --steps 16 --repeats 3 --cache-dir "$RT_DIR" \
  > "$RT_OUT/real.txt"
cp output/fig3.csv "$RT_OUT/fig3.csv"
cp output/fig4.csv "$RT_OUT/fig4.csv"
cp output/digests.csv "$RT_OUT/real_digests.csv"
awk -F, 'NR > 1 && $4 != "measured" && $4 != "modeled" { bad = 1 }
         END { exit bad }' "$RT_OUT/fig3.csv" \
  || { echo "real-thread gate: fig3 row missing measured|modeled tag"; cat "$RT_OUT/fig3.csv"; exit 1; }
awk -F, 'NR > 1 && $5 != "measured" && $5 != "modeled" { bad = 1 }
         END { exit bad }' "$RT_OUT/fig4.csv" \
  || { echo "real-thread gate: fig4 row missing measured|modeled tag"; cat "$RT_OUT/fig4.csv"; exit 1; }
grep -q "measured" "$RT_OUT/fig4.csv" && grep -q "modeled" "$RT_OUT/fig4.csv" \
  || { echo "real-thread gate: fig4 must mix measured and modeled rows"; cat "$RT_OUT/fig4.csv"; exit 1; }
grep -q "measuring T <= 2" "$RT_OUT/real.txt" \
  || { echo "real-thread gate: measured region not announced"; cat "$RT_OUT/real.txt"; exit 1; }
./target/release/figures --digest --models "$SUBSET" \
  --cells 64 --steps 16 --cache-dir "$RT_DIR" > /dev/null
cmp output/digests.csv "$RT_OUT/real_digests.csv" \
  || { echo "real-thread gate: digests diverged from single-thread run"; exit 1; }
rm -rf "$RT_DIR" "$RT_OUT"

echo "==> limpet-opt round-trip fuzz smoke (fixed-seed)"
cargo test -q -p limpet-opt --test fuzz_roundtrip

echo "==> easyml no-panic lint gate"
cargo clippy -q -p limpet-easyml -- -D clippy::unwrap_used -D clippy::expect_used

echo "==> vm_dispatch bench smoke (bytecode-optimizer regression gate)"
# Recomputes the deterministic executed-instrs/step of a 3-model subset
# and fails if any optimized count regressed above BENCH_vm_dispatch.json.
./target/release/vm_dispatch --check --models HodgkinHuxley,BeelerReuter,TenTusscherPanfilov

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI: all gates passed"
