#!/usr/bin/env bash
# Tier-1 verification gate in one command.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI: all gates passed"
