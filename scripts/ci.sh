#!/usr/bin/env bash
# Tier-1 verification gate in one command.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p limpet-opt"
cargo build --release -p limpet-opt

echo "==> limpet-opt smoke (pipeline round-trip)"
./target/release/limpet-opt --list-passes > /dev/null
printf 'module @m {\n  func.func @compute() {\n    func.return\n  }\n}\n' \
  | ./target/release/limpet-opt --pipeline "const-prop,cse,dce" - > /dev/null

echo "==> cargo test -q"
cargo test -q

echo "==> FileCheck-lite golden pass tests"
cargo test -q -p limpet-pm --test filecheck_golden

echo "==> fault-injection suite (degradation chain + health guards)"
cargo test -q -p limpet-harness --test fault_injection --test health_guard

echo "==> limpet-opt round-trip fuzz smoke (fixed-seed)"
cargo test -q -p limpet-opt --test fuzz_roundtrip

echo "==> easyml no-panic lint gate"
cargo clippy -q -p limpet-easyml -- -D clippy::unwrap_used -D clippy::expect_used

echo "==> vm_dispatch bench smoke (bytecode-optimizer regression gate)"
# Recomputes the deterministic executed-instrs/step of a 3-model subset
# and fails if any optimized count regressed above BENCH_vm_dispatch.json.
./target/release/vm_dispatch --check --models HodgkinHuxley,BeelerReuter,TenTusscherPanfilov

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI: all gates passed"
