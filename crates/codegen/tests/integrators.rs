//! Numerical-order verification of the six integration methods
//! (paper §3.3.2): each generated integrator must exhibit its textbook
//! convergence order on problems with known exact solutions.
//!
//! * forward Euler — first order;
//! * rk2 (midpoint) — second order;
//! * rk4 — fourth order;
//! * Rush-Larsen — *exact* for linear gate ODEs (any dt);
//! * Sundnes — second order on gate problems with time-varying rates;
//! * markov_be — stable where explicit Euler diverges.

use limpet_codegen::pipeline;
use limpet_vm::{Kernel, ModelInfo, SimContext, StateLayout};

/// Integrates `diff_x` for `steps` of `dt` with the chosen method and
/// returns x(T). `extra` appends model body lines (e.g. time-varying
/// rates).
fn integrate(method: &str, rhs: &str, x0: f64, dt: f64, t_end: f64, extra: &str) -> f64 {
    let src = format!("diff_x = {rhs};\nx_init = {x0};\nx;.method({method});\n{extra}");
    let model = limpet_easyml::compile_model("ode", &src).unwrap();
    let lowered = pipeline::baseline(&model);
    let info = ModelInfo {
        state_names: vec!["x".into()],
        state_inits: vec![x0],
        ext_names: vec![],
        ext_inits: vec![],
        params: vec![],
    };
    let kernel = Kernel::from_module(&lowered.module, &info).unwrap();
    let mut st = kernel.new_states(1, StateLayout::Aos);
    let mut ext = kernel.new_ext(1);
    let steps = (t_end / dt).round() as usize;
    for s in 0..steps {
        kernel.run_step(
            &mut st,
            &mut ext,
            None,
            SimContext {
                dt,
                t: s as f64 * dt,
            },
        );
    }
    st.get(0, 0)
}

/// Observed convergence order from errors at dt and dt/2.
fn observed_order(method: &str, rhs: &str, exact: f64, dt: f64, t_end: f64) -> f64 {
    let e1 = (integrate(method, rhs, 1.0, dt, t_end, "") - exact).abs();
    let e2 = (integrate(method, rhs, 1.0, dt / 2.0, t_end, "") - exact).abs();
    (e1 / e2).log2()
}

// dx/dt = -x with x(0) = 1 over t in [0, 1]: x(1) = e^{-1}. A *linear*
// problem would be integrated exactly by Rush-Larsen, so the explicit
// methods' orders are measured on the nonlinear dx = -x^2 instead:
// x(t) = 1 / (1 + t).
const NONLINEAR: &str = "-x * x";
const NONLINEAR_EXACT: f64 = 0.5; // x(1) = 1/(1+1)

#[test]
fn forward_euler_is_first_order() {
    let p = observed_order("fe", NONLINEAR, NONLINEAR_EXACT, 0.01, 1.0);
    assert!((0.8..1.2).contains(&p), "observed order {p}");
}

#[test]
fn rk2_is_second_order() {
    let p = observed_order("rk2", NONLINEAR, NONLINEAR_EXACT, 0.02, 1.0);
    assert!((1.8..2.3).contains(&p), "observed order {p}");
}

#[test]
fn rk4_is_fourth_order() {
    let p = observed_order("rk4", NONLINEAR, NONLINEAR_EXACT, 0.05, 1.0);
    assert!((3.6..4.4).contains(&p), "observed order {p}");
}

#[test]
fn rk4_beats_rk2_beats_fe_at_equal_dt() {
    let dt = 0.02;
    let err = |m: &str| (integrate(m, NONLINEAR, 1.0, dt, 1.0, "") - NONLINEAR_EXACT).abs();
    let (e_fe, e_rk2, e_rk4) = (err("fe"), err("rk2"), err("rk4"));
    assert!(e_rk2 < e_fe / 5.0, "rk2 {e_rk2} vs fe {e_fe}");
    assert!(e_rk4 < e_rk2 / 5.0, "rk4 {e_rk4} vs rk2 {e_rk2}");
}

#[test]
fn rush_larsen_is_exact_on_linear_gates() {
    // dx = (0.8 - x) / 2  =>  x(t) = 0.8 + (x0 - 0.8) e^{-t/2}.
    let exact = |t: f64| 0.8 + (1.0 - 0.8) * (-t / 2.0).exp();
    // Exact regardless of step size: try a HUGE dt.
    for dt in [0.01, 0.5, 2.0] {
        let got = integrate("rush_larsen", "(0.8 - x) / 2.0", 1.0, dt, 4.0, "");
        let want = exact(4.0);
        assert!((got - want).abs() < 1e-12, "dt {dt}: {got} vs exact {want}");
    }
}

#[test]
fn rush_larsen_beats_fe_on_stiff_gates() {
    // Stiff gate: tau = 0.05, dt = 0.09 (fe's stability limit is 2*tau).
    let rhs = "(0.5 - x) / 0.05";
    let exact = 0.5 + (1.0 - 0.5) * (-2.0f64 / 0.05).exp(); // ~0.5
    let fe = integrate("fe", rhs, 1.0, 0.09, 2.0, "");
    let rl = integrate("rush_larsen", rhs, 1.0, 0.09, 2.0, "");
    assert!(
        (rl - exact).abs() < 1e-9,
        "RL must nail the stiff gate: {rl} vs {exact}"
    );
    // fe at dt near the stability limit oscillates/diverges.
    assert!((fe - exact).abs() > (rl - exact).abs());
}

#[test]
fn sundnes_is_second_order_on_time_varying_gates() {
    // Gate whose target depends on another state that itself evolves:
    //   diff_y = -y          (y drives the rate)
    //   diff_x = (y - x)/1.0 integrated by sundnes.
    // Exact solution with x0=0, y0=1: x(t) = t e^{-t}.
    let src = |method: &str, dt: f64| {
        // y is integrated exactly (Rush-Larsen nails linear decay), so
        // the measured error isolates x's integrator.
        let source = format!(
            "diff_y = -y;\ny_init = 1.0;\ny;.method(rush_larsen);\n\
             diff_x = (y - x) / 1.0;\nx_init = 0.0;\nx;.method({method});"
        );
        let model = limpet_easyml::compile_model("ode2", &source).unwrap();
        let lowered = pipeline::baseline(&model);
        let info = ModelInfo {
            state_names: model.states.iter().map(|s| s.name.clone()).collect(),
            state_inits: model.states.iter().map(|s| s.init).collect(),
            ext_names: vec![],
            ext_inits: vec![],
            params: vec![],
        };
        let kernel = Kernel::from_module(&lowered.module, &info).unwrap();
        let mut st = kernel.new_states(1, StateLayout::Aos);
        let mut ext = kernel.new_ext(1);
        let steps = (1.0 / dt).round() as usize;
        for s in 0..steps {
            kernel.run_step(
                &mut st,
                &mut ext,
                None,
                SimContext {
                    dt,
                    t: s as f64 * dt,
                },
            );
        }
        let xi = info.state_names.iter().position(|n| n == "x").unwrap();
        st.get(0, xi)
    };
    let exact = 1.0f64 * (-1.0f64).exp(); // t e^-t at t=1
    let e1 = (src("sundnes", 0.05) - exact).abs();
    let e2 = (src("sundnes", 0.025) - exact).abs();
    let p = (e1 / e2).log2();
    assert!(
        (1.6..2.6).contains(&p),
        "sundnes observed order {p} (e1={e1:.3e}, e2={e2:.3e})"
    );
    // And it should beat plain Rush-Larsen (first-order in the coupling).
    let e_rl = (src("rush_larsen", 0.05) - exact).abs();
    assert!(e1 < e_rl, "sundnes {e1:.3e} should beat RL {e_rl:.3e}");
}

#[test]
fn markov_be_is_stable_beyond_fe_limit() {
    // Very stiff occupancy relaxation: tau = 0.01, dt = 0.05 (5x the fe
    // stability bound). markov_be's damped fixed-point + clamp stays in
    // [0, 1]; fe explodes.
    let rhs = "(0.3 - x) / 0.01";
    let be = integrate("markov_be", rhs, 1.0, 0.05, 1.0, "");
    assert!((0.0..=1.0).contains(&be), "markov_be escaped: {be}");
    assert!(
        (be - 0.3).abs() < 0.05,
        "markov_be should approach 0.3: {be}"
    );
    let fe = integrate("fe", rhs, 1.0, 0.05, 1.0, "");
    assert!(
        !(0.0..=1.0).contains(&fe) || fe.abs() > 10.0 || fe.is_nan(),
        "fe unexpectedly stable at 5x its limit: {fe}"
    );
}

#[test]
fn all_methods_agree_in_the_small_dt_limit() {
    let exact = NONLINEAR_EXACT;
    for method in ["fe", "rk2", "rk4", "rush_larsen", "sundnes", "markov_be"] {
        let got = integrate(method, NONLINEAR, 1.0, 0.0005, 1.0, "");
        assert!(
            (got - exact).abs() < 5e-3,
            "{method}: {got} vs exact {exact}"
        );
    }
}
