//! Paper-listing parity: the exact model of the paper's Listing 1 must
//! produce code with the structural hallmarks of Listings 2 and 3.

use limpet_codegen::{emit_c, pipeline};
use limpet_easyml::compile_model;
use limpet_ir::print_module;

/// Listing 1, verbatim.
const LISTING_1: &str = r#"
Vm; .external(); .nodal(); .lookup(-100,100,0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();

group{ Cm = 200; beta = 1; xi = 3; }.param();
u1_init = 0; u2_init = 0; u3_init = 0; Vm_init = 0;
diff_u3 = 0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1;.method(rk2);

Iion = (-(Cm/2.)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
"#;

#[test]
fn listing_2_structure_from_baseline_c() {
    // Listing 2: the openCARP-generated C. Check its structural landmarks.
    let model = compile_model("Pathmanathan", LISTING_1).unwrap();
    let c = emit_c(&pipeline::baseline(&model).module).unwrap();

    // "#pragma omp parallel for schedule(static)" (Listing 2 line 1)
    assert!(c.contains("#pragma omp parallel for schedule(static)"));
    // "for (int __i=start; __i<end; __i++)" (line 2)
    assert!(c.contains("for (int __i = start; __i < end; __i++)"));
    // "Pathmanathan_state *sv = sv_base+__i" (line 3)
    assert!(c.contains("Pathmanathan_state *sv = sv_base + __i;"));
    // External variable initialization and save (lines 5, 31).
    assert!(c.contains("Vm_ext[__i]"));
    assert!(c.contains("Iion_ext[__i] ="));
    // Parameter access via p-> (line 10: p->Cm, p->beta).
    assert!(c.contains("p->Cm"));
    assert!(c.contains("p->beta"));
    // State updates for all three variables (lines 28-29).
    assert!(c.contains("sv->u1 ="));
    assert!(c.contains("sv->u2 ="));
    assert!(c.contains("sv->u3 ="));
}

#[test]
fn listing_3_structure_from_vectorized_ir() {
    // Listing 3: the limpetMLIR-generated MLIR. Check its hallmarks on
    // our vectorized IR at width 8 (the paper's `vector<8xf64>`).
    let model = compile_model("Pathmanathan", LISTING_1).unwrap();
    let lowered = pipeline::limpet_mlir(
        &model,
        pipeline::VectorIsa::Avx512,
        pipeline::Layout::AoSoA { block: 8 },
    );
    let ir = print_module(&lowered.module);

    // Every per-cell value is vector<8xf64> (Listing 3 throughout).
    assert!(ir.contains("vector<8xf64>"), "{ir}");
    // Splat constants like `arith.constant dense<2.0> : vector<8xf64>`
    // (Listing 3 line 24) — our spelling drops `dense<>` but keeps the
    // vector-typed constant.
    assert!(
        ir.contains("arith.constant 100.0 : vector<8xf64>") || ir.contains(" : vector<8xf64>\n"),
        "{ir}"
    );
    // `arith.divf ... : vector<8xf64>` / `arith.negf` (lines 25-26:
    // the -(Cm/2.) computation).
    assert!(ir.contains("arith.negf"), "{ir}");
    // The rk2 method re-evaluates diff_u1 (Listing 2 lines 17-26): the
    // intermediate state value feeds a second derivative computation.
    let mul_count = ir.matches("arith.mulf").count();
    assert!(
        mul_count >= 6,
        "rk2 re-evaluation missing: {mul_count} muls"
    );
    // dt/2 shows up as a uniform scalar computation (vectorizer keeps
    // dt uniform).
    assert!(ir.contains("limpet.dt"), "{ir}");
}

#[test]
fn listing_1_lut_is_declared_but_unused() {
    // The paper's example declares .lookup on Vm, but its equations are
    // polynomial — nothing qualifies for tabulation (our extraction
    // requires a transcendental call). The table is declared yet no
    // lut.col op appears, matching LUT_interpRow being called for NROWS
    // of zero useful columns.
    let model = compile_model("Pathmanathan", LISTING_1).unwrap();
    assert!(model.lookup("Vm").is_some());
    let lowered = pipeline::limpet_mlir(
        &model,
        pipeline::VectorIsa::Avx512,
        pipeline::Layout::AoSoA { block: 8 },
    );
    let ir = print_module(&lowered.module);
    assert!(!ir.contains("lut.col"), "{ir}");
}

#[test]
fn listing_1_simulates_to_finite_values_for_100k_steps_scaled() {
    // The paper's bench runs 100 000 steps; scale to 5 000 here (same
    // dynamics, 20x faster) and assert stability under pacing.
    use limpet_harness::{PipelineKind, Simulation, Stimulus, Workload};
    let model = compile_model("Pathmanathan", LISTING_1).unwrap();
    let wl = Workload {
        n_cells: 64,
        steps: 0,
        dt: 0.01,
    };
    let mut sim = Simulation::new(
        &model,
        PipelineKind::LimpetMlir(pipeline::VectorIsa::Avx512),
        &wl,
    );
    sim.set_stimulus(Stimulus {
        period: 10.0,
        duration: 1.0,
        amplitude: 10.0,
    });
    sim.run(5_000);
    for c in 0..64 {
        assert!(sim.vm(c).is_finite());
        assert!(sim.iion(c).is_finite());
    }
}
