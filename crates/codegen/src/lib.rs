//! # limpet-codegen
//!
//! The limpetMLIR code generator: lowers checked EasyML ionic models
//! ([`limpet_easyml::Model`]) to multi-dialect IR ([`limpet_ir::Module`]),
//! implementing the paper's §3:
//!
//! * per-cell `@compute` kernel generation;
//! * all six temporal integration methods (`fe`, `rk2`, `rk4`,
//!   `rush_larsen`, `sundnes`, `markov_be`), selected per state variable by
//!   the `.method()` markup;
//! * lookup-table extraction and `@lut_*` column-function generation
//!   (§3.4.2);
//! * multimodel parent-state access (§3.3.2, "Multimodel support").
//!
//! The two compilation pipelines of the paper (baseline openCARP-style
//! scalar code vs. the optimized limpetMLIR flow) are assembled in
//! [`pipeline`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod emit_c;
mod emit_c_native;
mod lower;
mod lut;
pub mod pipeline;

pub use emit_c::emit_c;
pub use emit_c_native::{
    emit_c_native, math_slot, native_math_table, NativeBinFn, NativeLutFn, NATIVE_EMITTER_VERSION,
    NATIVE_ENTRY_SYMBOL, NATIVE_TABLE_SLOTS, SLOT_MAX, SLOT_MIN, SLOT_REM,
};
pub use lower::{lower_model, CodegenOptions, Lowered, Report};
pub use lut::{extract_luts, LutExtraction, LutTable};
