//! The two compilation pipelines compared throughout the paper, plus the
//! ablation configurations of §4.4 and §5.
//!
//! * [`baseline`] — mimics openCARP's limpetC++ translation compiled by a
//!   general compiler that fails to vectorize the cell loop (§5): scalar
//!   kernel, scalar LUT interpolation, array-of-structures state layout,
//!   and no IR-level optimization.
//! * [`limpet_mlir`] — the paper's contribution: the preprocessor
//!   (constant propagation), canonicalization, CSE, LICM, DCE, full
//!   vectorization at the chosen ISA width, vectorized LUT interpolation,
//!   and the AoSoA data-layout transformation (§3.4.1).
//! * [`compiler_simd`] — the icc `omp simd` configuration of §5: vectorized
//!   arithmetic but scalar LUT calls and AoS layout.

use crate::lower::{lower_model, CodegenOptions, Lowered};
use limpet_easyml::Model;
use limpet_ir::Module;
use limpet_passes::{standard_pipeline_text, PipelineError, RunReport};

/// A vector instruction set of the evaluation platform (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorIsa {
    /// SSE: two f64 lanes.
    Sse,
    /// AVX2: four f64 lanes.
    Avx2,
    /// AVX-512: eight f64 lanes.
    Avx512,
}

impl VectorIsa {
    /// The number of f64 lanes.
    pub fn lanes(self) -> u32 {
        match self {
            VectorIsa::Sse => 2,
            VectorIsa::Avx2 => 4,
            VectorIsa::Avx512 => 8,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            VectorIsa::Sse => "SSE",
            VectorIsa::Avx2 => "AVX2",
            VectorIsa::Avx512 => "AVX-512",
        }
    }

    /// All ISAs evaluated by the paper.
    pub const ALL: [VectorIsa; 3] = [VectorIsa::Sse, VectorIsa::Avx2, VectorIsa::Avx512];
}

/// The per-cell state storage layout (paper §3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Array-of-structures: each cell's state variables are contiguous
    /// (openCARP's original layout; strided across cells).
    #[default]
    Aos,
    /// Array-of-structures-of-arrays: blocks of `block` cells store each
    /// state variable contiguously, enabling vector loads/stores.
    AoSoA {
        /// Cells per block; the paper uses the vector width.
        block: u32,
    },
}

impl Layout {
    /// The module-attribute spelling.
    pub fn attr_value(self) -> String {
        match self {
            Layout::Aos => "aos".to_owned(),
            Layout::AoSoA { block } => format!("aosoa{block}"),
        }
    }
}

/// Builds the baseline (openCARP limpetC++-style) module: scalar kernel,
/// scalar LUT interpolation, AoS layout.
///
/// # Examples
///
/// ```
/// let model = limpet_easyml::compile_model("M", "diff_x = -x;").unwrap();
/// let lowered = limpet_codegen::pipeline::baseline(&model);
/// assert_eq!(lowered.module.attrs.str_of("layout"), Some("aos"));
/// limpet_ir::verify_module(&lowered.module).unwrap();
/// ```
pub fn baseline(model: &Model) -> Lowered {
    baseline_with_report(model).0
}

/// [`baseline`], also returning the pass manager's execution report.
pub fn baseline_with_report(model: &Model) -> (Lowered, RunReport) {
    try_baseline_with_report(model).unwrap_or_else(|e| panic!("baseline pipeline failed: {e}"))
}

/// Non-panicking [`baseline_with_report`]: pipeline verification failures
/// come back as a structured [`PipelineError`].
pub fn try_baseline_with_report(model: &Model) -> Result<(Lowered, RunReport), PipelineError> {
    let mut lowered = lower_model(model, &CodegenOptions { use_lut: true });
    let report = try_apply_pipeline(&mut lowered.module, "scalar-lut-mode")?;
    lowered.module.attrs.set("layout", Layout::Aos.attr_value());
    lowered.module.attrs.set("pipeline", "baseline");
    Ok((lowered, report))
}

/// Non-panicking variant of the pipeline applier: parses `text` through
/// the workspace registry and runs it with verify-after-each-pass, handing
/// verification failures back as a structured [`PipelineError`] instead of
/// aborting the process. Pipeline *texts* are still in-tree constants, so
/// a parse failure of the text itself remains a panic.
pub fn try_apply_pipeline(module: &mut Module, text: &str) -> Result<RunReport, PipelineError> {
    let mut pm = limpet_passes::parse_pipeline(text)
        .unwrap_or_else(|e| panic!("in-tree pipeline '{text}' failed to parse: {e}"));
    pm.verify_each(true);
    pm.run(module)
}

/// The pipeline text a [`crate::pipeline`] builder would run for the
/// limpetMLIR configuration at `lanes` lanes — exposed so fault-tolerant
/// callers can re-run or inspect the exact pass sequence.
pub fn standard_text(lanes: u32) -> String {
    standard_pipeline_text(lanes)
}

/// Builds the limpetMLIR module at the given ISA width and layout.
///
/// # Examples
///
/// ```
/// use limpet_codegen::pipeline::{limpet_mlir, Layout, VectorIsa};
/// let model = limpet_easyml::compile_model("M", "diff_x = -x;").unwrap();
/// let lowered = limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 });
/// assert_eq!(lowered.module.attrs.i64_of("vector_width"), Some(8));
/// limpet_ir::verify_module(&lowered.module).unwrap();
/// ```
pub fn limpet_mlir(model: &Model, isa: VectorIsa, layout: Layout) -> Lowered {
    limpet_mlir_with_report(model, isa, layout).0
}

/// [`limpet_mlir`], also returning the pass manager's execution report.
pub fn limpet_mlir_with_report(
    model: &Model,
    isa: VectorIsa,
    layout: Layout,
) -> (Lowered, RunReport) {
    try_limpet_mlir_with_report(model, isa, layout)
        .unwrap_or_else(|e| panic!("limpetMLIR pipeline failed: {e}"))
}

/// Non-panicking [`limpet_mlir_with_report`].
pub fn try_limpet_mlir_with_report(
    model: &Model,
    isa: VectorIsa,
    layout: Layout,
) -> Result<(Lowered, RunReport), PipelineError> {
    let mut lowered = lower_model(model, &CodegenOptions { use_lut: true });
    let report = try_apply_pipeline(&mut lowered.module, &standard_pipeline_text(isa.lanes()))?;
    lowered.module.attrs.set("layout", layout.attr_value());
    lowered.module.attrs.set("pipeline", "limpetMLIR");
    Ok((lowered, report))
}

/// Builds the "compiler auto-SIMD" module of §5 (icc with `omp simd`):
/// vectorized arithmetic, but scalar LUT interpolation and AoS layout.
pub fn compiler_simd(model: &Model, isa: VectorIsa) -> Lowered {
    compiler_simd_with_report(model, isa).0
}

/// [`compiler_simd`], also returning the pass manager's execution report.
pub fn compiler_simd_with_report(model: &Model, isa: VectorIsa) -> (Lowered, RunReport) {
    try_compiler_simd_with_report(model, isa)
        .unwrap_or_else(|e| panic!("compiler-simd pipeline failed: {e}"))
}

/// Non-panicking [`compiler_simd_with_report`].
pub fn try_compiler_simd_with_report(
    model: &Model,
    isa: VectorIsa,
) -> Result<(Lowered, RunReport), PipelineError> {
    let mut lowered = lower_model(model, &CodegenOptions { use_lut: true });
    // No preprocessor/CSE/LICM beyond what a general compiler would see;
    // vectorization only, then scalar LUT calls.
    let text = format!("vectorize{{width={}}},scalar-lut-mode", isa.lanes());
    let report = try_apply_pipeline(&mut lowered.module, &text)?;
    lowered.module.attrs.set("layout", Layout::Aos.attr_value());
    lowered.module.attrs.set("pipeline", "compiler-simd");
    Ok((lowered, report))
}

/// Builds a limpetMLIR module without the data-layout transformation
/// (AoS) — the ablation of §4.4.
pub fn limpet_mlir_aos(model: &Model, isa: VectorIsa) -> Lowered {
    limpet_mlir(model, isa, Layout::Aos)
}

/// Builds a limpetMLIR module with LUTs disabled entirely — the ablation
/// of §3.4.2 ("reaching more than 6x from the non-LUT version").
pub fn limpet_mlir_no_lut(model: &Model, isa: VectorIsa) -> Lowered {
    limpet_mlir_no_lut_with_report(model, isa).0
}

/// [`limpet_mlir_no_lut`], also returning the pass manager's execution
/// report.
pub fn limpet_mlir_no_lut_with_report(model: &Model, isa: VectorIsa) -> (Lowered, RunReport) {
    try_limpet_mlir_no_lut_with_report(model, isa)
        .unwrap_or_else(|e| panic!("limpetMLIR-noLUT pipeline failed: {e}"))
}

/// Non-panicking [`limpet_mlir_no_lut_with_report`].
pub fn try_limpet_mlir_no_lut_with_report(
    model: &Model,
    isa: VectorIsa,
) -> Result<(Lowered, RunReport), PipelineError> {
    let mut lowered = lower_model(model, &CodegenOptions { use_lut: false });
    let report = try_apply_pipeline(&mut lowered.module, &standard_pipeline_text(isa.lanes()))?;
    let block = isa.lanes();
    lowered
        .module
        .attrs
        .set("layout", Layout::AoSoA { block }.attr_value());
    lowered.module.attrs.set("pipeline", "limpetMLIR-noLUT");
    Ok((lowered, report))
}

/// Builds a limpetMLIR module using Catmull-Rom **spline** LUT
/// interpolation with 4x-coarsened tables — the future-work variant of
/// paper §7 ("an efficient spline interpolation method to replace or
/// complement ... the currently used linear interpolation"). Same
/// interpolation error at a quarter of the table memory.
pub fn limpet_mlir_spline(model: &Model, isa: VectorIsa) -> Lowered {
    limpet_mlir_spline_with_report(model, isa).0
}

/// [`limpet_mlir_spline`], also returning the pass manager's execution
/// report (the standard pipeline's passes followed by `cubic-lut-mode`).
pub fn limpet_mlir_spline_with_report(model: &Model, isa: VectorIsa) -> (Lowered, RunReport) {
    try_limpet_mlir_spline_with_report(model, isa)
        .unwrap_or_else(|e| panic!("limpetMLIR-spline pipeline failed: {e}"))
}

/// Non-panicking [`limpet_mlir_spline_with_report`].
pub fn try_limpet_mlir_spline_with_report(
    model: &Model,
    isa: VectorIsa,
) -> Result<(Lowered, RunReport), PipelineError> {
    let block = isa.lanes();
    let (mut lowered, mut report) =
        try_limpet_mlir_with_report(model, isa, Layout::AoSoA { block })?;
    let tail = try_apply_pipeline(&mut lowered.module, "cubic-lut-mode")?;
    report.passes.extend(tail.passes);
    report.dumps.extend(tail.dumps);
    lowered.module.attrs.set("pipeline", "limpetMLIR-spline");
    Ok((lowered, report))
}

/// Parses a layout attribute back (inverse of [`Layout::attr_value`]).
pub fn parse_layout(module: &Module) -> Layout {
    match module.attrs.str_of("layout") {
        Some(s) if s.starts_with("aosoa") => {
            let block: u32 = s["aosoa".len()..].parse().unwrap_or(1);
            Layout::AoSoA { block }
        }
        _ => Layout::Aos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_easyml::compile_model;
    use limpet_ir::{print_module, verify_module};

    const GATED: &str = "
Vm; .external(); .lookup(-100, 100, 0.5);
Iion; .external();
group{ g = 0.3; }.param();
diff_n = (n_inf - n) / tau;
n_inf = 1.0 / (1.0 + exp(-Vm / 10.0));
tau = 1.0 + 4.0 * exp(-Vm * Vm / 800.0);
n_init = 0.3;
n;.method(rush_larsen);
Iion = g * n * (Vm + 85.0);
";

    #[test]
    fn baseline_is_scalar_with_scalar_lut() {
        let m = compile_model("G", GATED).unwrap();
        let l = baseline(&m);
        verify_module(&l.module).unwrap();
        assert_eq!(l.module.attrs.i64_of("vector_width"), None);
        assert_eq!(l.module.attrs.str_of("lut_mode"), Some("scalar"));
        assert_eq!(l.module.attrs.str_of("layout"), Some("aos"));
    }

    #[test]
    fn limpet_mlir_is_vector_with_vector_lut() {
        let m = compile_model("G", GATED).unwrap();
        let l = limpet_mlir(&m, VectorIsa::Avx512, Layout::AoSoA { block: 8 });
        verify_module(&l.module).unwrap();
        assert_eq!(l.module.attrs.i64_of("vector_width"), Some(8));
        assert_eq!(l.module.attrs.str_of("lut_mode"), None);
        assert_eq!(l.module.attrs.str_of("layout"), Some("aosoa8"));
        let text = print_module(&l.module);
        assert!(text.contains("vector<8xf64>"), "{text}");
        assert!(text.contains("lut.col"), "{text}");
    }

    #[test]
    fn isa_lane_counts() {
        assert_eq!(VectorIsa::Sse.lanes(), 2);
        assert_eq!(VectorIsa::Avx2.lanes(), 4);
        assert_eq!(VectorIsa::Avx512.lanes(), 8);
    }

    #[test]
    fn compiler_simd_has_vector_arith_scalar_lut() {
        let m = compile_model("G", GATED).unwrap();
        let l = compiler_simd(&m, VectorIsa::Avx512);
        verify_module(&l.module).unwrap();
        assert_eq!(l.module.attrs.i64_of("vector_width"), Some(8));
        assert_eq!(l.module.attrs.str_of("lut_mode"), Some("scalar"));
        assert_eq!(l.module.attrs.str_of("layout"), Some("aos"));
    }

    #[test]
    fn no_lut_pipeline_inlines_math() {
        let m = compile_model("G", GATED).unwrap();
        let l = limpet_mlir_no_lut(&m, VectorIsa::Avx512);
        verify_module(&l.module).unwrap();
        let text = print_module(&l.module);
        assert!(!text.contains("lut.col"));
        assert!(text.contains("math.exp"));
    }

    #[test]
    fn spline_pipeline_marks_cubic_and_coarsens_tables() {
        let m = compile_model("G", GATED).unwrap();
        let lin = limpet_mlir(&m, VectorIsa::Avx512, Layout::AoSoA { block: 8 });
        let spline = limpet_mlir_spline(&m, VectorIsa::Avx512);
        verify_module(&spline.module).unwrap();
        assert_eq!(spline.module.attrs.str_of("lut_mode"), Some("cubic"));
        assert!((spline.module.luts[0].step - lin.module.luts[0].step * 4.0).abs() < 1e-12);
    }

    #[test]
    fn layout_round_trip() {
        let m = compile_model("G", GATED).unwrap();
        for layout in [Layout::Aos, Layout::AoSoA { block: 8 }] {
            let l = limpet_mlir(&m, VectorIsa::Avx512, layout);
            assert_eq!(parse_layout(&l.module), layout);
        }
    }

    #[test]
    fn optimization_shrinks_op_count() {
        let m = compile_model("G", GATED).unwrap();
        let base = lower_model(&m, &CodegenOptions { use_lut: true });
        let mut opt = lower_model(&m, &CodegenOptions { use_lut: true });
        let pm = limpet_passes::standard_pipeline(1);
        pm.run(&mut opt.module).unwrap();
        let count = |md: &Module| md.func("compute").unwrap().walk_ops().len();
        assert!(
            count(&opt.module) <= count(&base.module),
            "optimized {} > baseline {}",
            count(&opt.module),
            count(&base.module)
        );
    }
}
