//! Lookup-table extraction (paper §3.4.2).
//!
//! A `.lookup(lo, hi, step)` markup on a variable `L` tells the code
//! generator that expressions depending **only** on `L` (and parameters/
//! constants) may be precomputed over the tabulated range and replaced by a
//! linear interpolation at runtime. This mirrors openCARP's LUT machinery
//! (`LUT_interpRow`), which the paper found to dominate runtime in many
//! models and re-implemented as a vectorized MLIR function.
//!
//! The extraction pipeline:
//!
//! 1. find *L-pure* intermediates — variables whose defining expression
//!    reads only `L`, parameters, constants, and other L-pure variables;
//! 2. inline L-pure variables into every statement (their defining
//!    statements are dropped);
//! 3. walk each remaining expression top-down and replace every **maximal**
//!    subexpression that references `L`, is closed over `{L} ∪ params`, and
//!    contains at least one math call, by a reference to a fresh (or
//!    deduplicated) table column.
//!
//! Column references are encoded as internal calls
//! `__lut_col(table_index, col_index, L)` which only
//! [`crate::lower`] understands; they never appear in user-facing ASTs.

use limpet_easyml::{Expr, Lookup, Model, Stmt};
use std::collections::{HashMap, HashSet};

/// Internal marker function name for an extracted column reference.
pub(crate) const LUT_COL_MARKER: &str = "__lut_col";

/// One extracted lookup table.
#[derive(Debug, Clone, PartialEq)]
pub struct LutTable {
    /// The lookup key variable (e.g. `Vm`).
    pub var: String,
    /// Tabulated range and step from the markup.
    pub lookup: Lookup,
    /// Column expressions, closed over `{var} ∪ params`.
    pub columns: Vec<Expr>,
}

/// Result of LUT extraction over a model body.
#[derive(Debug, Clone, PartialEq)]
pub struct LutExtraction {
    /// Rewritten statements with `__lut_col` references.
    pub stmts: Vec<Stmt>,
    /// Extracted tables, indexed by the `table_index` argument of
    /// `__lut_col`.
    pub tables: Vec<LutTable>,
}

/// Runs LUT extraction for every `.lookup()` markup of the model.
///
/// Returns the rewritten statement list and the extracted tables. When the
/// model has no lookup markups (or nothing worth tabulating), the statements
/// are returned unchanged and `tables` is empty.
pub fn extract_luts(model: &Model) -> LutExtraction {
    let mut stmts = model.stmts.clone();
    let mut tables = Vec::new();

    for lookup in &model.lookups {
        let var = lookup.var.clone();
        let param_names: HashSet<String> = model.params.iter().map(|p| p.name.clone()).collect();

        // Step 1: L-pure intermediates (top-level plain assignments only).
        let mut pure: HashMap<String, Expr> = HashMap::new();
        loop {
            let mut grew = false;
            for s in &stmts {
                if let Stmt::Assign { lhs, expr, .. } = s {
                    if lhs.starts_with("diff_")
                        || pure.contains_key(lhs)
                        || model.external(lhs).is_some()
                    {
                        continue;
                    }
                    if is_closed(expr, &var, &param_names, &pure)
                        && expr.references_any(&var, &pure)
                    {
                        pure.insert(lhs.clone(), expr.clone());
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }

        // Step 2: inline L-pure vars everywhere; drop their definitions.
        let inlined: HashMap<String, Expr> = pure
            .keys()
            .map(|k| (k.clone(), inline_pure(&pure[k], &pure)))
            .collect();
        stmts = stmts
            .into_iter()
            .filter(|s| match s {
                Stmt::Assign { lhs, .. } => !inlined.contains_key(lhs),
                Stmt::If { .. } => true,
            })
            .map(|s| substitute_stmt(s, &inlined))
            .collect();

        // Step 3: extract maximal closed subexpressions containing calls.
        let table_index = tables.len();
        let mut columns: Vec<Expr> = Vec::new();
        let mut col_keys: HashMap<String, usize> = HashMap::new();
        stmts = stmts
            .into_iter()
            .map(|s| {
                extract_stmt(
                    s,
                    &var,
                    &param_names,
                    table_index,
                    &mut columns,
                    &mut col_keys,
                )
            })
            .collect();

        if !columns.is_empty() {
            tables.push(LutTable {
                var,
                lookup: lookup.clone(),
                columns,
            });
        }
    }

    LutExtraction { stmts, tables }
}

trait ReferencesAny {
    fn references_any(&self, var: &str, pure: &HashMap<String, Expr>) -> bool;
}

impl ReferencesAny for Expr {
    /// Whether the expression references `var` directly or through an
    /// already-classified L-pure intermediate.
    fn references_any(&self, var: &str, pure: &HashMap<String, Expr>) -> bool {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.iter().any(|v| v == var || pure.contains_key(v))
    }
}

/// Whether all free variables of `expr` are `var`, parameters, or
/// already-known L-pure intermediates.
fn is_closed(
    expr: &Expr,
    var: &str,
    params: &HashSet<String>,
    pure: &HashMap<String, Expr>,
) -> bool {
    let mut vars = Vec::new();
    expr.collect_vars(&mut vars);
    vars.iter()
        .all(|v| v == var || params.contains(v) || pure.contains_key(v))
}

/// Recursively inlines L-pure variable references.
fn inline_pure(expr: &Expr, pure: &HashMap<String, Expr>) -> Expr {
    match expr {
        Expr::Var(v) => match pure.get(v) {
            Some(def) => inline_pure(def, pure),
            None => expr.clone(),
        },
        Expr::Num(_) => expr.clone(),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(inline_pure(e, pure))),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(inline_pure(l, pure)),
            Box::new(inline_pure(r, pure)),
        ),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter().map(|a| inline_pure(a, pure)).collect(),
        ),
        Expr::Cond(c, t, e) => Expr::Cond(
            Box::new(inline_pure(c, pure)),
            Box::new(inline_pure(t, pure)),
            Box::new(inline_pure(e, pure)),
        ),
    }
}

fn substitute_stmt(stmt: Stmt, defs: &HashMap<String, Expr>) -> Stmt {
    match stmt {
        Stmt::Assign { lhs, expr, line } => Stmt::Assign {
            lhs,
            expr: inline_pure(&expr, &to_pure_map(defs)),
            line,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        } => Stmt::If {
            cond: inline_pure(&cond, &to_pure_map(defs)),
            then_body: then_body
                .into_iter()
                .map(|s| substitute_stmt(s, defs))
                .collect(),
            else_body: else_body
                .into_iter()
                .map(|s| substitute_stmt(s, defs))
                .collect(),
            line,
        },
    }
}

fn to_pure_map(defs: &HashMap<String, Expr>) -> HashMap<String, Expr> {
    defs.clone()
}

fn extract_stmt(
    stmt: Stmt,
    var: &str,
    params: &HashSet<String>,
    table: usize,
    columns: &mut Vec<Expr>,
    col_keys: &mut HashMap<String, usize>,
) -> Stmt {
    match stmt {
        Stmt::Assign { lhs, expr, line } => Stmt::Assign {
            lhs,
            expr: extract_expr(expr, var, params, table, columns, col_keys),
            line,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        } => Stmt::If {
            cond: extract_expr(cond, var, params, table, columns, col_keys),
            then_body: then_body
                .into_iter()
                .map(|s| extract_stmt(s, var, params, table, columns, col_keys))
                .collect(),
            else_body: else_body
                .into_iter()
                .map(|s| extract_stmt(s, var, params, table, columns, col_keys))
                .collect(),
            line,
        },
    }
}

/// Whether the expression contains a math call (the "worth tabulating"
/// criterion — LUTs pay off when they elide transcendental evaluations).
fn contains_call(expr: &Expr) -> bool {
    match expr {
        Expr::Num(_) | Expr::Var(_) => false,
        Expr::Unary(_, e) => contains_call(e),
        Expr::Binary(_, l, r) => contains_call(l) || contains_call(r),
        Expr::Call(..) => true,
        Expr::Cond(c, t, e) => contains_call(c) || contains_call(t) || contains_call(e),
    }
}

fn extract_expr(
    expr: Expr,
    var: &str,
    params: &HashSet<String>,
    table: usize,
    columns: &mut Vec<Expr>,
    col_keys: &mut HashMap<String, usize>,
) -> Expr {
    let empty = HashMap::new();
    if expr.references(var) && is_closed(&expr, var, params, &empty) && contains_call(&expr) {
        // Maximal eligible node: replace by a (deduplicated) column ref.
        let key = expr.to_string();
        let col = *col_keys.entry(key).or_insert_with(|| {
            columns.push(expr.clone());
            columns.len() - 1
        });
        return Expr::Call(
            LUT_COL_MARKER.to_owned(),
            vec![
                Expr::Num(table as f64),
                Expr::Num(col as f64),
                Expr::Var(var.to_owned()),
            ],
        );
    }
    match expr {
        Expr::Num(_) | Expr::Var(_) => expr,
        Expr::Unary(op, e) => Expr::Unary(
            op,
            Box::new(extract_expr(*e, var, params, table, columns, col_keys)),
        ),
        Expr::Binary(op, l, r) => Expr::Binary(
            op,
            Box::new(extract_expr(*l, var, params, table, columns, col_keys)),
            Box::new(extract_expr(*r, var, params, table, columns, col_keys)),
        ),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter()
                .map(|a| extract_expr(a, var, params, table, columns, col_keys))
                .collect(),
        ),
        Expr::Cond(c, t, e) => Expr::Cond(
            Box::new(extract_expr(*c, var, params, table, columns, col_keys)),
            Box::new(extract_expr(*t, var, params, table, columns, col_keys)),
            Box::new(extract_expr(*e, var, params, table, columns, col_keys)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_easyml::compile_model;

    fn model(src: &str) -> Model {
        compile_model("m", src).unwrap()
    }

    #[test]
    fn no_lookup_no_tables() {
        let m = model("diff_x = exp(-x);");
        let ex = extract_luts(&m);
        assert!(ex.tables.is_empty());
        assert_eq!(ex.stmts, m.stmts);
    }

    #[test]
    fn extracts_direct_subexpression() {
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             diff_x = exp(Vm / 10.0) * x;",
        );
        let ex = extract_luts(&m);
        assert_eq!(ex.tables.len(), 1);
        assert_eq!(ex.tables[0].columns.len(), 1);
        assert_eq!(ex.tables[0].columns[0].to_string(), "exp((Vm/10))");
        // The rewritten diff references the marker call.
        let rewritten = format!("{:?}", ex.stmts);
        assert!(rewritten.contains(LUT_COL_MARKER));
    }

    #[test]
    fn inlines_pure_intermediates_into_columns() {
        // `am` depends only on Vm: the whole chain becomes one column and
        // the am assignment is dropped.
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             am = 0.1 * (Vm + 40.0) / (1.0 - exp(-(Vm + 40.0) / 10.0));\n\
             diff_x = am * (1.0 - x);",
        );
        let ex = extract_luts(&m);
        assert_eq!(ex.tables[0].columns.len(), 1);
        assert!(ex.tables[0].columns[0].to_string().contains("exp"));
        // am's definition is gone.
        assert!(ex.stmts.iter().all(|s| !matches!(
            s,
            Stmt::Assign { lhs, .. } if lhs == "am"
        )));
    }

    #[test]
    fn dedups_identical_columns() {
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             diff_x = exp(Vm) * x;\n\
             diff_y = exp(Vm) * y;",
        );
        let ex = extract_luts(&m);
        assert_eq!(ex.tables[0].columns.len(), 1);
    }

    #[test]
    fn call_free_expressions_not_tabulated() {
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             diff_x = (Vm + 1.0) * x;",
        );
        let ex = extract_luts(&m);
        assert!(ex.tables.is_empty());
    }

    #[test]
    fn params_allowed_in_columns() {
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             group{ k = 2.0; }.param();\n\
             diff_x = exp(k * Vm) - x;",
        );
        let ex = extract_luts(&m);
        assert_eq!(ex.tables[0].columns.len(), 1);
        assert_eq!(ex.tables[0].columns[0].to_string(), "exp((k*Vm))");
    }

    #[test]
    fn state_dependent_expressions_stay() {
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             diff_x = exp(Vm * x);",
        );
        let ex = extract_luts(&m);
        // exp(Vm * x) is not closed over {Vm, params}: x is state.
        assert!(ex.tables.is_empty());
    }

    #[test]
    fn extraction_inside_if_branches() {
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             diff_x = a - x;\n\
             if (Vm > 0.0) { a = exp(Vm); } else { a = 0.0; }",
        );
        let ex = extract_luts(&m);
        assert_eq!(ex.tables.len(), 1);
        assert_eq!(ex.tables[0].columns[0].to_string(), "exp(Vm)");
    }

    #[test]
    fn multiple_lookup_vars_multiple_tables() {
        let m = model(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             Ca; .external(); .lookup(0, 10, 0.01);\n\
             diff_x = exp(Vm) + log(Ca + 1.0) - x;",
        );
        let ex = extract_luts(&m);
        assert_eq!(ex.tables.len(), 2);
        assert_eq!(ex.tables[0].var, "Vm");
        assert_eq!(ex.tables[1].var, "Ca");
    }
}
