//! Lowering of checked EasyML models to IR.
//!
//! Produces the `@compute` kernel — the per-cell loop body of paper
//! Listing 2/3 — plus one `@lut_<var>` column function per extracted lookup
//! table. The kernel reads external and state variables, evaluates the
//! ordered equation system, applies each state variable's integration
//! method, and stores the new state and external outputs.
//!
//! All six integration methods of paper §3.3.2 are implemented: `fe`,
//! `rk2`, `rk4`, `rush_larsen`, `sundnes`, and `markov_be`.

use crate::lut::{extract_luts, LutTable, LUT_COL_MARKER};
use limpet_easyml::{affine_in, BinOp, Expr, Method, Model, Stmt, UnOp};
use limpet_ir::{Builder, CmpFPred, Func, LutSpec, MathFn, Module, Type, ValueId};
use std::collections::HashMap;

/// Options controlling code generation.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Honour `.lookup()` markups by extracting interpolation tables
    /// (paper §3.4.2). Both the openCARP baseline and limpetMLIR use LUTs;
    /// disabling them isolates the LUT contribution in ablations.
    pub use_lut: bool,
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions { use_lut: true }
    }
}

/// Diagnostics produced while lowering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// State variables that requested `rush_larsen`/`sundnes` but whose
    /// derivative is not affine in the variable; they fall back to forward
    /// Euler, as openCARP does for non-gate equations.
    pub rl_fallbacks: Vec<String>,
    /// `(lookup variable, column count)` for each extracted table.
    pub lut_tables: Vec<(String, usize)>,
}

/// The result of lowering a model.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The generated module (functions `@compute` and `@lut_*`).
    pub module: Module,
    /// Lowering diagnostics.
    pub report: Report,
}

/// Lowers a checked model to an IR module.
///
/// # Examples
///
/// ```
/// use limpet_codegen::{lower_model, CodegenOptions};
/// let model = limpet_easyml::compile_model("M", "diff_x = -x;").unwrap();
/// let lowered = lower_model(&model, &CodegenOptions::default());
/// assert!(lowered.module.func("compute").is_some());
/// limpet_ir::verify_module(&lowered.module).unwrap();
/// ```
pub fn lower_model(model: &Model, opts: &CodegenOptions) -> Lowered {
    let (stmts, tables) = if opts.use_lut {
        let ex = extract_luts(model);
        (ex.stmts, ex.tables)
    } else {
        (model.stmts.clone(), Vec::new())
    };

    let mut report = Report::default();
    for t in &tables {
        report.lut_tables.push((t.var.clone(), t.columns.len()));
    }

    let mut module = Module::new(&model.name);
    let lowerer = Lowerer {
        model,
        stmts: &stmts,
        tables: &tables,
    };

    // LUT column functions + specs.
    for table in tables.iter() {
        let fname = format!("lut_{}", table.var);
        module.luts.push(LutSpec {
            name: table.var.clone(),
            lo: table.lookup.lo,
            hi: table.lookup.hi,
            step: table.lookup.step,
            func: fname.clone(),
            cols: (0..table.columns.len()).map(|i| format!("c{i}")).collect(),
        });
        module.add_func(lowerer.lower_lut_func(&fname, table));
    }

    module.add_func(lowerer.lower_compute(&mut report));
    Lowered { module, report }
}

struct Lowerer<'m> {
    model: &'m Model,
    stmts: &'m [Stmt],
    tables: &'m [LutTable],
}

/// Per-context value environment: defined names plus cached source reads.
type Env = HashMap<String, ValueId>;

impl<'m> Lowerer<'m> {
    // ---- compute kernel ----

    fn lower_compute(&self, report: &mut Report) -> Func {
        let mut func = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut func);
        let mut env = Env::new();
        let overrides = Env::new();

        // Evaluate the full equation system once.
        self.lower_stmts(&mut b, self.stmts, &mut env, &overrides);

        // Integrate every state variable from the *original* state
        // (simultaneous update, as in the generated code of Listing 2).
        let mut new_values: Vec<(String, ValueId)> = Vec::new();
        for sv in &self.model.states {
            let v = self.integrate(&mut b, sv.name.as_str(), sv.method, &mut env, report);
            new_values.push((sv.name.clone(), v));
        }

        // "Finish the update".
        for (name, v) in &new_values {
            b.set_state(name, *v);
        }
        // "Save all external vars".
        for ext in &self.model.externals {
            if ext.assigned {
                let v = env
                    .get(&ext.name)
                    .copied()
                    .expect("assigned external must be in env");
                b.set_ext(&ext.name, v);
            }
        }
        b.ret(&[]);
        func
    }

    // ---- LUT column function ----

    fn lower_lut_func(&self, name: &str, table: &LutTable) -> Func {
        let result_types = vec![Type::F64; table.columns.len()];
        let mut func = Func::new(name, &[Type::F64], &result_types);
        let key = func.args()[0];
        let mut b = Builder::new(&mut func);
        let mut env = Env::new();
        env.insert(table.var.clone(), key);
        let overrides = Env::new();
        let results: Vec<ValueId> = table
            .columns
            .iter()
            .map(|c| self.lower_num(&mut b, c, &mut env, &overrides))
            .collect();
        b.ret(&results);
        func
    }

    // ---- statements ----

    fn lower_stmts(&self, b: &mut Builder<'_>, stmts: &[Stmt], env: &mut Env, ov: &Env) {
        for s in stmts {
            self.lower_stmt(b, s, env, ov);
        }
    }

    fn lower_stmt(&self, b: &mut Builder<'_>, stmt: &Stmt, env: &mut Env, ov: &Env) {
        match stmt {
            Stmt::Assign { lhs, expr, .. } => {
                let v = self.lower_num(b, expr, env, ov);
                env.insert(lhs.clone(), v);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.lower_bool(b, cond, env, ov);
                let mut names = Vec::new();
                for s in then_body {
                    s.assigned_names(&mut names);
                }
                names.sort();
                names.dedup();
                let result_types = vec![Type::F64; names.len()];
                // Each branch lowers into its own region with a copy of the
                // environment, then yields the assigned values.
                let results = {
                    let names_then = names.clone();
                    let names_else = names.clone();
                    let mut env_then = env.clone();
                    let mut env_else = env.clone();
                    b.if_op(
                        c,
                        &result_types,
                        |bb| {
                            self.lower_stmts(bb, then_body, &mut env_then, ov);
                            let vals: Vec<ValueId> =
                                names_then.iter().map(|n| env_then[n.as_str()]).collect();
                            bb.yield_(&vals);
                        },
                        |bb| {
                            self.lower_stmts(bb, else_body, &mut env_else, ov);
                            let vals: Vec<ValueId> =
                                names_else.iter().map(|n| env_else[n.as_str()]).collect();
                            bb.yield_(&vals);
                        },
                    )
                };
                for (n, v) in names.iter().zip(results) {
                    env.insert(n.clone(), v);
                }
            }
        }
    }

    // ---- expressions ----

    /// Lowers an expression in numeric (f64) context.
    fn lower_num(&self, b: &mut Builder<'_>, expr: &Expr, env: &mut Env, ov: &Env) -> ValueId {
        match expr {
            Expr::Num(v) => b.const_f(*v),
            Expr::Var(name) => self.lower_var(b, name, env, ov),
            Expr::Unary(UnOp::Neg, e) => {
                let v = self.lower_num(b, e, env, ov);
                b.negf(v)
            }
            Expr::Unary(UnOp::Not, e) => {
                let c = self.lower_bool(b, e, env, ov);
                let n = b.not(c);
                self.bool_to_num(b, n)
            }
            Expr::Binary(op, l, r) if op.is_boolean() => {
                let c = self.lower_bool(b, expr, env, ov);
                let _ = (l, r);
                self.bool_to_num(b, c)
            }
            Expr::Binary(op, l, r) => {
                let lv = self.lower_num(b, l, env, ov);
                let rv = self.lower_num(b, r, env, ov);
                match op {
                    BinOp::Add => b.addf(lv, rv),
                    BinOp::Sub => b.subf(lv, rv),
                    BinOp::Mul => b.mulf(lv, rv),
                    BinOp::Div => b.divf(lv, rv),
                    BinOp::Rem => b.remf(lv, rv),
                    _ => unreachable!("boolean ops handled above"),
                }
            }
            Expr::Call(name, args) if name == LUT_COL_MARKER => {
                let (Expr::Num(t), Expr::Num(c)) = (&args[0], &args[1]) else {
                    panic!("malformed {LUT_COL_MARKER} marker");
                };
                let table = &self.tables[*t as usize];
                let key = self.lower_num(b, &args[2], env, ov);
                b.lut_col(&table.var, *c as i64, key)
            }
            Expr::Call(name, args) => self.lower_call(b, name, args, env, ov),
            Expr::Cond(c, t, e) => {
                let cv = self.lower_bool(b, c, env, ov);
                let tv = self.lower_num(b, t, env, ov);
                let ev = self.lower_num(b, e, env, ov);
                b.select(cv, tv, ev)
            }
        }
    }

    /// Lowers an expression in boolean (i1) context.
    fn lower_bool(&self, b: &mut Builder<'_>, expr: &Expr, env: &mut Env, ov: &Env) -> ValueId {
        match expr {
            Expr::Binary(op, l, r) if op.is_boolean() => match op {
                BinOp::And => {
                    let lv = self.lower_bool(b, l, env, ov);
                    let rv = self.lower_bool(b, r, env, ov);
                    b.andi(lv, rv)
                }
                BinOp::Or => {
                    let lv = self.lower_bool(b, l, env, ov);
                    let rv = self.lower_bool(b, r, env, ov);
                    b.ori(lv, rv)
                }
                cmp => {
                    let lv = self.lower_num(b, l, env, ov);
                    let rv = self.lower_num(b, r, env, ov);
                    let pred = match cmp {
                        BinOp::Lt => CmpFPred::Olt,
                        BinOp::Le => CmpFPred::Ole,
                        BinOp::Gt => CmpFPred::Ogt,
                        BinOp::Ge => CmpFPred::Oge,
                        BinOp::Eq => CmpFPred::Oeq,
                        BinOp::Ne => CmpFPred::One,
                        _ => unreachable!(),
                    };
                    b.cmpf(pred, lv, rv)
                }
            },
            Expr::Unary(UnOp::Not, e) => {
                let c = self.lower_bool(b, e, env, ov);
                b.not(c)
            }
            other => {
                // Numeric truthiness: value != 0.
                let v = self.lower_num(b, other, env, ov);
                let z = b.const_f(0.0);
                b.cmpf(CmpFPred::One, v, z)
            }
        }
    }

    fn bool_to_num(&self, b: &mut Builder<'_>, c: ValueId) -> ValueId {
        let one = b.const_f(1.0);
        let zero = b.const_f(0.0);
        b.select(c, one, zero)
    }

    fn lower_var(&self, b: &mut Builder<'_>, name: &str, env: &mut Env, ov: &Env) -> ValueId {
        if let Some(&v) = ov.get(name) {
            return v;
        }
        if let Some(&v) = env.get(name) {
            return v;
        }
        let v = if let Some(ext) = self.model.external(name) {
            if ext.parent {
                let fallback = b.get_ext(name);
                b.get_parent_state(name, fallback)
            } else {
                b.get_ext(name)
            }
        } else if self.model.state(name).is_some() {
            b.get_state(name)
        } else if self.model.param(name).is_some() {
            b.param(name)
        } else if name == "dt" {
            b.dt()
        } else if name == "t" {
            b.time()
        } else {
            panic!("sema must reject undefined variable {name}");
        };
        env.insert(name.to_owned(), v);
        v
    }

    fn lower_call(
        &self,
        b: &mut Builder<'_>,
        name: &str,
        args: &[Expr],
        env: &mut Env,
        ov: &Env,
    ) -> ValueId {
        let vals: Vec<ValueId> = args.iter().map(|a| self.lower_num(b, a, env, ov)).collect();
        match (name, vals.as_slice()) {
            ("square", [x]) => b.mulf(*x, *x),
            ("cube", [x]) => {
                let sq = b.mulf(*x, *x);
                b.mulf(sq, *x)
            }
            ("fabs", [x]) | ("abs", [x]) => b.math1(MathFn::Abs, *x),
            ("fmod", [x, y]) => b.remf(*x, *y),
            ("pow", [x, y]) => b.math2(MathFn::Pow, *x, *y),
            ("atan2", [x, y]) => b.math2(MathFn::Atan2, *x, *y),
            ("copysign", [x, y]) => b.math2(MathFn::CopySign, *x, *y),
            (unary, [x]) => {
                let f = MathFn::parse(map_math_name(unary))
                    .unwrap_or_else(|| panic!("sema must reject unknown function {unary}"));
                b.math1(f, *x)
            }
            _ => panic!("sema must reject bad call to {name}"),
        }
    }

    // ---- integration methods (paper §3.3.2) ----

    fn integrate(
        &self,
        b: &mut Builder<'_>,
        state: &str,
        method: Method,
        env: &mut Env,
        report: &mut Report,
    ) -> ValueId {
        let diff_name = format!("diff_{state}");
        let diff = env[&diff_name];
        let x = self.lower_var(b, state, env, &Env::new());
        let dt = self.lower_var(b, "dt", env, &Env::new());

        match method {
            Method::Fe => self.fe_step(b, x, diff, dt),
            Method::Rk2 => {
                // Midpoint: x_mid = x + dt/2 * k1; x' = x + dt * f(x_mid).
                let half = b.const_f(0.5);
                let hdt = b.mulf(dt, half);
                let k1dt = b.mulf(diff, hdt);
                let x_mid = b.addf(x, k1dt);
                let k2 = self.eval_diff_with(b, state, &[(state, x_mid)]);
                self.fe_step(b, x, k2, dt)
            }
            Method::Rk4 => {
                let half = b.const_f(0.5);
                let hdt = b.mulf(dt, half);
                let k1 = diff;
                let d1 = b.mulf(k1, hdt);
                let x1 = b.addf(x, d1);
                let k2 = self.eval_diff_with(b, state, &[(state, x1)]);
                let d2 = b.mulf(k2, hdt);
                let x2 = b.addf(x, d2);
                let k3 = self.eval_diff_with(b, state, &[(state, x2)]);
                let d3 = b.mulf(k3, dt);
                let x3 = b.addf(x, d3);
                let k4 = self.eval_diff_with(b, state, &[(state, x3)]);
                // x + dt/6 * (k1 + 2k2 + 2k3 + k4)
                let two = b.const_f(2.0);
                let k2x2 = b.mulf(k2, two);
                let k3x2 = b.mulf(k3, two);
                let s1 = b.addf(k1, k2x2);
                let s2 = b.addf(s1, k3x2);
                let s3 = b.addf(s2, k4);
                let sixth = b.const_f(1.0 / 6.0);
                let dt6 = b.mulf(dt, sixth);
                let upd = b.mulf(s3, dt6);
                b.addf(x, upd)
            }
            Method::RushLarsen => match self.gate_coefficients(state) {
                Some((a_expr, b_expr)) => {
                    let a = self.lower_num(b, &a_expr, env, &Env::new());
                    let bb = self.lower_num(b, &b_expr, env, &Env::new());
                    self.rl_step(b, x, a, bb, dt, diff)
                }
                None => {
                    report.rl_fallbacks.push(state.to_owned());
                    self.fe_step(b, x, diff, dt)
                }
            },
            Method::Sundnes => match self.gate_coefficients(state) {
                Some((a_expr, b_expr)) => {
                    // Second-order Rush-Larsen (Sundnes et al. 2009):
                    // take all states a half-step, re-evaluate the gate
                    // coefficients there, then apply one full RL step.
                    let mut half_overrides: Vec<(&str, ValueId)> = Vec::new();
                    let half = b.const_f(0.5);
                    let hdt = b.mulf(dt, half);
                    for sv in &self.model.states {
                        let d = env[&format!("diff_{}", sv.name)];
                        let xs = self.lower_var(b, &sv.name, env, &Env::new());
                        let dd = b.mulf(d, hdt);
                        let xh = b.addf(xs, dd);
                        half_overrides.push((sv.name.as_str(), xh));
                    }
                    let mut henv = Env::new();
                    let mut hov = Env::new();
                    for (n, v) in &half_overrides {
                        hov.insert((*n).to_string(), *v);
                    }
                    self.lower_stmts(b, &self.cone(state), &mut henv, &hov);
                    let a2 = self.lower_num(b, &a_expr, &mut henv, &hov);
                    let b2 = self.lower_num(b, &b_expr, &mut henv, &hov);
                    let d2 = henv[&format!("diff_{state}")];
                    self.rl_step(b, x, a2, b2, dt, d2)
                }
                None => {
                    report.rl_fallbacks.push(state.to_owned());
                    self.fe_step(b, x, diff, dt)
                }
            },
            Method::MarkovBe => {
                // Backward Euler, clamped to [0, 1] (Markov occupancies).
                // Markov-chain rate equations are affine in the state with
                // the other states frozen, so the implicit equation
                //   y = x + dt (A + B y)
                // solves in closed form: y = (x + dt·A) / (1 − dt·B) —
                // unconditionally stable. Non-affine derivatives fall back
                // to a three-step fixed-point refinement (openCARP's
                // "refinement process to keep values as precise as
                // possible").
                let updated = match self.gate_coefficients(state) {
                    Some((a_expr, b_expr)) => {
                        let a = self.lower_num(b, &a_expr, env, &Env::new());
                        let bb_ = self.lower_num(b, &b_expr, env, &Env::new());
                        let da = b.mulf(a, dt);
                        let num = b.addf(x, da);
                        let one = b.const_f(1.0);
                        let db = b.mulf(bb_, dt);
                        let den = b.subf(one, db);
                        b.divf(num, den)
                    }
                    None => {
                        let lb = b.const_index(0);
                        let ub = b.const_index(3);
                        let st = b.const_index(1);
                        let res = b.for_op(lb, ub, st, &[x], |bb, _iv, iters| {
                            let y = iters[0];
                            let f = self.eval_diff_with(bb, state, &[(state, y)]);
                            let dt_in = bb.dt();
                            let fd = bb.mulf(f, dt_in);
                            let next = bb.addf(x, fd);
                            bb.yield_(&[next]);
                        });
                        res[0]
                    }
                };
                let zero = b.const_f(0.0);
                let one = b.const_f(1.0);
                let lo = b.maxf(updated, zero);
                b.minf(lo, one)
            }
        }
    }

    fn fe_step(&self, b: &mut Builder<'_>, x: ValueId, diff: ValueId, dt: ValueId) -> ValueId {
        let d = b.mulf(diff, dt);
        b.addf(x, d)
    }

    /// One Rush-Larsen exponential step for `x' = a + b·x`:
    /// `x_new = x·e^{b·dt} + (a/b)(e^{b·dt} − 1)`, guarded against `b ≈ 0`
    /// (where it degenerates to forward Euler).
    fn rl_step(
        &self,
        bld: &mut Builder<'_>,
        x: ValueId,
        a: ValueId,
        b: ValueId,
        dt: ValueId,
        diff: ValueId,
    ) -> ValueId {
        let bdt = bld.mulf(b, dt);
        let ebdt = bld.exp(bdt);
        let xe = bld.mulf(x, ebdt);
        let one = bld.const_f(1.0);
        let em1 = bld.subf(ebdt, one);
        let ab = bld.divf(a, b);
        let inhom = bld.mulf(ab, em1);
        let rl = bld.addf(xe, inhom);
        // |b| tiny => division blows up; fall back to fe.
        let absb = bld.math1(MathFn::Abs, b);
        let tiny = bld.const_f(1e-12);
        let safe = bld.cmpf(CmpFPred::Ogt, absb, tiny);
        let fe = self.fe_step(bld, x, diff, dt);
        bld.select(safe, rl, fe)
    }

    /// Affine gate coefficients `(a, b)` with `diff_X = a + b·X`, available
    /// only when no other statement in the dependency cone reads `X`.
    fn gate_coefficients(&self, state: &str) -> Option<(Expr, Expr)> {
        let diff_name = format!("diff_{state}");
        let diff_expr = self.stmts.iter().find_map(|s| match s {
            Stmt::Assign { lhs, expr, .. } if *lhs == diff_name => Some(expr),
            _ => None,
        })?;
        // Transitive check: intermediates feeding diff may not read X.
        for s in self.cone(state) {
            if let Stmt::Assign { lhs, .. } = &s {
                if *lhs == diff_name {
                    continue;
                }
            }
            let mut reads = Vec::new();
            s.read_names(&mut reads);
            if reads.iter().any(|r| r == state) {
                return None;
            }
        }
        affine_in(diff_expr, state)
    }

    /// Re-evaluates `diff_X` with the given state overrides by re-lowering
    /// the dependency cone of `diff_X` in a fresh environment. This mirrors
    /// how the generated code of Listing 2 re-computes `diff_u1` for the
    /// second RK2 stage.
    fn eval_diff_with(
        &self,
        b: &mut Builder<'_>,
        state: &str,
        overrides: &[(&str, ValueId)],
    ) -> ValueId {
        let mut env = Env::new();
        let mut ov = Env::new();
        for (n, v) in overrides {
            ov.insert((*n).to_string(), *v);
        }
        self.lower_stmts(b, &self.cone(state), &mut env, &ov);
        env[&format!("diff_{state}")]
    }

    /// The ordered subset of statements needed to compute `diff_X`.
    fn cone(&self, state: &str) -> Vec<Stmt> {
        let target = format!("diff_{state}");
        let mut needed: Vec<bool> = vec![false; self.stmts.len()];
        // defs per statement
        let defs: Vec<Vec<String>> = self
            .stmts
            .iter()
            .map(|s| {
                let mut d = Vec::new();
                s.assigned_names(&mut d);
                d
            })
            .collect();
        let mut want: Vec<String> = vec![target];
        while let Some(w) = want.pop() {
            for (i, d) in defs.iter().enumerate() {
                if !needed[i] && d.contains(&w) {
                    needed[i] = true;
                    let mut reads = Vec::new();
                    self.stmts[i].read_names(&mut reads);
                    want.extend(reads);
                }
            }
        }
        self.stmts
            .iter()
            .zip(&needed)
            .filter(|(_, &n)| n)
            .map(|(s, _)| s.clone())
            .collect()
    }
}

/// Maps EasyML spellings to `math` dialect spellings.
fn map_math_name(name: &str) -> &str {
    match name {
        "pow" => "powf",
        "fabs" | "abs" => "absf",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_easyml::compile_model;
    use limpet_ir::{print_module, verify_module};

    fn lower(src: &str) -> Lowered {
        let m = compile_model("m", src).unwrap();
        lower_model(&m, &CodegenOptions::default())
    }

    fn lower_no_lut(src: &str) -> Lowered {
        let m = compile_model("m", src).unwrap();
        lower_model(&m, &CodegenOptions { use_lut: false })
    }

    #[test]
    fn fe_produces_x_plus_dt_diff() {
        let l = lower("diff_x = -x;");
        verify_module(&l.module).unwrap();
        let text = print_module(&l.module);
        assert!(text.contains("limpet.get_state {var = \"x\"}"));
        assert!(text.contains("limpet.dt"));
        assert!(text.contains("limpet.set_state"));
    }

    #[test]
    fn all_methods_verify() {
        for m in Method::ALL {
            let src = format!("diff_x = 0.5 - 0.25 * x;\nx;.method({});", m.name());
            let l = lower(&src);
            verify_module(&l.module).unwrap_or_else(|e| panic!("method {} failed: {e}", m.name()));
        }
    }

    #[test]
    fn rk2_reevaluates_cone() {
        let l = lower("a = x * 2.0;\ndiff_x = -a;\nx;.method(rk2);");
        verify_module(&l.module).unwrap();
        let text = print_module(&l.module);
        // The cone (a = 2x) must be lowered twice: once for k1, once for k2.
        let count = text.matches("arith.mulf").count();
        assert!(count >= 2, "expected re-lowered cone, got:\n{text}");
    }

    #[test]
    fn rush_larsen_emits_exp() {
        let l = lower("diff_x = (0.5 - x) / 2.0;\nx;.method(rush_larsen);");
        assert!(l.report.rl_fallbacks.is_empty());
        let text = print_module(&l.module);
        assert!(text.contains("math.exp"), "{text}");
    }

    #[test]
    fn rush_larsen_falls_back_on_nonlinear() {
        let l = lower("diff_x = -x * x;\nx;.method(rush_larsen);");
        assert_eq!(l.report.rl_fallbacks, vec!["x"]);
        verify_module(&l.module).unwrap();
    }

    #[test]
    fn markov_be_affine_solves_in_closed_form() {
        // Affine derivative: exact backward Euler, no refinement loop.
        let l = lower("diff_x = 0.2 - x;\nx;.method(markov_be);");
        let text = print_module(&l.module);
        assert!(!text.contains("scf.for"), "{text}");
        assert!(text.contains("arith.divf"), "{text}");
        assert!(text.contains("arith.maximumf"), "{text}");
        assert!(text.contains("arith.minimumf"), "{text}");
        verify_module(&l.module).unwrap();
    }

    #[test]
    fn markov_be_nonlinear_emits_refinement_loop() {
        let l = lower("diff_x = 0.2 - x * x;\nx;.method(markov_be);");
        let text = print_module(&l.module);
        assert!(text.contains("scf.for"), "{text}");
        assert!(text.contains("arith.maximumf"), "{text}");
        assert!(text.contains("arith.minimumf"), "{text}");
        verify_module(&l.module).unwrap();
    }

    #[test]
    fn lut_generates_table_function() {
        let l = lower(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             diff_x = exp(Vm / 10.0) - x;",
        );
        verify_module(&l.module).unwrap();
        assert_eq!(l.report.lut_tables, vec![("Vm".to_string(), 1)]);
        assert!(l.module.func("lut_Vm").is_some());
        let text = print_module(&l.module);
        assert!(text.contains("lut.col"), "{text}");
        assert!(text.contains("lut @Vm"), "{text}");
    }

    #[test]
    fn lut_disabled_inlines_math() {
        let l = lower_no_lut(
            "Vm; .external(); .lookup(-100, 100, 0.5);\n\
             diff_x = exp(Vm / 10.0) - x;",
        );
        assert!(l.report.lut_tables.is_empty());
        let text = print_module(&l.module);
        assert!(!text.contains("lut.col"));
        assert!(text.contains("math.exp"));
    }

    #[test]
    fn conditional_statements_lower_to_scf_if() {
        let l = lower(
            "Vm; .external();\n\
             diff_x = a - x;\n\
             if (Vm > 0.0) { a = 1.0; } else { a = 0.0; }",
        );
        let text = print_module(&l.module);
        assert!(text.contains("scf.if"), "{text}");
        verify_module(&l.module).unwrap();
    }

    #[test]
    fn external_outputs_stored() {
        let l = lower(
            "Vm; .external();\nIion; .external();\n\
             diff_x = -x;\nIion = x * Vm;",
        );
        let text = print_module(&l.module);
        assert!(text.contains("limpet.set_ext"), "{text}");
        assert!(text.contains("limpet.get_ext {var = \"Vm\"}"), "{text}");
    }

    #[test]
    fn parent_markup_uses_parent_state() {
        let l = lower(
            "Vm; .external(); .parent();\n\
             diff_x = -x * Vm;",
        );
        let text = print_module(&l.module);
        assert!(text.contains("limpet.get_parent_state"), "{text}");
        verify_module(&l.module).unwrap();
    }

    #[test]
    fn paper_listing_1_lowers_and_verifies() {
        let src = r#"
Vm; .external(); .nodal(); .lookup(-100,100,0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();
group{ Cm = 200; beta = 1; xi = 3; }.param();
u1_init = 0; u2_init = 0; u3_init = 0; Vm_init = 0;
diff_u3 = 0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1;.method(rk2);
Iion = (-(Cm/2.)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
"#;
        let l = lower(src);
        verify_module(&l.module).unwrap();
        let text = print_module(&l.module);
        assert!(text.contains("limpet.param {name = \"Cm\"}"));
        // No LUT columns: the model's Vm expressions are polynomial (no
        // math calls), matching the "worth tabulating" criterion.
        assert!(l.report.lut_tables.is_empty());
    }

    #[test]
    fn ternary_lowered_as_select() {
        let l = lower("Vm; .external();\ndiff_x = (Vm > 0.0 ? 1.0 : -1.0) - x;");
        let text = print_module(&l.module);
        assert!(text.contains("arith.select"), "{text}");
        verify_module(&l.module).unwrap();
    }

    #[test]
    fn logical_ops_lower() {
        let l = lower(
            "Vm; .external();\n\
             diff_x = (Vm > 0.0 && Vm < 50.0 || !(Vm >= -20.0)) ? 1.0 : 0.0 - x;",
        );
        let text = print_module(&l.module);
        assert!(text.contains("arith.andi"));
        assert!(text.contains("arith.ori"));
        assert!(text.contains("arith.xori"));
        verify_module(&l.module).unwrap();
    }
}
