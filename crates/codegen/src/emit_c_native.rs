//! Native C emission from width-1 bytecode — the dlopen tier's backend.
//!
//! Where [`crate::emit_c`] renders a human-readable, limpetC++-style view
//! of the scalar IR, this emitter produces a *loadable* translation unit:
//! an `extern "C"` entry point compiled by the system toolchain
//! (`cc -O2 -fPIC -shared -ffp-contract=off`) and `dlopen`'d by the
//! harness as execution tier `native`, one rung above the bytecode VM.
//!
//! Bit-identity with the VM is the design constraint, so the emitter
//! translates the *bytecode program itself* — the exact instruction
//! stream the interpreter executes, including everything the bytecode
//! optimizer did — one C statement per instruction:
//!
//! * float/bool/int registers become `double`/`int`/`int64_t` locals
//!   living across the cell loop, like the interpreter's register file;
//! * `Add/Sub/Mul/Div` and comparisons become plain C operators
//!   (IEEE-identical under `-ffp-contract=off`, no fast-math);
//! * `FmaF` is emitted **unfused** (`a * b + c`) because the width-1
//!   interpreter never fuses;
//! * every `math` call, plus `Rem`/`Min`/`Max`, is routed through a
//!   function-pointer table ([`native_math_table`]) of the same Rust
//!   `f64` operations the VM calls — the C side never touches libm;
//! * LUT reads call back into the Rust interpolators through the same
//!   table, so clamping and blending stay the interpreter's;
//! * structured control flow is already linearized to jumps, which
//!   become labels and `goto`s.
//!
//! Constants are printed as C99 hex floats, which round-trip `f64`
//! exactly. The emitted entry hard-codes the parent-absent behavior
//! (`HasParent` → false) because the harness always runs leaf kernels
//! without a parent view; a parented kernel must not be promoted.

use limpet_ir::MathFn;
use limpet_vm::{FBin, Instr, Program};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Version stamp for the emitted ABI + codegen strategy. Baked into the
/// persisted shared-object container key so a cached `.so` from an older
/// emitter is rejected instead of loaded with a mismatched ABI.
pub const NATIVE_EMITTER_VERSION: u32 = 1;

/// The symbol the emitted translation unit exports.
pub const NATIVE_ENTRY_SYMBOL: &str = "limpet_native_step";

/// A binary `f64` operation routed through the native call table.
pub type NativeBinFn = extern "C" fn(f64, f64) -> f64;

/// A LUT interpolation callback: `(ctx, table, col, key) -> value`.
///
/// # Safety
///
/// `ctx` must be the `lut_ctx` pointer stored alongside the callback —
/// a base pointer into the owning kernel's table array, valid for
/// `table` indices the emitted program uses.
pub type NativeLutFn = unsafe extern "C" fn(*const (), i64, i64, f64) -> f64;

/// Number of slots in the native call table: every [`MathFn`] plus
/// `Min`, `Max`, and `Rem`.
pub const NATIVE_TABLE_SLOTS: usize = MathFn::ALL.len() + 3;

/// Call-table slot of `f64::min`.
pub const SLOT_MIN: usize = MathFn::ALL.len();
/// Call-table slot of `f64::max`.
pub const SLOT_MAX: usize = MathFn::ALL.len() + 1;
/// Call-table slot of the float remainder (`Rust %`).
pub const SLOT_REM: usize = MathFn::ALL.len() + 2;

/// Call-table slot of a math function (its position in [`MathFn::ALL`]).
pub fn math_slot(f: MathFn) -> usize {
    MathFn::ALL
        .iter()
        .position(|&m| m == f)
        .expect("MathFn::ALL is exhaustive")
}

/// Builds the function-pointer table the emitted C calls through: one
/// monomorphic `extern "C"` wrapper per [`MathFn`] (unary functions
/// ignore their second argument, mirroring [`MathFn::eval`]), then
/// `min`, `max`, and `%`. Indices match [`math_slot`], [`SLOT_MIN`],
/// [`SLOT_MAX`], [`SLOT_REM`] — the contract between this module's two
/// halves.
pub fn native_math_table() -> [NativeBinFn; NATIVE_TABLE_SLOTS] {
    macro_rules! wrap {
        ($($v:ident),* $(,)?) => {
            [
                $({
                    extern "C" fn w(a: f64, b: f64) -> f64 {
                        MathFn::$v.eval(a, b)
                    }
                    w as NativeBinFn
                },)*
                {
                    extern "C" fn fmin_rs(a: f64, b: f64) -> f64 {
                        a.min(b)
                    }
                    fmin_rs as NativeBinFn
                },
                {
                    extern "C" fn fmax_rs(a: f64, b: f64) -> f64 {
                        a.max(b)
                    }
                    fmax_rs as NativeBinFn
                },
                {
                    extern "C" fn frem_rs(a: f64, b: f64) -> f64 {
                        a % b
                    }
                    frem_rs as NativeBinFn
                },
            ]
        };
    }
    wrap!(
        Exp, Expm1, Log, Log1p, Log10, Log2, Sqrt, Cbrt, Sin, Cos, Tan, Asin, Acos, Atan, Sinh,
        Cosh, Tanh, Abs, Floor, Ceil, Round, Pow, Atan2, CopySign,
    )
}

/// Formats an `f64` as a C literal that round-trips the exact bit
/// pattern: C99 hex-float for finite values, division idioms for the
/// non-finite ones.
fn c_f64(v: f64) -> String {
    if v.is_nan() {
        return "(0.0 / 0.0)".to_owned();
    }
    if v.is_infinite() {
        return if v > 0.0 {
            "(1.0 / 0.0)".to_owned()
        } else {
            "(-1.0 / 0.0)".to_owned()
        };
    }
    if v == 0.0 {
        return if v.is_sign_negative() {
            "-0.0".to_owned()
        } else {
            "0.0".to_owned()
        };
    }
    let bits = v.to_bits();
    let sign = if bits >> 63 == 1 { "-" } else { "" };
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let mantissa = bits & 0xf_ffff_ffff_ffff;
    if biased == 0 {
        // Subnormal: value = 0.mantissa * 2^-1022.
        format!("{sign}0x0.{mantissa:013x}p-1022")
    } else {
        format!("{sign}0x1.{mantissa:013x}p{}", biased - 1023)
    }
}

/// Emits a self-contained C translation unit executing `program` (which
/// must be width-1) over a half-open cell range.
///
/// The exported entry is:
///
/// ```c
/// void limpet_native_step(double* state, double* const* ext,
///                         const double* params, double dt, double t,
///                         int64_t cell_begin, int64_t cell_end,
///                         int64_t stride, const limpet_mtab* m);
/// ```
///
/// `state` is the raw AoS storage (`state[cell * stride + var]`), `ext`
/// one base pointer per external array, `params` the kernel's parameter
/// snapshot in program order, and `m` the call table built by
/// [`native_math_table`] plus the LUT callbacks. The caller guarantees
/// AoS layout and no attached parent.
///
/// # Errors
///
/// Returns a description when the program uses an unsupported register
/// count (> `u16::MAX`, impossible by construction) — kept as a
/// `Result` so future instruction additions can reject rather than
/// miscompile.
pub fn emit_c_native(program: &Program, model: &str) -> Result<String, String> {
    let mut out = String::new();
    let w = &mut out;
    writeln!(
        w,
        "/* limpet-rs native kernel: {model} (emitter v{NATIVE_EMITTER_VERSION}) */"
    )
    .unwrap();
    writeln!(w, "#include <stdint.h>").unwrap();
    writeln!(w).unwrap();
    writeln!(w, "typedef double (*limpet_binfn)(double, double);").unwrap();
    writeln!(
        w,
        "typedef double (*limpet_lutfn)(const void*, int64_t, int64_t, double);"
    )
    .unwrap();
    writeln!(w).unwrap();
    writeln!(w, "typedef struct {{").unwrap();
    writeln!(w, "  limpet_binfn fns[{NATIVE_TABLE_SLOTS}];").unwrap();
    writeln!(w, "  limpet_lutfn lut_linear;").unwrap();
    writeln!(w, "  limpet_lutfn lut_cubic;").unwrap();
    writeln!(w, "  const void* lut_ctx;").unwrap();
    writeln!(w, "}} limpet_mtab;").unwrap();
    writeln!(w).unwrap();
    writeln!(
        w,
        "void {NATIVE_ENTRY_SYMBOL}(double* state, double* const* ext,"
    )
    .unwrap();
    writeln!(
        w,
        "                       const double* params, double dt, double t,"
    )
    .unwrap();
    writeln!(
        w,
        "                       int64_t cell_begin, int64_t cell_end,"
    )
    .unwrap();
    writeln!(
        w,
        "                       int64_t stride, const limpet_mtab* m) {{"
    )
    .unwrap();
    // Registers live across the cell loop, zero-initialized once —
    // exactly the interpreter's RegFile lifetime.
    decl_regs(w, "double", "f", program.n_fregs, "0.0");
    decl_regs(w, "int", "b", program.n_bregs, "0");
    decl_regs(w, "int64_t", "i", program.n_iregs, "0");
    writeln!(
        w,
        "  for (int64_t cell = cell_begin; cell < cell_end; ++cell) {{"
    )
    .unwrap();

    let targets: BTreeSet<u32> = program
        .instrs
        .iter()
        .filter_map(|ins| match ins {
            Instr::Jump { target } | Instr::JumpIfNot { target, .. } => Some(*target),
            _ => None,
        })
        .collect();
    let end = program.instrs.len() as u32;
    let label = |t: u32| {
        if t >= end {
            "L_end".to_owned()
        } else {
            format!("L{t}")
        }
    };

    for (pc, ins) in program.instrs.iter().enumerate() {
        if targets.contains(&(pc as u32)) {
            writeln!(w, "  L{pc}: ;").unwrap();
        }
        emit_instr(w, ins, program, &label);
    }
    writeln!(w, "  L_end: ;").unwrap();
    writeln!(w, "  }}").unwrap();
    writeln!(w, "}}").unwrap();
    Ok(out)
}

fn decl_regs(w: &mut String, ty: &str, prefix: &str, n: usize, init: &str) {
    // One declaration per line keeps the golden tests greppable.
    for r in 0..n.max(1) {
        writeln!(w, "  {ty} {prefix}{r} = {init};").unwrap();
    }
}

/// The C expression for `a ⊕ b` under [`FBin`] — infix for the IEEE
/// primitives, a call-table slot for the rest.
fn fbin_expr(op: FBin, a: &str, b: &str) -> String {
    match op {
        FBin::Add => format!("{a} + {b}"),
        FBin::Sub => format!("{a} - {b}"),
        FBin::Mul => format!("{a} * {b}"),
        FBin::Div => format!("{a} / {b}"),
        FBin::Min => format!("m->fns[{SLOT_MIN}]({a}, {b})"),
        FBin::Max => format!("m->fns[{SLOT_MAX}]({a}, {b})"),
        FBin::Rem => format!("m->fns[{SLOT_REM}]({a}, {b})"),
    }
}

fn emit_instr(w: &mut String, ins: &Instr, program: &Program, label: &dyn Fn(u32) -> String) {
    use limpet_vm::{BBin, IBin};
    let state_at = |var: u16| format!("state[cell * stride + {var}]");
    let sym = |name: &Option<&String>| -> String {
        name.map(|s| format!(" /* {s} */")).unwrap_or_default()
    };
    let state_sym = |var: u16| sym(&program.state_vars.get(var as usize));
    let ext_sym = |var: u16| sym(&program.ext_vars.get(var as usize));
    match *ins {
        Instr::ConstF { dst, v } => writeln!(w, "    f{dst} = {};", c_f64(v)),
        Instr::ConstI { dst, v } => writeln!(w, "    i{dst} = INT64_C({v});"),
        Instr::ConstB { dst, v } => writeln!(w, "    b{dst} = {};", v as u8),
        Instr::MovF { dst, src } => writeln!(w, "    f{dst} = f{src};"),
        Instr::MovB { dst, src } => writeln!(w, "    b{dst} = b{src};"),
        Instr::MovI { dst, src } => writeln!(w, "    i{dst} = i{src};"),
        Instr::LoadParam { dst, idx } => writeln!(
            w,
            "    f{dst} = params[{idx}];{}",
            sym(&program.params.get(idx as usize))
        ),
        Instr::LoadDt { dst } => writeln!(w, "    f{dst} = dt;"),
        Instr::LoadTime { dst } => writeln!(w, "    f{dst} = t;"),
        Instr::CellIndex { dst } => writeln!(w, "    i{dst} = cell;"),
        Instr::LoadState { dst, var } => {
            writeln!(w, "    f{dst} = {};{}", state_at(var), state_sym(var))
        }
        Instr::StoreState { src, var } => {
            writeln!(w, "    {} = f{src};{}", state_at(var), state_sym(var))
        }
        Instr::LoadExt { dst, var } => {
            writeln!(w, "    f{dst} = ext[{var}][cell];{}", ext_sym(var))
        }
        Instr::StoreExt { src, var } => {
            writeln!(w, "    ext[{var}][cell] = f{src};{}", ext_sym(var))
        }
        // The harness never attaches a parent to a promoted kernel.
        Instr::HasParent { dst } => writeln!(w, "    b{dst} = 0;"),
        Instr::LoadParentState { dst, fallback, .. } => {
            writeln!(w, "    f{dst} = f{fallback};")
        }
        Instr::StoreParentState { .. } => writeln!(w, "    ; /* no parent */"),
        Instr::BinF { op, dst, a, b } => writeln!(
            w,
            "    f{dst} = {};",
            fbin_expr(op, &format!("f{a}"), &format!("f{b}"))
        ),
        Instr::BinFK { op, dst, a, k } => writeln!(
            w,
            "    f{dst} = {};",
            fbin_expr(op, &format!("f{a}"), &c_f64(k))
        ),
        Instr::BinKF { op, dst, k, a } => writeln!(
            w,
            "    f{dst} = {};",
            fbin_expr(op, &c_f64(k), &format!("f{a}"))
        ),
        Instr::LoadStateOp { op, dst, var, b } => writeln!(
            w,
            "    f{dst} = {};{}",
            fbin_expr(op, &format!("({})", state_at(var)), &format!("f{b}")),
            state_sym(var)
        ),
        Instr::LoadExtOp { op, dst, var, b } => writeln!(
            w,
            "    f{dst} = {};{}",
            fbin_expr(op, &format!("(ext[{var}][cell])"), &format!("f{b}")),
            ext_sym(var)
        ),
        Instr::NegF { dst, a } => writeln!(w, "    f{dst} = -f{a};"),
        // Unfused on purpose: the interpreter computes a*b then +c.
        Instr::FmaF { dst, a, b, c } => {
            writeln!(w, "    f{dst} = f{a} * f{b} + f{c};")
        }
        Instr::Math1 { f, dst, a } => writeln!(
            w,
            "    f{dst} = m->fns[{}](f{a}, 0.0); /* {} */",
            math_slot(f),
            f.name()
        ),
        Instr::Math2 { f, dst, a, b } => writeln!(
            w,
            "    f{dst} = m->fns[{}](f{a}, f{b}); /* {} */",
            math_slot(f),
            f.name()
        ),
        Instr::CmpF { pred, dst, a, b } => {
            writeln!(w, "    b{dst} = f{a} {} f{b};", cmpf_sym(pred))
        }
        Instr::CmpI { pred, dst, a, b } => {
            writeln!(w, "    b{dst} = i{a} {} i{b};", cmpi_sym(pred))
        }
        Instr::BinB { op, dst, a, b } => {
            let sym = match op {
                BBin::And => "&",
                BBin::Or => "|",
                BBin::Xor => "^",
            };
            writeln!(w, "    b{dst} = b{a} {sym} b{b};")
        }
        Instr::SelectF { dst, cond, a, b } => {
            writeln!(w, "    f{dst} = b{cond} ? f{a} : f{b};")
        }
        Instr::SelectB { dst, cond, a, b } => {
            writeln!(w, "    b{dst} = b{cond} ? b{a} : b{b};")
        }
        Instr::SIToFP { dst, a } => writeln!(w, "    f{dst} = (double)i{a};"),
        Instr::BinI { op, dst, a, b } => {
            // Wrapping arithmetic via unsigned (signed overflow is UB in C).
            let sym = match op {
                IBin::Add => "+",
                IBin::Sub => "-",
                IBin::Mul => "*",
            };
            writeln!(
                w,
                "    i{dst} = (int64_t)((uint64_t)i{a} {sym} (uint64_t)i{b});"
            )
        }
        Instr::LutVec {
            table,
            col,
            dst,
            key,
        }
        | Instr::LutScalar {
            table,
            col,
            dst,
            key,
        } => writeln!(
            w,
            "    f{dst} = m->lut_linear(m->lut_ctx, {table}, {col}, f{key});{}",
            sym(&program.lut_tables.get(table as usize))
        ),
        Instr::LutCubic {
            table,
            col,
            dst,
            key,
        } => writeln!(
            w,
            "    f{dst} = m->lut_cubic(m->lut_ctx, {table}, {col}, f{key});{}",
            sym(&program.lut_tables.get(table as usize))
        ),
        Instr::Jump { target } => writeln!(w, "    goto {};", label(target)),
        Instr::JumpIfNot { cond, target } => {
            writeln!(w, "    if (!b{cond}) goto {};", label(target))
        }
        Instr::Ret => writeln!(w, "    goto L_end;"),
    }
    .unwrap();
}

fn cmpf_sym(pred: limpet_ir::CmpFPred) -> &'static str {
    use limpet_ir::CmpFPred as P;
    // Rust `==`/`!=`/`<`… on f64 and the C operators agree on every
    // input including NaN (both languages lower to the same IEEE
    // comparisons), so plain operators preserve bit-identity.
    match pred {
        P::Oeq => "==",
        P::One => "!=",
        P::Olt => "<",
        P::Ole => "<=",
        P::Ogt => ">",
        P::Oge => ">=",
    }
}

fn cmpi_sym(pred: limpet_ir::CmpIPred) -> &'static str {
    use limpet_ir::CmpIPred as P;
    match pred {
        P::Eq => "==",
        P::Ne => "!=",
        P::Slt => "<",
        P::Sle => "<=",
        P::Sgt => ">",
        P::Sge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_floats_round_trip() {
        for v in [
            1.0,
            -2.5,
            0.1,
            1e-300,
            -1e300,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::MAX,
        ] {
            let lit = c_f64(v);
            // Parse the hex float back: sign 0x1.<mant>p<exp>.
            let s = lit.strip_prefix('-').unwrap_or(&lit);
            let neg = lit.starts_with('-');
            let body = s.strip_prefix("0x").expect(&lit);
            let (lead, rest) = body.split_once('.').expect(&lit);
            let (mant_hex, exp) = rest.split_once('p').expect(&lit);
            let mant = u64::from_str_radix(mant_hex, 16).unwrap();
            let exp: i64 = exp.parse().unwrap();
            let mut x = (if lead == "1" { 1.0 } else { 0.0 }) + mant as f64 / 2f64.powi(52);
            x *= 2f64.powi(exp as i32);
            if neg {
                x = -x;
            }
            assert_eq!(x.to_bits(), v.to_bits(), "{v} -> {lit}");
        }
        assert_eq!(c_f64(0.0), "0.0");
        assert_eq!(c_f64(-0.0), "-0.0");
        assert!(c_f64(f64::NAN).contains("0.0 / 0.0"));
        assert_eq!(c_f64(f64::INFINITY), "(1.0 / 0.0)");
        assert_eq!(c_f64(f64::NEG_INFINITY), "(-1.0 / 0.0)");
    }

    #[test]
    fn math_table_matches_slots() {
        let table = native_math_table();
        assert_eq!(table.len(), NATIVE_TABLE_SLOTS);
        for f in MathFn::ALL {
            let got = table[math_slot(f)](0.37, 2.0);
            let want = f.eval(0.37, 2.0);
            assert_eq!(got.to_bits(), want.to_bits(), "{}", f.name());
        }
        assert_eq!(table[SLOT_MIN](1.0, 2.0), 1.0);
        assert_eq!(table[SLOT_MAX](1.0, 2.0), 2.0);
        assert_eq!(table[SLOT_REM](7.5, 2.0), 7.5 % 2.0);
    }
}
