//! # limpet-microbench
//!
//! A self-contained, offline re-implementation of the subset of the
//! [Criterion](https://docs.rs/criterion) API that the `limpet-bench`
//! suite uses. The build environment has no network access to crates.io,
//! so bench sources keep their original `use criterion::...;` form via a
//! Cargo dependency rename (`criterion = { package = "limpet-microbench",
//! ... }`).
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, sizes an
//! iteration batch so one sample lasts roughly `measurement_time /
//! sample_size`, collects `sample_size` samples, and reports the median,
//! min, and max nanoseconds per iteration (plus derived throughput when
//! [`BenchmarkGroup::throughput`] was set). Samples whose deviation from
//! the median exceeds 3.5x the median absolute deviation are rejected as
//! outliers (scheduler preemptions, frequency ramps) before the stats
//! are computed, and the rejection count is reported. There are no
//! plots, no saved baselines, and no statistical regression analysis —
//! this is a comparator, not a statistician.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (a stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(BenchmarkId::from(id.into()), f);
        self
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Only a parameter (no function name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        self.run_one(&id.id, &mut f);
        self
    }

    /// Benchmarks `f` with an input value (passed by reference).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility; prints nothing).
    pub fn finish(self) {}

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run with growing batches until the budget is spent,
        // learning the per-iteration cost along the way.
        let warm_start = Instant::now();
        let mut per_iter = loop {
            f(&mut b);
            let spent = warm_start.elapsed();
            if spent >= self.warm_up_time {
                break b.elapsed.as_secs_f64() / b.iters as f64;
            }
            b.iters = (b.iters * 2).min(1 << 30);
        };
        if !(per_iter.is_finite() && per_iter > 0.0) {
            per_iter = 1e-9;
        }

        // Sampling: size each batch so sample_size samples fill the
        // measurement budget.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter) as u64).clamp(1, 1 << 30);
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                b.iters = batch;
                f(&mut b);
                b.elapsed.as_secs_f64() / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let (kept, rejected) = reject_outliers(&samples);
        let median = kept[kept.len() / 2];
        let (lo, hi) = (kept[0], kept[kept.len() - 1]);

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12}/s", si(n as f64 / median, "elem"))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12}/s", si(n as f64 / median, "B"))
            }
            None => String::new(),
        };
        let label = if self.name.is_empty() {
            id.to_owned()
        } else {
            format!("{}/{}", self.name, id)
        };
        let outliers = if rejected > 0 {
            format!("  ({rejected} outliers)")
        } else {
            String::new()
        };
        println!(
            "{label:<56} {:>12} [{} .. {}]{rate}{outliers}",
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi),
        );
    }
}

/// Rejects outliers by the modified Z-score rule: a sample is kept when
/// its absolute deviation from the median is at most 3.5x the median
/// absolute deviation (MAD). When the MAD is zero (more than half the
/// samples identical — common for very fast, quantized timings) every
/// sample is kept, since any deviation test would then reject all noise
/// indiscriminately. `samples` must be sorted; the kept slice stays
/// sorted. Returns the kept samples and the rejection count.
fn reject_outliers(samples: &[f64]) -> (Vec<f64>, usize) {
    let median = samples[samples.len() / 2];
    let mut deviations: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    let mad = deviations[deviations.len() / 2];
    if mad == 0.0 {
        return (samples.to_vec(), 0);
    }
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|s| (s - median).abs() <= 3.5 * mad)
        .collect();
    let rejected = samples.len() - kept.len();
    (kept, rejected)
}

/// The iteration driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness asks.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Declares a group-runner function from benchmark functions
/// (`criterion_group!(benches, bench_a, bench_b);`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // `--test-threads` etc. Run everything either way.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(50));
        let mut count = 0u64;
        g.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.id, "plain");
    }

    #[test]
    fn mad_rejection_drops_spikes_only() {
        // A tight cluster plus one scheduler spike: the spike goes.
        let samples = [1.00, 1.01, 1.02, 1.03, 1.04, 1.05, 9.0];
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 6);
        assert!(kept.iter().all(|&s| s < 2.0));
    }

    #[test]
    fn mad_zero_keeps_everything() {
        // Quantized timings: most samples identical, MAD == 0. Rejecting
        // by any deviation threshold would drop all noise samples, so
        // nothing is rejected.
        let samples = [1.0, 1.0, 1.0, 1.0, 1.0, 3.0];
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), samples.len());
    }

    #[test]
    fn mad_keeps_ordinary_spread() {
        // A plausible spread with no spike: nothing should be rejected.
        let samples = [0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2];
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 0);
        assert_eq!(kept, samples.to_vec());
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
        assert!(si(2.5e9, "B").starts_with("2.50 G"));
    }
}
