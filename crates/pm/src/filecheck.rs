//! FileCheck-lite: golden-output matching for pass tests.
//!
//! A tiny, in-tree subset of LLVM's FileCheck, enough for IR-to-IR pass
//! tests: check directives are written as `//`-comments next to the input
//! IR (the IR lexer skips comments, so one `.mlir` file carries both),
//! and the matcher walks the pass output line by line.
//!
//! Supported directives (substring matching, leading/trailing whitespace
//! of the pattern ignored):
//!
//! * `// CHECK: pat` — some line at or after the current position
//!   contains `pat`; the position advances past it.
//! * `// CHECK-NEXT: pat` — the line immediately after the previous match
//!   contains `pat`.
//! * `// CHECK-NOT: pat` — `pat` does not occur between the previous
//!   match and the next `CHECK`/`CHECK-NEXT` match (or the end of the
//!   output when no further positive directive follows).
//!
//! # Examples
//!
//! ```
//! use limpet_pm::filecheck::check;
//! let output = "a = 1\nb = 2\nc = 3\n";
//! let checks = "
//!     // CHECK: a = 1
//!     // CHECK-NOT: dead
//!     // CHECK-NEXT: b = 2
//! ";
//! check(output, checks).unwrap();
//! assert!(check(output, "// CHECK: z = 9").is_err());
//! ```

use std::fmt;

/// The kind of one check directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// `// CHECK:` — match anywhere at or after the cursor.
    Check,
    /// `// CHECK-NEXT:` — match on the line right after the previous one.
    CheckNext,
    /// `// CHECK-NOT:` — forbid a match before the next positive check.
    CheckNot,
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Directive::Check => "CHECK",
            Directive::CheckNext => "CHECK-NEXT",
            Directive::CheckNot => "CHECK-NOT",
        })
    }
}

/// One parsed check directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckLine {
    /// The directive kind.
    pub directive: Directive,
    /// The pattern text (trimmed).
    pub pattern: String,
    /// 1-based line number in the check source (for diagnostics).
    pub line: usize,
}

/// A failed check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCheckError {
    /// Human-readable description with directive and output context.
    pub message: String,
}

impl fmt::Display for FileCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FileCheckError {}

/// Extracts the check directives from a test source, in order.
pub fn extract_checks(source: &str) -> Vec<CheckLine> {
    let mut checks = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let Some(pos) = raw.find("//") else { continue };
        let comment = raw[pos + 2..].trim_start();
        for (prefix, directive) in [
            ("CHECK-NEXT:", Directive::CheckNext),
            ("CHECK-NOT:", Directive::CheckNot),
            ("CHECK:", Directive::Check),
        ] {
            if let Some(rest) = comment.strip_prefix(prefix) {
                checks.push(CheckLine {
                    directive,
                    pattern: rest.trim().to_owned(),
                    line: idx + 1,
                });
                break;
            }
        }
    }
    checks
}

/// Runs extracted directives against an output text.
///
/// # Errors
///
/// Returns the first failing directive with surrounding output context.
pub fn run_checks(output: &str, checks: &[CheckLine]) -> Result<(), FileCheckError> {
    let lines: Vec<&str> = output.lines().collect();
    // Index of the first line not yet consumed by a positive match.
    let mut cursor = 0usize;
    // CHECK-NOT patterns awaiting the next positive match (or EOF).
    let mut pending_not: Vec<&CheckLine> = Vec::new();

    let fail = |check: &CheckLine, detail: String| -> FileCheckError {
        FileCheckError {
            message: format!(
                "{} (directive '// {}: {}' at check line {})\noutput was:\n{}",
                detail,
                check.directive,
                check.pattern,
                check.line,
                excerpt(&lines)
            ),
        }
    };

    for check in checks {
        match check.directive {
            Directive::CheckNot => pending_not.push(check),
            Directive::Check | Directive::CheckNext => {
                let matched = if check.directive == Directive::CheckNext {
                    if cursor == 0 {
                        return Err(fail(
                            check,
                            "CHECK-NEXT cannot be the first positive directive".to_owned(),
                        ));
                    }
                    if cursor < lines.len() && lines[cursor].contains(check.pattern.as_str()) {
                        cursor
                    } else {
                        return Err(fail(
                            check,
                            format!(
                                "expected the next line (output line {}) to contain the pattern, got {}",
                                cursor + 1,
                                lines
                                    .get(cursor)
                                    .map(|l| format!("'{l}'"))
                                    .unwrap_or_else(|| "end of output".to_owned()),
                            ),
                        ));
                    }
                } else {
                    match (cursor..lines.len()).find(|&i| lines[i].contains(check.pattern.as_str()))
                    {
                        Some(i) => i,
                        None => {
                            return Err(fail(
                                check,
                                format!("pattern not found at or after output line {}", cursor + 1),
                            ))
                        }
                    }
                };
                // The skipped span must be free of pending CHECK-NOTs.
                for not in pending_not.drain(..) {
                    if let Some(bad) =
                        (cursor..matched).find(|&i| lines[i].contains(not.pattern.as_str()))
                    {
                        return Err(fail(
                            not,
                            format!(
                                "forbidden pattern found on output line {}: '{}'",
                                bad + 1,
                                lines[bad]
                            ),
                        ));
                    }
                }
                cursor = matched + 1;
            }
        }
    }
    // Trailing CHECK-NOTs guard until the end of the output.
    for not in pending_not {
        if let Some(bad) = (cursor..lines.len()).find(|&i| lines[i].contains(not.pattern.as_str()))
        {
            return Err(fail(
                not,
                format!(
                    "forbidden pattern found on output line {}: '{}'",
                    bad + 1,
                    lines[bad]
                ),
            ));
        }
    }
    Ok(())
}

/// Convenience: extract directives from `check_source` and run them
/// against `output`.
///
/// # Errors
///
/// See [`run_checks`]; additionally errors when no directives are found
/// (an empty check file would vacuously pass).
pub fn check(output: &str, check_source: &str) -> Result<(), FileCheckError> {
    let checks = extract_checks(check_source);
    if checks.is_empty() {
        return Err(FileCheckError {
            message: "no CHECK directives found in check source".to_owned(),
        });
    }
    run_checks(output, &checks)
}

fn excerpt(lines: &[&str]) -> String {
    const MAX: usize = 40;
    let mut out: String = lines
        .iter()
        .take(MAX)
        .map(|l| format!("  | {l}\n"))
        .collect();
    if lines.len() > MAX {
        out.push_str(&format!("  | ... ({} more lines)\n", lines.len() - MAX));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const OUT: &str = "alpha\nbeta\ngamma\ndelta\n";

    #[test]
    fn in_order_matching() {
        check(OUT, "// CHECK: alpha\n// CHECK: gamma").unwrap();
        // Out of order fails.
        assert!(check(OUT, "// CHECK: gamma\n// CHECK: alpha").is_err());
        // Same line cannot match twice.
        assert!(check(OUT, "// CHECK: alpha\n// CHECK: alpha").is_err());
    }

    #[test]
    fn check_next_is_strict() {
        check(OUT, "// CHECK: alpha\n// CHECK-NEXT: beta").unwrap();
        assert!(check(OUT, "// CHECK: alpha\n// CHECK-NEXT: gamma").is_err());
        assert!(check(OUT, "// CHECK-NEXT: alpha").is_err());
    }

    #[test]
    fn check_not_guards_spans() {
        // `beta` sits strictly between the `alpha` and `gamma` matches.
        check(OUT, "// CHECK: alpha\n// CHECK-NOT: beta\n// CHECK: gamma").unwrap_err();
        check(OUT, "// CHECK: alpha\n// CHECK-NOT: zeta\n// CHECK: delta").unwrap();
        // Trailing NOT guards to EOF.
        assert!(check(OUT, "// CHECK: beta\n// CHECK-NOT: delta").is_err());
        check(OUT, "// CHECK: delta\n// CHECK-NOT: beta").unwrap();
    }

    #[test]
    fn directives_extracted_with_lines() {
        let src = "%0 = op // CHECK: x\n//  CHECK-NOT:  y\n// not a directive";
        let checks = extract_checks(src);
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].directive, Directive::Check);
        assert_eq!(checks[0].line, 1);
        assert_eq!(checks[1].directive, Directive::CheckNot);
        assert_eq!(checks[1].pattern, "y");
    }

    #[test]
    fn empty_checks_rejected() {
        assert!(check(OUT, "nothing here").is_err());
    }
}
