//! Textual pipeline descriptions.
//!
//! The grammar mirrors MLIR's `--pass-pipeline` at the granularity this
//! workspace needs:
//!
//! ```text
//! pipeline := pass ("," pass)*            (empty text = empty pipeline)
//! pass     := name ("{" opt ("," opt)* "}")? ("(" pipeline ")")?
//! name     := [A-Za-z0-9_-]+
//! opt      := key "=" value
//! ```
//!
//! e.g. `"const-prop,lut-mode,vectorize{width=4}"`. The parenthesized
//! form nests a sub-pipeline under a combinator pass — currently only
//! `fixpoint(...)`, e.g. `"fixpoint{max=10}(const-prop,cse,dce)"`, which
//! reruns its body until no pass reports a change.

use std::collections::BTreeMap;
use std::fmt;

/// An error from parsing a pipeline description or constructing a pass
/// from one (unknown pass, bad or missing option).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineParseError {
    /// Human-readable description.
    pub message: String,
}

impl PipelineParseError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> PipelineParseError {
        PipelineParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for PipelineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline error: {}", self.message)
    }
}

impl std::error::Error for PipelineParseError {}

/// The `{key=value,...}` options attached to one pass in a pipeline
/// description.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassOptions {
    entries: BTreeMap<String, String>,
}

impl PassOptions {
    /// Options with no entries.
    pub fn empty() -> PassOptions {
        PassOptions::default()
    }

    /// Inserts an option (used by the parser and by tests).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.entries.insert(key.into(), value.into());
    }

    /// Whether no options were given.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw value of `key`, if present.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// The value of a required `u32` option.
    ///
    /// # Errors
    ///
    /// Errors when the key is absent or not an unsigned integer.
    pub fn u32_of(&self, pass: &str, key: &str) -> Result<u32, PipelineParseError> {
        let raw = self.str_of(key).ok_or_else(|| {
            PipelineParseError::new(format!("pass '{pass}' requires option '{key}'"))
        })?;
        raw.parse().map_err(|_| {
            PipelineParseError::new(format!(
                "pass '{pass}': option '{key}' must be an unsigned integer, got '{raw}'"
            ))
        })
    }

    /// Rejects any option key outside `allowed` (pass factories call this
    /// so typos fail loudly instead of being ignored).
    ///
    /// # Errors
    ///
    /// Errors naming the first unexpected key.
    pub fn expect_only(&self, pass: &str, allowed: &[&str]) -> Result<(), PipelineParseError> {
        for key in self.entries.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(PipelineParseError::new(format!(
                    "pass '{pass}' does not take option '{key}' (allowed: {})",
                    if allowed.is_empty() {
                        "none".to_owned()
                    } else {
                        allowed.join(", ")
                    }
                )));
            }
        }
        Ok(())
    }
}

/// One parsed element of a pipeline description: a pass name plus its
/// options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSpec {
    /// The pass name as written.
    pub name: String,
    /// The `{...}` options (empty when none were written).
    pub options: PassOptions,
    /// The `(...)` sub-pipeline for combinator passes like `fixpoint`
    /// (empty for ordinary passes).
    pub nested: Vec<PassSpec>,
}

/// Parses a pipeline description into pass specs (no registry lookup).
///
/// # Errors
///
/// Errors on empty pass names, malformed `{key=value}` blocks, and
/// trailing garbage.
///
/// # Examples
///
/// ```
/// use limpet_pm::parse_pipeline_spec;
/// let specs = parse_pipeline_spec("const-prop, vectorize{width=4}").unwrap();
/// assert_eq!(specs.len(), 2);
/// assert_eq!(specs[1].name, "vectorize");
/// assert_eq!(specs[1].options.str_of("width"), Some("4"));
/// ```
pub fn parse_pipeline_spec(text: &str) -> Result<Vec<PassSpec>, PipelineParseError> {
    let mut specs = Vec::new();
    let mut rest = text.trim();
    if rest.is_empty() {
        return Ok(specs);
    }
    loop {
        let (spec, tail) = parse_one_pass(rest)?;
        specs.push(spec);
        rest = tail.trim_start();
        if rest.is_empty() {
            return Ok(specs);
        }
        rest = rest.strip_prefix(',').ok_or_else(|| {
            PipelineParseError::new(format!("expected ',' between passes near '{rest}'"))
        })?;
        rest = rest.trim_start();
        if rest.is_empty() {
            return Err(PipelineParseError::new("trailing ',' in pipeline"));
        }
    }
}

fn is_name_byte(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '-' || c == '_'
}

fn parse_one_pass(text: &str) -> Result<(PassSpec, &str), PipelineParseError> {
    let name_end = text.find(|c| !is_name_byte(c)).unwrap_or(text.len());
    let name = &text[..name_end];
    if name.is_empty() {
        return Err(PipelineParseError::new(format!(
            "expected a pass name near '{text}'"
        )));
    }
    let mut options = PassOptions::empty();
    let rest = text[name_end..].trim_start();
    let tail = if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}').ok_or_else(|| {
            PipelineParseError::new(format!("unterminated '{{' in options of pass '{name}'"))
        })?;
        for item in body[..close].split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (k, v) = item.split_once('=').ok_or_else(|| {
                PipelineParseError::new(format!(
                    "option '{item}' of pass '{name}' must be key=value"
                ))
            })?;
            let (k, v) = (k.trim(), v.trim());
            if k.is_empty() || v.is_empty() {
                return Err(PipelineParseError::new(format!(
                    "option '{item}' of pass '{name}' must be key=value"
                )));
            }
            options.set(k, v);
        }
        &body[close + 1..]
    } else {
        rest
    };
    let mut nested = Vec::new();
    let tail = if let Some(body) = tail.trim_start().strip_prefix('(') {
        // Find the matching ')' by depth so nested combinators parse.
        let mut depth = 1usize;
        let close = body
            .char_indices()
            .find_map(|(i, c)| {
                match c {
                    '(' => depth += 1,
                    ')' => depth -= 1,
                    _ => {}
                }
                (depth == 0).then_some(i)
            })
            .ok_or_else(|| {
                PipelineParseError::new(format!(
                    "unterminated '(' in sub-pipeline of pass '{name}'"
                ))
            })?;
        nested = parse_pipeline_spec(&body[..close])?;
        if nested.is_empty() {
            return Err(PipelineParseError::new(format!(
                "empty sub-pipeline '()' on pass '{name}'"
            )));
        }
        &body[close + 1..]
    } else {
        tail
    };
    Ok((
        PassSpec {
            name: name.to_owned(),
            options,
            nested,
        },
        tail,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_sequence() {
        let specs = parse_pipeline_spec("const-prop,cse,dce").unwrap();
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["const-prop", "cse", "dce"]);
        assert!(specs.iter().all(|s| s.options.is_empty()));
    }

    #[test]
    fn parses_options_and_whitespace() {
        let specs = parse_pipeline_spec("  vectorize { width = 8 } , dce ").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "vectorize");
        assert_eq!(specs[0].options.str_of("width"), Some("8"));
        assert_eq!(specs[0].options.u32_of("vectorize", "width").unwrap(), 8);
    }

    #[test]
    fn empty_text_is_empty_pipeline() {
        assert!(parse_pipeline_spec("").unwrap().is_empty());
        assert!(parse_pipeline_spec("   ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_text() {
        for bad in [
            ",cse",
            "cse,",
            "vectorize{width}",
            "vectorize{width=4",
            "a b",
            "fixpoint(cse",
            "fixpoint()",
            "fixpoint(cse,)",
        ] {
            assert!(parse_pipeline_spec(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_nested_sub_pipelines() {
        let specs = parse_pipeline_spec("fixpoint{max=4}(const-prop, cse, dce), lut-mode").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "fixpoint");
        assert_eq!(specs[0].options.str_of("max"), Some("4"));
        let inner: Vec<&str> = specs[0].nested.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(inner, ["const-prop", "cse", "dce"]);
        assert!(specs[1].nested.is_empty());

        // Nesting recurses, and options survive inside the body.
        let specs = parse_pipeline_spec("fixpoint(fixpoint(cse),vectorize{width=2})").unwrap();
        assert_eq!(specs[0].nested[0].nested[0].name, "cse");
        assert_eq!(specs[0].nested[1].options.str_of("width"), Some("2"));
    }

    #[test]
    fn option_validation_helpers() {
        let specs = parse_pipeline_spec("vectorize{width=4,bogus=1}").unwrap();
        let opts = &specs[0].options;
        assert!(opts.expect_only("vectorize", &["width"]).is_err());
        assert!(opts.expect_only("vectorize", &["width", "bogus"]).is_ok());
        assert!(opts.u32_of("vectorize", "missing").is_err());
        let specs = parse_pipeline_spec("vectorize{width=wide}").unwrap();
        assert!(specs[0].options.u32_of("vectorize", "width").is_err());
    }
}
