//! The pass registry: passes self-register by name so pipelines can be
//! built from textual descriptions (`limpet-opt --pipeline "..."`).

use crate::parse::{parse_pipeline_spec, PassOptions, PipelineParseError};
use crate::{Pass, PassManager};
use std::collections::BTreeMap;

/// Constructs one pass instance from its parsed options.
pub type PassFactory = fn(&PassOptions) -> Result<Box<dyn Pass>, PipelineParseError>;

/// A name → factory table for building pipelines from text.
///
/// The workspace's canonical instance (every `limpet-passes` pass plus
/// aliases) is `limpet_passes::registry()`.
///
/// # Examples
///
/// ```
/// use limpet_ir::Module;
/// use limpet_pm::{Pass, PassCtx, PassOptions, PassRegistry};
///
/// #[derive(Debug)]
/// struct Nop;
/// impl Pass for Nop {
///     fn name(&self) -> &'static str {
///         "nop"
///     }
///     fn run(&self, _m: &mut Module, _ctx: &mut PassCtx) -> bool {
///         false
///     }
/// }
///
/// let mut registry = PassRegistry::new();
/// registry.register("nop", |opts| {
///     opts.expect_only("nop", &[])?;
///     Ok(Box::new(Nop))
/// });
/// let pm = registry.parse_pipeline("nop,nop").unwrap();
/// assert_eq!(pm.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct PassRegistry {
    factories: BTreeMap<&'static str, PassFactory>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> PassRegistry {
        PassRegistry::default()
    }

    /// Registers a factory under `name`.
    ///
    /// # Panics
    ///
    /// Panics when the name is already taken (registration is a
    /// startup-time programming act, not a runtime input).
    pub fn register(&mut self, name: &'static str, factory: PassFactory) {
        let prev = self.factories.insert(name, factory);
        assert!(prev.is_none(), "pass '{name}' registered twice");
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.keys().copied().collect()
    }

    /// Instantiates the named pass.
    ///
    /// # Errors
    ///
    /// Errors on unknown names or option validation failures.
    pub fn create(
        &self,
        name: &str,
        options: &PassOptions,
    ) -> Result<Box<dyn Pass>, PipelineParseError> {
        let factory = self.factories.get(name).ok_or_else(|| {
            PipelineParseError::new(format!(
                "unknown pass '{name}' (registered: {})",
                self.names().join(", ")
            ))
        })?;
        factory(options)
    }

    /// Parses a textual pipeline description into a ready-to-run
    /// [`PassManager`] (verification and dumps at their defaults; callers
    /// configure the returned manager).
    ///
    /// # Errors
    ///
    /// Errors on malformed text, unknown passes, or bad options.
    pub fn parse_pipeline(&self, text: &str) -> Result<PassManager, PipelineParseError> {
        let mut pm = PassManager::new();
        for spec in parse_pipeline_spec(text)? {
            pm.add_boxed(self.create(&spec.name, &spec.options)?);
        }
        Ok(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassCtx;
    use limpet_ir::Module;

    #[derive(Debug)]
    struct Widen(u32);
    impl Pass for Widen {
        fn name(&self) -> &'static str {
            "widen"
        }
        fn run(&self, module: &mut Module, _ctx: &mut PassCtx) -> bool {
            module.attrs.set("width", self.0 as i64);
            true
        }
    }

    fn registry() -> PassRegistry {
        let mut r = PassRegistry::new();
        r.register("widen", |opts| {
            opts.expect_only("widen", &["width"])?;
            Ok(Box::new(Widen(opts.u32_of("widen", "width")?)))
        });
        r
    }

    #[test]
    fn builds_passes_with_options() {
        let r = registry();
        let pm = r.parse_pipeline("widen{width=4}").unwrap();
        let mut m = Module::new("t");
        pm.run(&mut m).unwrap();
        assert_eq!(m.attrs.i64_of("width"), Some(4));
    }

    #[test]
    fn unknown_pass_and_bad_options_error() {
        let r = registry();
        let err = r.parse_pipeline("nope").unwrap_err();
        assert!(err.to_string().contains("unknown pass 'nope'"), "{err}");
        assert!(r.parse_pipeline("widen").is_err(), "missing width accepted");
        assert!(r.parse_pipeline("widen{width=4,x=1}").is_err());
    }

    #[test]
    fn duplicate_registration_panics() {
        let mut r = registry();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.register("widen", |_| unreachable!());
        }));
        assert!(result.is_err());
    }
}
