//! The pass registry: passes self-register by name so pipelines can be
//! built from textual descriptions (`limpet-opt --pipeline "..."`).

use crate::parse::{parse_pipeline_spec, PassOptions, PassSpec, PipelineParseError};
use crate::{Fixpoint, Pass, PassManager};
use std::collections::BTreeMap;

/// Constructs one pass instance from its parsed options.
pub type PassFactory = fn(&PassOptions) -> Result<Box<dyn Pass>, PipelineParseError>;

/// A name → factory table for building pipelines from text.
///
/// The workspace's canonical instance (every `limpet-passes` pass plus
/// aliases) is `limpet_passes::registry()`.
///
/// # Examples
///
/// ```
/// use limpet_ir::Module;
/// use limpet_pm::{Pass, PassCtx, PassOptions, PassRegistry};
///
/// #[derive(Debug)]
/// struct Nop;
/// impl Pass for Nop {
///     fn name(&self) -> &'static str {
///         "nop"
///     }
///     fn run(&self, _m: &mut Module, _ctx: &mut PassCtx) -> bool {
///         false
///     }
/// }
///
/// let mut registry = PassRegistry::new();
/// registry.register("nop", |opts| {
///     opts.expect_only("nop", &[])?;
///     Ok(Box::new(Nop))
/// });
/// let pm = registry.parse_pipeline("nop,nop").unwrap();
/// assert_eq!(pm.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct PassRegistry {
    factories: BTreeMap<&'static str, PassFactory>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> PassRegistry {
        PassRegistry::default()
    }

    /// Registers a factory under `name`.
    ///
    /// # Panics
    ///
    /// Panics when the name is already taken (registration is a
    /// startup-time programming act, not a runtime input).
    pub fn register(&mut self, name: &'static str, factory: PassFactory) {
        let prev = self.factories.insert(name, factory);
        assert!(prev.is_none(), "pass '{name}' registered twice");
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.keys().copied().collect()
    }

    /// Instantiates the named pass.
    ///
    /// # Errors
    ///
    /// Errors on unknown names or option validation failures.
    pub fn create(
        &self,
        name: &str,
        options: &PassOptions,
    ) -> Result<Box<dyn Pass>, PipelineParseError> {
        let factory = self.factories.get(name).ok_or_else(|| {
            PipelineParseError::new(format!(
                "unknown pass '{name}' (registered: {})",
                self.names().join(", ")
            ))
        })?;
        factory(options)
    }

    /// Parses a textual pipeline description into a ready-to-run
    /// [`PassManager`] (verification and dumps at their defaults; callers
    /// configure the returned manager).
    ///
    /// The combinator `fixpoint{max=N}(pass,...)` is handled here rather
    /// than by a factory: its body is built recursively through this
    /// registry and wrapped in a [`Fixpoint`].
    ///
    /// # Errors
    ///
    /// Errors on malformed text, unknown passes, bad options, or a
    /// `(...)` sub-pipeline attached to a non-combinator pass.
    pub fn parse_pipeline(&self, text: &str) -> Result<PassManager, PipelineParseError> {
        let mut pm = PassManager::new();
        for spec in parse_pipeline_spec(text)? {
            pm.add_boxed(self.build(&spec)?);
        }
        Ok(pm)
    }

    /// Builds one pass from a parsed spec (recursing into combinators).
    fn build(&self, spec: &PassSpec) -> Result<Box<dyn Pass>, PipelineParseError> {
        if spec.name == "fixpoint" {
            if spec.nested.is_empty() {
                return Err(PipelineParseError::new(
                    "'fixpoint' requires a sub-pipeline, e.g. fixpoint(const-prop,cse,dce)",
                ));
            }
            spec.options.expect_only("fixpoint", &["max"])?;
            let max = match spec.options.str_of("max") {
                Some(_) => spec.options.u32_of("fixpoint", "max")?,
                None => Fixpoint::DEFAULT_MAX,
            };
            let inner = spec
                .nested
                .iter()
                .map(|s| self.build(s))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Box::new(Fixpoint::new(inner, max)));
        }
        if !spec.nested.is_empty() {
            return Err(PipelineParseError::new(format!(
                "pass '{}' does not take a '(...)' sub-pipeline (only 'fixpoint' does)",
                spec.name
            )));
        }
        self.create(&spec.name, &spec.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassCtx;
    use limpet_ir::Module;

    #[derive(Debug)]
    struct Widen(u32);
    impl Pass for Widen {
        fn name(&self) -> &'static str {
            "widen"
        }
        fn run(&self, module: &mut Module, _ctx: &mut PassCtx) -> bool {
            module.attrs.set("width", self.0 as i64);
            true
        }
    }

    fn registry() -> PassRegistry {
        let mut r = PassRegistry::new();
        r.register("widen", |opts| {
            opts.expect_only("widen", &["width"])?;
            Ok(Box::new(Widen(opts.u32_of("widen", "width")?)))
        });
        r
    }

    #[test]
    fn builds_passes_with_options() {
        let r = registry();
        let pm = r.parse_pipeline("widen{width=4}").unwrap();
        let mut m = Module::new("t");
        pm.run(&mut m).unwrap();
        assert_eq!(m.attrs.i64_of("width"), Some(4));
    }

    #[test]
    fn unknown_pass_and_bad_options_error() {
        let r = registry();
        let err = r.parse_pipeline("nope").unwrap_err();
        assert!(err.to_string().contains("unknown pass 'nope'"), "{err}");
        assert!(r.parse_pipeline("widen").is_err(), "missing width accepted");
        assert!(r.parse_pipeline("widen{width=4,x=1}").is_err());
    }

    /// Increments a module attribute until it reaches the pass's target,
    /// reporting "changed" while it moves — a convergence workload.
    #[derive(Debug)]
    struct CountUpTo(i64);
    impl Pass for CountUpTo {
        fn name(&self) -> &'static str {
            "count-up"
        }
        fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
            let cur = module.attrs.i64_of("n").unwrap_or(0);
            ctx.count("visits", 1);
            if cur < self.0 {
                module.attrs.set("n", cur + 1);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn fixpoint_reruns_body_until_quiet() {
        let mut r = registry();
        r.register("count-up", |opts| {
            opts.expect_only("count-up", &[])?;
            Ok(Box::new(CountUpTo(3)))
        });
        let pm = r.parse_pipeline("fixpoint(count-up)").unwrap();
        assert_eq!(pm.pass_names(), ["fixpoint"]);
        let mut m = Module::new("t");
        let report = pm.run(&mut m).unwrap();
        assert_eq!(m.attrs.i64_of("n"), Some(3));
        // 3 changing iterations + 1 quiet one to observe convergence.
        assert_eq!(report.counter("fixpoint", "iterations"), Some(4));
        assert_eq!(report.counter("fixpoint", "visits"), Some(4));
        assert!(report.passes[0].changed);

        // The cap bounds runaway bodies.
        let pm = r.parse_pipeline("fixpoint{max=2}(count-up)").unwrap();
        let mut m = Module::new("t");
        let report = pm.run(&mut m).unwrap();
        assert_eq!(m.attrs.i64_of("n"), Some(2));
        assert_eq!(report.counter("fixpoint", "iterations"), Some(2));
    }

    #[test]
    fn fixpoint_misuse_errors() {
        let r = registry();
        assert!(r.parse_pipeline("fixpoint").is_err(), "missing body");
        let err = r
            .parse_pipeline("widen{width=2}(widen{width=2})")
            .unwrap_err();
        assert!(err.to_string().contains("sub-pipeline"), "{err}");
        assert!(r
            .parse_pipeline("fixpoint{bogus=1}(widen{width=2})")
            .is_err());
    }

    #[test]
    fn duplicate_registration_panics() {
        let mut r = registry();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.register("widen", |_| unreachable!());
        }));
        assert!(result.is_err());
    }
}
