//! # limpet-pm — the pass-management subsystem
//!
//! An MLIR-style pass manager for the mlir-lite IR: the infrastructure
//! layer that turns the workspace's transformation passes into *managed
//! pipelines* with ordering control, inter-pass verification, and
//! observability — mirroring how limpetMLIR itself gains leverage from
//! MLIR's `PassManager` + `mlir-opt` tooling rather than ad-hoc
//! translation calls.
//!
//! The crate provides four pieces:
//!
//! * [`Pass`] — the transformation interface (name, run-on-module, and
//!   counter reporting through [`PassCtx`]);
//! * [`PassManager`] — an ordered pipeline with configurable
//!   verify-after-each-pass (failures name the offending pass), per-pass
//!   wall-time and counter collection ([`RunReport`]), and
//!   `print_ir_before`/`print_ir_after` IR snapshots;
//! * [`PassRegistry`] + the textual pipeline parser — passes register by
//!   name and pipelines are built from strings such as
//!   `"const-prop,lut-mode,vectorize{width=4}"` (the `limpet-opt`
//!   driver's `--pipeline` argument);
//! * [`filecheck`] — a FileCheck-lite matcher (`// CHECK:`,
//!   `// CHECK-NEXT:`, `// CHECK-NOT:`) for golden IR-to-IR pass tests.
//!
//! The pass *implementations* live in `limpet-passes`, which depends on
//! this crate and registers every pass in its
//! `limpet_passes::registry()`.
//!
//! # Examples
//!
//! ```
//! use limpet_ir::{Builder, Func, Module};
//! use limpet_pm::{Pass, PassCtx, PassManager};
//!
//! /// A toy pass that tags the module.
//! #[derive(Debug)]
//! struct Tag;
//! impl Pass for Tag {
//!     fn name(&self) -> &'static str {
//!         "tag"
//!     }
//!     fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
//!         module.attrs.set("tagged", 1i64);
//!         ctx.count("modules-tagged", 1);
//!         true
//!     }
//! }
//!
//! let mut module = Module::new("demo");
//! let mut f = Func::new("compute", &[], &[]);
//! let mut b = Builder::new(&mut f);
//! b.ret(&[]);
//! module.add_func(f);
//!
//! let mut pm = PassManager::new();
//! pm.add(Tag).verify_each(true);
//! let report = pm.run(&mut module).unwrap();
//! assert!(report.any_changed());
//! assert_eq!(report.counter("tag", "modules-tagged"), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod filecheck;
mod parse;
mod registry;

pub use parse::{parse_pipeline_spec, PassOptions, PassSpec, PipelineParseError};
pub use registry::{PassFactory, PassRegistry};

use limpet_ir::{print_module, verify_module, Module, VerifyError};
use std::fmt;
use std::time::{Duration, Instant};

/// A module-level transformation.
///
/// Implementations mutate the module in place and report whether anything
/// changed; optional statistics go through the [`PassCtx`] counter sink.
pub trait Pass: fmt::Debug {
    /// The pass name, used for registry lookup, statistics, verification
    /// error attribution, and `print_ir_*` filters.
    fn name(&self) -> &'static str;

    /// Runs the pass; returns `true` if the module changed. Counters
    /// (e.g. `ops-folded`) are accumulated on `ctx`.
    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool;

    /// Runs the pass without instrumentation (convenience for direct
    /// invocation and tests).
    fn run_on(&self, module: &mut Module) -> bool {
        let mut ctx = PassCtx::default();
        self.run(module, &mut ctx)
    }
}

/// Per-run mutable context handed to a pass: the counter sink.
#[derive(Debug, Default)]
pub struct PassCtx {
    counters: Vec<(&'static str, u64)>,
}

impl PassCtx {
    /// Adds `n` to the named counter (created at zero on first use).
    pub fn count(&mut self, stat: &'static str, n: u64) {
        if let Some(entry) = self.counters.iter_mut().find(|(k, _)| *k == stat) {
            entry.1 += n;
        } else {
            self.counters.push((stat, n));
        }
    }

    /// The counters accumulated so far, in first-use order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }
}

/// Which passes an IR dump applies to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PrintIr {
    /// No dumps.
    #[default]
    Never,
    /// Dump around every pass.
    All,
    /// Dump only around the named pass.
    Only(String),
}

impl PrintIr {
    fn matches(&self, pass: &str) -> bool {
        match self {
            PrintIr::Never => false,
            PrintIr::All => true,
            PrintIr::Only(name) => name == pass,
        }
    }
}

/// Whether an [`IrDump`] was taken before or after its pass ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpPoint {
    /// Snapshot taken before the pass.
    Before,
    /// Snapshot taken after the pass.
    After,
}

impl fmt::Display for DumpPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DumpPoint::Before => "before",
            DumpPoint::After => "after",
        })
    }
}

/// One IR snapshot captured by `print_ir_before`/`print_ir_after`.
#[derive(Debug, Clone)]
pub struct IrDump {
    /// The pass the snapshot brackets.
    pub pass: &'static str,
    /// Before or after that pass.
    pub when: DumpPoint,
    /// The printed module text.
    pub text: String,
}

/// Execution record of one pass within a [`RunReport`].
#[derive(Debug, Clone)]
pub struct PassRun {
    /// The pass name.
    pub name: &'static str,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// Wall-clock time spent inside the pass (excludes verification).
    pub duration: Duration,
    /// Counters the pass reported, in first-use order.
    pub counters: Vec<(&'static str, u64)>,
}

/// Everything one [`PassManager::run`] observed: per-pass execution
/// records plus any requested IR dumps.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// One record per executed pass, in pipeline order.
    pub passes: Vec<PassRun>,
    /// IR snapshots, in capture order.
    pub dumps: Vec<IrDump>,
}

impl RunReport {
    /// Whether any pass reported a change.
    pub fn any_changed(&self) -> bool {
        self.passes.iter().any(|p| p.changed)
    }

    /// Total wall-clock time across all passes.
    pub fn total_time(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }

    /// The value of `stat` reported by the first execution of `pass`.
    pub fn counter(&self, pass: &str, stat: &str) -> Option<u64> {
        self.passes
            .iter()
            .find(|p| p.name == pass)
            .and_then(|p| p.counters.iter().find(|(k, _)| *k == stat))
            .map(|&(_, v)| v)
    }

    /// A human-readable per-pass timing/counter table (the `--timing`
    /// output of `limpet-opt`).
    pub fn timing_table(&self) -> String {
        let mut out = String::new();
        out.push_str("  pass                  time        counters\n");
        for p in &self.passes {
            let counters = p
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let mark = if p.changed { "*" } else { " " };
            out.push_str(&format!(
                "  {mark}{:<20} {:>9.3?}   {counters}\n",
                p.name, p.duration
            ));
        }
        out.push_str(&format!(
            "  total                {:>9.3?}   ({} passes, * = changed)\n",
            self.total_time(),
            self.passes.len()
        ));
        out
    }
}

/// An error produced while running a pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The module failed IR verification. `pass` is the pass after which
    /// verification failed, or [`PassManager::INPUT`] when the input
    /// module was already invalid.
    VerifyFailed {
        /// The offending pass (or `"<input>"`).
        pass: String,
        /// The underlying verifier diagnostic.
        error: VerifyError,
    },
}

impl PipelineError {
    /// The pass the error is attributed to.
    pub fn pass_name(&self) -> &str {
        match self {
            PipelineError::VerifyFailed { pass, .. } => pass,
        }
    }

    /// The underlying verifier diagnostic, when this is a verify failure.
    /// Callers classify failures via [`VerifyError::code`] instead of
    /// matching message strings.
    pub fn verify_error(&self) -> Option<&VerifyError> {
        match self {
            PipelineError::VerifyFailed { error, .. } => Some(error),
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::VerifyFailed { pass, error } if pass == PassManager::INPUT => {
                write!(
                    f,
                    "input module failed verification before any pass ran: {error}"
                )
            }
            PipelineError::VerifyFailed { pass, error } => {
                write!(f, "IR verification failed after pass '{pass}': {error}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A pipeline combinator that reruns its body until no inner pass
/// reports a change (or an iteration cap is hit) — MLIR's analogue is
/// iterating a `FrozenRewritePatternSet` to convergence.
///
/// The pipeline text form is `fixpoint{max=N}(pass,pass,...)`; see
/// [`PassRegistry::parse_pipeline`]. Inner counters are merged into the
/// combinator's own counter set across iterations, plus an `iterations`
/// counter, so a `RunReport` shows the total work done under the
/// fixpoint. Inner passes are not individually verified — with
/// [`PassManager::verify_each`] enabled the module is checked after the
/// whole fixpoint converges, like any other pass.
///
/// # Examples
///
/// ```
/// use limpet_pm::{Fixpoint, Pass, PassCtx};
/// let fp = Fixpoint::new(Vec::new(), 10);
/// assert_eq!(fp.name(), "fixpoint");
/// let mut module = limpet_ir::Module::new("m");
/// let mut ctx = PassCtx::default();
/// assert!(!fp.run(&mut module, &mut ctx)); // empty body: one quiet pass
/// ```
#[derive(Debug)]
pub struct Fixpoint {
    inner: Vec<Box<dyn Pass>>,
    max_iterations: u32,
}

impl Fixpoint {
    /// The default iteration cap (a safety net against oscillating
    /// passes; well above what converging pipelines need).
    pub const DEFAULT_MAX: u32 = 10;

    /// Creates a fixpoint over `inner`, stopping after `max_iterations`
    /// even without convergence (clamped to at least 1).
    pub fn new(inner: Vec<Box<dyn Pass>>, max_iterations: u32) -> Fixpoint {
        Fixpoint {
            inner,
            max_iterations: max_iterations.max(1),
        }
    }

    /// The names of the body passes, in order.
    pub fn inner_names(&self) -> Vec<&'static str> {
        self.inner.iter().map(|p| p.name()).collect()
    }
}

impl Pass for Fixpoint {
    fn name(&self) -> &'static str {
        "fixpoint"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut changed_any = false;
        let mut iterations = 0u64;
        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut changed_this_round = false;
            for pass in &self.inner {
                let mut inner_ctx = PassCtx::default();
                if pass.run(module, &mut inner_ctx) {
                    changed_this_round = true;
                }
                for &(stat, n) in inner_ctx.counters() {
                    ctx.count(stat, n);
                }
            }
            if !changed_this_round {
                break;
            }
            changed_any = true;
        }
        ctx.count("iterations", iterations);
        changed_any
    }
}

/// Runs an ordered sequence of passes over a module, with optional
/// inter-pass verification and instrumentation.
///
/// # Examples
///
/// ```
/// use limpet_pm::PassManager;
/// let pm = PassManager::new();
/// assert!(pm.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    print_before: PrintIr,
    print_after: PrintIr,
}

impl PassManager {
    /// The pseudo-pass name verification errors on the *input* module are
    /// attributed to.
    pub const INPUT: &'static str = "<input>";

    /// Creates an empty pass manager (verification and dumps off).
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends an already-boxed pass (what the registry produces).
    pub fn add_boxed(&mut self, pass: Box<dyn Pass>) -> &mut PassManager {
        self.passes.push(pass);
        self
    }

    /// Enables or disables running the IR verifier on the input module
    /// and after every pass. A failure aborts the pipeline with an error
    /// naming the offending pass.
    pub fn verify_each(&mut self, on: bool) -> &mut PassManager {
        self.verify_each = on;
        self
    }

    /// Captures an IR snapshot before matching passes (see [`PrintIr`]).
    pub fn print_ir_before(&mut self, filter: PrintIr) -> &mut PassManager {
        self.print_before = filter;
        self
    }

    /// Captures an IR snapshot after matching passes (see [`PrintIr`]).
    pub fn print_ir_after(&mut self, filter: PrintIr) -> &mut PassManager {
        self.print_after = filter;
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The names of the registered passes, in pipeline order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs all passes in order, once.
    ///
    /// # Errors
    ///
    /// With [`verify_each`](PassManager::verify_each) enabled, returns
    /// [`PipelineError::VerifyFailed`] naming the pass after which the
    /// module first failed verification (or [`PassManager::INPUT`] for an
    /// invalid input module).
    pub fn run(&self, module: &mut Module) -> Result<RunReport, PipelineError> {
        let mut report = RunReport::default();
        if self.verify_each {
            verify_module(module).map_err(|error| PipelineError::VerifyFailed {
                pass: PassManager::INPUT.to_owned(),
                error,
            })?;
        }
        for pass in &self.passes {
            let name = pass.name();
            if self.print_before.matches(name) {
                report.dumps.push(IrDump {
                    pass: name,
                    when: DumpPoint::Before,
                    text: print_module(module),
                });
            }
            let mut ctx = PassCtx::default();
            let start = Instant::now();
            let changed = pass.run(module, &mut ctx);
            let duration = start.elapsed();
            if self.print_after.matches(name) {
                report.dumps.push(IrDump {
                    pass: name,
                    when: DumpPoint::After,
                    text: print_module(module),
                });
            }
            if self.verify_each {
                verify_module(module).map_err(|error| PipelineError::VerifyFailed {
                    pass: name.to_owned(),
                    error,
                })?;
            }
            report.passes.push(PassRun {
                name,
                changed,
                duration,
                counters: ctx.counters,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{Builder, Func};

    fn tiny_module() -> Module {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let x = b.get_state("x");
        let two = b.const_f(2.0);
        let y = b.mulf(x, two);
        b.set_state("x", y);
        b.ret(&[]);
        m.add_func(f);
        m
    }

    #[derive(Debug)]
    struct CountOps;
    impl Pass for CountOps {
        fn name(&self) -> &'static str {
            "count-ops"
        }
        fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
            let n = module.func("compute").unwrap().walk_ops().len() as u64;
            ctx.count("ops-seen", n);
            false
        }
    }

    #[derive(Debug)]
    struct Corrupt;
    impl Pass for Corrupt {
        fn name(&self) -> &'static str {
            "corrupt"
        }
        fn run(&self, module: &mut Module, _ctx: &mut PassCtx) -> bool {
            // Unlink the constant while `mulf` still uses its result:
            // the dominance check fails.
            let f = module.func_mut("compute").unwrap();
            let body = f.body();
            f.region_mut(body).ops.remove(1);
            true
        }
    }

    #[test]
    fn reports_timing_counters_and_change_flags() {
        let mut m = tiny_module();
        let mut pm = PassManager::new();
        pm.add(CountOps);
        let report = pm.run(&mut m).unwrap();
        assert_eq!(report.passes.len(), 1);
        assert!(!report.any_changed());
        assert_eq!(report.counter("count-ops", "ops-seen"), Some(5));
        assert!(report.timing_table().contains("count-ops"));
    }

    #[test]
    fn verify_each_names_the_offending_pass() {
        let mut m = tiny_module();
        let mut pm = PassManager::new();
        pm.add(CountOps).add(Corrupt).verify_each(true);
        let err = pm.run(&mut m).unwrap_err();
        assert_eq!(err.pass_name(), "corrupt");
        assert!(err.to_string().contains("after pass 'corrupt'"), "{err}");
    }

    #[test]
    fn verify_each_rejects_invalid_input() {
        let mut m = tiny_module();
        // Pre-corrupt the module.
        Corrupt.run_on(&mut m);
        let mut pm = PassManager::new();
        pm.add(CountOps).verify_each(true);
        let err = pm.run(&mut m).unwrap_err();
        assert_eq!(err.pass_name(), PassManager::INPUT);
        assert!(err.to_string().contains("input module"), "{err}");
    }

    #[test]
    fn dumps_capture_before_and_after() {
        let mut m = tiny_module();
        let mut pm = PassManager::new();
        pm.add(Corrupt)
            .print_ir_before(PrintIr::All)
            .print_ir_after(PrintIr::Only("corrupt".to_owned()));
        let report = pm.run(&mut m).unwrap();
        assert_eq!(report.dumps.len(), 2);
        assert_eq!(report.dumps[0].when, DumpPoint::Before);
        assert!(report.dumps[0].text.contains("arith.constant"));
        assert_eq!(report.dumps[1].when, DumpPoint::After);
        assert!(!report.dumps[1].text.contains("arith.constant"));
    }

    #[test]
    fn counters_accumulate_by_key() {
        let mut ctx = PassCtx::default();
        ctx.count("a", 2);
        ctx.count("b", 1);
        ctx.count("a", 3);
        assert_eq!(ctx.counters(), &[("a", 5), ("b", 1)]);
    }
}
