//! Verify-after-each-pass attribution: every corpus mutation, wrapped as
//! a pass, must be caught by the pass manager with the offending pass
//! named in the error.
//!
//! The mutation catalogue lives in `limpet_ir::testing` and is shared
//! with `limpet-ir`'s `verifier_mutations` test; here the point under
//! test is the *pass manager*: a buggy rewrite anywhere in a pipeline is
//! pinned to the pass that introduced it, not merely detected at the end.

use limpet_ir::testing::{corpus_module, mutations, Mutation};
use limpet_ir::{Module, ValueId};
use limpet_pm::{Pass, PassCtx, PassManager};

/// A deliberately buggy pass: applies one corpus mutation.
#[derive(Debug)]
struct MutatingPass {
    mutation: Mutation,
    values: Vec<ValueId>,
}

impl Pass for MutatingPass {
    fn name(&self) -> &'static str {
        self.mutation.name
    }
    fn run(&self, module: &mut Module, _ctx: &mut PassCtx) -> bool {
        (self.mutation.apply)(module, &self.values);
        true
    }
}

/// A well-behaved pass that changes nothing.
#[derive(Debug)]
struct Benign;

impl Pass for Benign {
    fn name(&self) -> &'static str {
        "benign"
    }
    fn run(&self, _module: &mut Module, _ctx: &mut PassCtx) -> bool {
        false
    }
}

#[test]
fn every_mutation_is_caught_and_attributed() {
    let all = mutations();
    assert!(all.len() >= 8, "corpus shrank: {} mutations", all.len());
    for mutation in all {
        let (mut module, values) = corpus_module();
        let mut pm = PassManager::new();
        // Sandwich the buggy pass between healthy ones: the error must
        // name the buggy pass, not a neighbor, and the pipeline must stop
        // before the trailing pass runs on corrupt IR.
        pm.add(Benign)
            .add(MutatingPass { mutation, values })
            .add(Benign)
            .verify_each(true);
        let err = pm
            .run(&mut module)
            .expect_err(&format!("mutation '{}' slipped through", mutation.name));
        assert_eq!(
            err.pass_name(),
            mutation.name,
            "wrong attribution for '{}': {err}",
            mutation.name
        );
        assert!(
            err.to_string().contains(mutation.name),
            "error text does not name the pass: {err}"
        );
    }
}

#[test]
fn clean_pipeline_passes_verification() {
    let (mut module, _) = corpus_module();
    let mut pm = PassManager::new();
    pm.add(Benign).verify_each(true);
    let report = pm.run(&mut module).unwrap();
    assert_eq!(report.passes.len(), 1);
    assert!(!report.any_changed());
}
