// RUN: limpet-opt --pipeline "lut-mode" %s
// The `lut-mode` registry alias resolves to scalar-lut-mode: every
// lut.col gains scalar_interp = true and the module records the mode.

module @lut {
  lut @Vm {cols = "c0,c1", func = "lut_Vm", hi = 100.0, lo = -100.0, step = 0.5}
  func.func @lut_Vm(%arg0: f64) -> (f64, f64) {
    %0 = arith.constant 1.0 : f64
    %1 = arith.addf %arg0, %0 : f64
    func.return %1, %arg0 : f64
  }
  func.func @compute() {
    %0 = limpet.get_ext {var = "Vm"} : f64
    %1 = lut.col %0 {col = 0, table = "Vm"} : f64
    %2 = lut.col %0 {col = 1, table = "Vm"} : f64
    %3 = arith.addf %1, %2 : f64
    limpet.set_ext %3 {var = "Iion"} : f64
    func.return
  }
}

// CHECK: module @lut attributes {lut_mode = "scalar"} {
// CHECK: %1 = lut.col %0 {col = 0, scalar_interp = true, table = "Vm"} : f64
// CHECK-NEXT: %2 = lut.col %0 {col = 1, scalar_interp = true, table = "Vm"} : f64
