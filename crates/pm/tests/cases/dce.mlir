// RUN: limpet-opt --pipeline "dce" %s
// The exp chain feeds nothing: both calls are removed, the store stays.

module @dce {
  func.func @compute() {
    %0 = limpet.get_state {var = "x"} : f64
    %1 = math.exp %0 : f64
    %2 = math.exp %1 : f64
    limpet.set_state %0 {var = "x"} : f64
    func.return
  }
}

// CHECK: func.func @compute() {
// CHECK-NOT: math.exp
// CHECK: limpet.set_state %0 {var = "x"} : f64
// CHECK-NEXT: func.return
