// RUN: limpet-opt --pipeline "const-prop,dce" %s
// The constant multiply folds to 6.0 and the operand constants die.

module @const_prop {
  func.func @compute() {
    %0 = arith.constant 2.0 : f64
    %1 = arith.constant 3.0 : f64
    %2 = arith.mulf %0, %1 : f64
    %3 = limpet.get_state {var = "x"} : f64
    %4 = arith.addf %3, %2 : f64
    limpet.set_state %4 {var = "x"} : f64
    func.return
  }
}

// CHECK: func.func @compute() {
// CHECK-NEXT: %0 = arith.constant 6.0 : f64
// CHECK-NEXT: %1 = limpet.get_state {var = "x"} : f64
// CHECK-NEXT: %2 = arith.addf %1, %0 : f64
// CHECK-NOT: arith.mulf
