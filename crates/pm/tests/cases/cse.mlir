// RUN: limpet-opt --pipeline "cse" %s
// The duplicated square is computed once; both addf operands share it.

module @cse {
  func.func @compute() {
    %0 = limpet.get_state {var = "v"} : f64
    %1 = arith.mulf %0, %0 : f64
    %2 = arith.mulf %0, %0 : f64
    %3 = arith.addf %1, %2 : f64
    limpet.set_state %3 {var = "v"} : f64
    func.return
  }
}

// CHECK: %1 = arith.mulf %0, %0 : f64
// CHECK-NOT: arith.mulf
// CHECK-NEXT: %2 = arith.addf %1, %1 : f64
