// RUN: limpet-opt --pipeline "canonicalize,dce" %s
// x + 0 and x * 1 are identities: the store reads the state directly.

module @canon {
  func.func @compute() {
    %0 = limpet.get_state {var = "x"} : f64
    %1 = arith.constant 0.0 : f64
    %2 = arith.addf %0, %1 : f64
    %3 = arith.constant 1.0 : f64
    %4 = arith.mulf %2, %3 : f64
    limpet.set_state %4 {var = "x"} : f64
    func.return
  }
}

// CHECK: %0 = limpet.get_state {var = "x"} : f64
// CHECK-NEXT: limpet.set_state %0 {var = "x"} : f64
// CHECK-NOT: arith.addf
// CHECK-NOT: arith.mulf
