// RUN: limpet-opt --pipeline "vectorize{width=4}" %s
// The scalar kernel becomes a 4-lane vector kernel: varying state loads
// widen, the uniform dt is broadcast where the varying multiply uses it.

module @vec {
  func.func @compute() {
    %0 = limpet.get_state {var = "x"} : f64
    %1 = limpet.dt : f64
    %2 = arith.mulf %0, %1 : f64
    limpet.set_state %2 {var = "x"} : f64
    func.return
  }
}

// CHECK: module @vec attributes {vector_width = 4} {
// CHECK: %0 = limpet.get_state {var = "x"} : vector<4xf64>
// CHECK: limpet.dt : f64
// CHECK: vector.broadcast
// CHECK: arith.mulf
// CHECK: limpet.set_state
// CHECK-NOT: : f64
