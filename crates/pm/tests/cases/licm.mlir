// RUN: limpet-opt --pipeline "licm" %s
// The dt square is iteration-invariant: it hoists out of the loop; the
// accumulating addf (uses the iter_arg) must stay inside.

module @licm {
  func.func @compute() {
    %0 = arith.constant 0 : index
    %1 = arith.constant 4 : index
    %2 = arith.constant 1 : index
    %3 = limpet.get_state {var = "x"} : f64
    %4 = limpet.dt : f64
    %5 = scf.for %arg0 = %0 to %1 step %2 iter_args(%arg1 = %3) -> (f64) {
      %6 = arith.mulf %4, %4 : f64
      %7 = arith.addf %arg1, %6 : f64
      scf.yield %7 : f64
    }
    limpet.set_state %5 {var = "x"} : f64
    func.return
  }
}

// CHECK: %5 = arith.mulf %4, %4 : f64
// CHECK-NEXT: %6 = scf.for
// CHECK-NEXT: %7 = arith.addf %arg1, %5 : f64
// CHECK-NEXT: scf.yield %7 : f64
