// RUN: limpet-opt --pipeline "fma-contract" %s
// mul feeding a single add contracts into math.fma (bit-exact here).

module @fma {
  func.func @compute() {
    %0 = limpet.get_state {var = "a"} : f64
    %1 = limpet.get_state {var = "b"} : f64
    %2 = limpet.get_state {var = "c"} : f64
    %3 = arith.mulf %0, %1 : f64
    %4 = arith.addf %3, %2 : f64
    limpet.set_state %4 {var = "c"} : f64
    func.return
  }
}

// CHECK: %3 = math.fma %0, %1, %2 : f64
// CHECK-NOT: arith.mulf
// CHECK-NOT: arith.addf
