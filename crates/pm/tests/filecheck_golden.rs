//! FileCheck-lite golden pass tests.
//!
//! Each `.mlir` file under `tests/cases/` is self-contained: a `// RUN:`
//! line naming the pipeline, the input IR (the IR lexer skips `//`
//! comments), and `// CHECK` directives matched against the module as
//! printed after the pipeline runs (verify-after-each-pass enabled).
//!
//! This is the same workflow `limpet-opt` performs from the shell — the
//! `RUN:` lines are its exact command lines — kept in-process here so
//! `cargo test` needs no binary plumbing.

use limpet_pm::filecheck;

/// Extracts the `--pipeline "..."` argument of the `// RUN:` line.
fn pipeline_of(source: &str, file: &str) -> String {
    let run = source
        .lines()
        .find_map(|l| l.split("RUN:").nth(1))
        .unwrap_or_else(|| panic!("{file}: no '// RUN:' line"));
    match run.split('"').nth(1) {
        Some(p) => p.to_owned(),
        None => {
            assert!(
                !run.contains("--pipeline"),
                "{file}: unquoted --pipeline value in RUN line"
            );
            String::new() // no pipeline: parse, verify, reprint
        }
    }
}

fn run_case(source: &str, file: &str) {
    let pipeline = pipeline_of(source, file);
    let mut module = limpet_ir::parse_module(source)
        .unwrap_or_else(|e| panic!("{file}: input does not parse: {e}"));
    let mut pm = limpet_passes::registry()
        .parse_pipeline(&pipeline)
        .unwrap_or_else(|e| panic!("{file}: bad RUN pipeline: {e}"));
    pm.verify_each(true);
    pm.run(&mut module)
        .unwrap_or_else(|e| panic!("{file}: pipeline failed: {e}"));
    let output = limpet_ir::print_module(&module);
    filecheck::check(&output, source).unwrap_or_else(|e| panic!("{file}: {e}"));
}

macro_rules! golden {
    ($($name:ident => $file:literal),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                run_case(
                    include_str!(concat!("cases/", $file)),
                    $file,
                );
            }
        )*

        /// Every file in `tests/cases/` must be wired up above — a new
        /// case that is not listed would silently never run.
        #[test]
        fn all_case_files_are_registered() {
            let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/cases");
            let mut on_disk: Vec<String> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            on_disk.sort();
            let mut registered = vec![$($file.to_owned()),*];
            registered.sort();
            assert_eq!(on_disk, registered);
        }
    };
}

golden! {
    canonicalize_identities => "canonicalize.mlir",
    const_prop_folds => "const_prop.mlir",
    cse_dedups => "cse.mlir",
    dce_removes_dead_chain => "dce.mlir",
    fma_contracts => "fma_contract.mlir",
    licm_hoists_invariants => "licm.mlir",
    lut_mode_alias_marks_cols => "lut_mode.mlir",
    vectorize_widens_kernel => "vectorize.mlir",
}
