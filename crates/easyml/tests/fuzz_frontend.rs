//! Robustness property tests for the EasyML frontend: arbitrary input
//! never panics the lexer/parser/analyzer (errors are returned, not
//! thrown), and well-formed fragments keep their invariants.

use limpet_easyml::{analyze, lex, parse_model};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the frontend must return Ok or Err, never panic.
    #[test]
    fn arbitrary_input_never_panics(src in "\\PC{0,200}") {
        let _ = lex(&src);
        if let Ok(ast) = parse_model("fuzz", &src) {
            let _ = analyze(&ast);
        }
    }

    /// Token-soup from EasyML's own alphabet: denser coverage of parser
    /// paths than fully random bytes.
    #[test]
    fn easyml_token_soup_never_panics(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("group".to_owned()),
                Just("if".to_owned()),
                Just("else".to_owned()),
                Just("diff_x".to_owned()),
                Just("x_init".to_owned()),
                Just("x".to_owned()),
                Just("exp".to_owned()),
                Just(";".to_owned()),
                Just("=".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just(".".to_owned()),
                Just(",".to_owned()),
                Just("+".to_owned()),
                Just("-".to_owned()),
                Just("*".to_owned()),
                Just("/".to_owned()),
                Just("?".to_owned()),
                Just(":".to_owned()),
                Just("<".to_owned()),
                Just("&&".to_owned()),
                Just("1.5".to_owned()),
                Just("external".to_owned()),
                Just("method".to_owned()),
                Just("lookup".to_owned()),
                Just("rk2".to_owned()),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        if let Ok(ast) = parse_model("soup", &src) {
            let _ = analyze(&ast);
        }
    }

    /// Any single well-formed diff equation over safe operators analyzes
    /// into exactly one state variable.
    #[test]
    fn single_diff_always_one_state(
        c1 in -100.0f64..100.0,
        c2 in 0.1f64..100.0,
    ) {
        let src = format!("diff_v = ({c1} - v) / {c2};");
        let m = analyze(&parse_model("one", &src).unwrap()).unwrap();
        prop_assert_eq!(m.states.len(), 1);
        prop_assert_eq!(m.states[0].name.as_str(), "v");
    }

    /// Expression printing is stable: parse(x) == parse(print(parse(x)))
    /// for generated arithmetic expressions.
    #[test]
    fn expression_display_reparses(
        a in -50.0f64..50.0,
        b in -50.0f64..50.0,
        op in 0usize..4,
    ) {
        let sym = ["+", "-", "*", "/"][op];
        let src = format!("diff_x = ({a} {sym} {b}) * x;");
        let m1 = analyze(&parse_model("p", &src).unwrap()).unwrap();
        let printed = match &m1.stmts[0] {
            limpet_easyml::Stmt::Assign { expr, .. } => expr.to_string(),
            _ => unreachable!(),
        };
        let src2 = format!("diff_x = {printed};");
        let m2 = analyze(&parse_model("p", &src2).unwrap()).unwrap();
        let reprinted = match &m2.stmts[0] {
            limpet_easyml::Stmt::Assign { expr, .. } => expr.to_string(),
            _ => unreachable!(),
        };
        prop_assert_eq!(printed, reprinted);
    }
}
