//! Abstract syntax tree for EasyML models.

use std::fmt;

/// Binary operators, C precedence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }

    /// The C spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An EasyML expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Num(f64),
    /// A variable reference.
    Var(String),
    /// A unary application.
    Unary(UnOp, Box<Expr>),
    /// A binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A function call, e.g. `exp(x)`, `square(x)`, `pow(a, b)`.
    Call(String, Vec<Expr>),
    /// A C ternary `cond ? then : else`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Collects the free variable names referenced by this expression into
    /// `out` (duplicates included, in reference order).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Cond(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// Whether `var` appears free in this expression.
    pub fn references(&self, var: &str) -> bool {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.iter().any(|v| v == var)
    }

    /// Number of AST nodes, a rough complexity measure.
    pub fn size(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Var(_) => 1,
            Expr::Unary(_, e) => 1 + e.size(),
            Expr::Binary(_, l, r) => 1 + l.size() + r.size(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Cond(c, t, e) => 1 + c.size() + t.size() + e.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(!{e})"),
            Expr::Binary(op, l, r) => write!(f, "({l}{}{r})", op.symbol()),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cond(c, t, e) => write!(f, "({c}?{t}:{e})"),
        }
    }
}

/// A statement in the model body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = expr;` — `lhs` may be a plain name, `X_init`, or `diff_X`.
    Assign {
        /// Assigned name as written (`u1`, `u1_init`, `diff_u1`, …).
        lhs: String,
        /// Right-hand side.
        expr: Expr,
        /// Source line for diagnostics.
        line: usize,
    },
    /// `if (cond) { … } else { … }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements of the then branch.
        then_body: Vec<Stmt>,
        /// Statements of the else branch (empty when absent).
        else_body: Vec<Stmt>,
        /// Source line for diagnostics.
        line: usize,
    },
}

impl Stmt {
    /// Names assigned by this statement (recursively for `if`).
    pub fn assigned_names(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Assign { lhs, .. } => out.push(lhs.clone()),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.assigned_names(out);
                }
            }
        }
    }

    /// Names read by this statement (recursively for `if`).
    pub fn read_names(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Assign { expr, .. } => expr.collect_vars(out),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                cond.collect_vars(out);
                for s in then_body.iter().chain(else_body) {
                    s.read_names(out);
                }
            }
        }
    }
}

/// A markup applied to a variable or group, e.g. `.external()` or
/// `.lookup(-100, 100, 0.05)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Markup {
    /// Markup name (`external`, `nodal`, `param`, `lookup`, `method`,
    /// `units`, …).
    pub name: String,
    /// Arguments: numbers or identifiers.
    pub args: Vec<MarkupArg>,
    /// Source line for diagnostics.
    pub line: usize,
}

/// One markup argument.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkupArg {
    /// A numeric argument, e.g. the bounds of `.lookup()`.
    Num(f64),
    /// An identifier argument, e.g. the integrator of `.method(rk2)`.
    Ident(String),
}

impl MarkupArg {
    /// The numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            MarkupArg::Num(v) => Some(*v),
            MarkupArg::Ident(_) => None,
        }
    }

    /// The identifier payload, if any.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            MarkupArg::Ident(s) => Some(s),
            MarkupArg::Num(_) => None,
        }
    }
}

/// A group member: a bare name or `name = default`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupItem {
    /// Member variable name.
    pub name: String,
    /// Optional default value expression (used by `.param()` groups).
    pub default: Option<Expr>,
}

/// A top-level item of a model file.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A bare declaration `X;` optionally followed by markups.
    Decl {
        /// Declared variable.
        name: String,
        /// Attached markups (from inline chain and following `.m();` lines).
        markups: Vec<Markup>,
        /// Source line.
        line: usize,
    },
    /// `group { a; b = 1; } .markup();`
    Group {
        /// Group members.
        items: Vec<GroupItem>,
        /// Attached markups.
        markups: Vec<Markup>,
        /// Source line.
        line: usize,
    },
    /// A body statement (assignment or `if`).
    Stmt(Stmt),
}

/// A parsed EasyML model file.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAst {
    /// Model name (from the file name or caller).
    pub name: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_vars_in_order() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::Var("u1".into()), Expr::Var("u3".into())),
            Expr::Call("cube".into(), vec![Expr::Var("u2".into())]),
        );
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec!["u1", "u3", "u2"]);
        assert!(e.references("u2"));
        assert!(!e.references("Vm"));
    }

    #[test]
    fn expr_size() {
        let e = Expr::bin(BinOp::Add, Expr::Num(1.0), Expr::Var("x".into()));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn stmt_assigned_and_read_names() {
        let s = Stmt::If {
            cond: Expr::Var("c".into()),
            then_body: vec![Stmt::Assign {
                lhs: "a".into(),
                expr: Expr::Var("x".into()),
                line: 1,
            }],
            else_body: vec![Stmt::Assign {
                lhs: "b".into(),
                expr: Expr::Var("y".into()),
                line: 2,
            }],
            line: 1,
        };
        let mut assigned = Vec::new();
        s.assigned_names(&mut assigned);
        assert_eq!(assigned, vec!["a", "b"]);
        let mut read = Vec::new();
        s.read_names(&mut read);
        assert_eq!(read, vec!["c", "x", "y"]);
    }

    #[test]
    fn display_round_trips_shape() {
        let e = Expr::Cond(
            Box::new(Expr::bin(BinOp::Lt, Expr::Var("x".into()), Expr::Num(0.0))),
            Box::new(Expr::Unary(UnOp::Neg, Box::new(Expr::Var("x".into())))),
            Box::new(Expr::Var("x".into())),
        );
        assert_eq!(e.to_string(), "((x<0)?(-x):x)");
    }

    #[test]
    fn bool_op_classification() {
        assert!(BinOp::Lt.is_boolean());
        assert!(BinOp::And.is_boolean());
        assert!(!BinOp::Add.is_boolean());
    }
}
