//! Recursive-descent parser for EasyML.
//!
//! The grammar follows openCARP's EasyML (paper §2.2): C-style expressions
//! and `if` statements, single-assignment variables, `group { … }`
//! declarations, and markup statements (`.external();`, `.lookup(lo,hi,step);`,
//! `.method(rk2);`, …) that attach to the most recently declared variable or
//! group.

use crate::ast::{BinOp, Expr, GroupItem, Item, Markup, MarkupArg, ModelAst, Stmt, UnOp};
use crate::diag::{Diagnostic, ErrorCode, Span};
use crate::token::{lex, Token, TokenKind};

/// A syntax error: a [`Diagnostic`] with an `E02xx` (or, forwarded from the
/// lexer, `E01xx`) code, carrying the model name.
pub type ParseError = Diagnostic;

type Result<T> = std::result::Result<T, ParseError>;

/// Parses an EasyML model file.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic failure, including
/// markup statements with no preceding declaration to attach to.
///
/// # Examples
///
/// ```
/// use limpet_easyml::parse_model;
/// let ast = parse_model("Demo", "Vm; .external();\ndiff_u = -u * Vm;\nu_init = 1;").unwrap();
/// assert_eq!(ast.name, "Demo");
/// assert_eq!(ast.items.len(), 3);
/// ```
pub fn parse_model(name: &str, src: &str) -> Result<ModelAst> {
    let inner = || -> Result<ModelAst> {
        let toks = lex(src)?;
        let mut p = Parser { toks, pos: 0 };
        let mut items: Vec<Item> = Vec::new();
        while !p.at_end() {
            p.parse_item(&mut items)?;
        }
        Ok(ModelAst {
            name: name.to_owned(),
            items,
        })
    };
    inner().map_err(|e| e.with_model(name))
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.span().line
    }

    /// The span of the current token (or, at end of input, the last one).
    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(Span::none(), Token::span)
    }

    fn error(&self, code: ErrorCode, message: impl Into<String>) -> ParseError {
        Diagnostic::new(code, self.span(), message)
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos + 1).map(|t| &t.kind)
    }

    fn next(&mut self) -> Result<TokenKind> {
        let t = self
            .toks
            .get(self.pos)
            .map(|t| t.kind.clone())
            .ok_or_else(|| self.error(ErrorCode::UnexpectedEof, "unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, want: &TokenKind) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &TokenKind) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(self.error(
                ErrorCode::UnexpectedToken,
                format!("expected {want}, got {got}"),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next()? {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(
                ErrorCode::UnexpectedToken,
                format!("expected identifier, got {other}"),
            )),
        }
    }

    fn parse_item(&mut self, items: &mut Vec<Item>) -> Result<()> {
        let line = self.line();
        match self.peek() {
            Some(TokenKind::Ident(w)) if w == "group" => {
                self.pos += 1;
                let item = self.parse_group(line)?;
                items.push(item);
                Ok(())
            }
            Some(TokenKind::Ident(w)) if w == "if" => {
                self.pos += 1;
                let stmt = self.parse_if(line)?;
                items.push(Item::Stmt(stmt));
                Ok(())
            }
            Some(TokenKind::Ident(_)) => {
                let name = self.expect_ident()?;
                if self.eat(&TokenKind::Assign) {
                    let expr = self.parse_expr()?;
                    self.expect(&TokenKind::Semi)?;
                    items.push(Item::Stmt(Stmt::Assign {
                        lhs: name,
                        expr,
                        line,
                    }));
                } else {
                    self.expect(&TokenKind::Semi)?;
                    items.push(Item::Decl {
                        name,
                        markups: Vec::new(),
                        line,
                    });
                }
                Ok(())
            }
            Some(TokenKind::Dot) => {
                // Markup statement: one or more `.name(args)` then `;`,
                // attaching to the last declaration or group.
                let mut markups = Vec::new();
                while self.eat(&TokenKind::Dot) {
                    markups.push(self.parse_markup()?);
                }
                self.expect(&TokenKind::Semi)?;
                let target = items.iter_mut().rev().find_map(|item| match item {
                    Item::Decl { markups, .. } | Item::Group { markups, .. } => Some(markups),
                    Item::Stmt(_) => None,
                });
                match target {
                    Some(t) => {
                        t.extend(markups);
                        Ok(())
                    }
                    None => Err(Diagnostic::new(
                        ErrorCode::OrphanMarkup,
                        Span::line(line),
                        "markup with no preceding declaration",
                    )),
                }
            }
            Some(other) => Err(self.error(
                ErrorCode::UnexpectedToken,
                format!("unexpected {other} at top level"),
            )),
            None => Ok(()),
        }
    }

    fn parse_group(&mut self, line: usize) -> Result<Item> {
        self.expect(&TokenKind::LBrace)?;
        let mut group_items = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let name = self.expect_ident()?;
            let default = if self.eat(&TokenKind::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect(&TokenKind::Semi)?;
            group_items.push(GroupItem { name, default });
        }
        // Optional inline markup chain, then `;`.
        let mut markups = Vec::new();
        while self.eat(&TokenKind::Dot) {
            markups.push(self.parse_markup()?);
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Group {
            items: group_items,
            markups,
            line,
        })
    }

    fn parse_markup(&mut self) -> Result<Markup> {
        let line = self.line();
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let mut neg = false;
                while self.eat(&TokenKind::Minus) {
                    neg = !neg;
                }
                match self.next()? {
                    TokenKind::Num(v) => args.push(MarkupArg::Num(if neg { -v } else { v })),
                    TokenKind::Ident(s) if !neg => args.push(MarkupArg::Ident(s)),
                    other => {
                        return Err(self.error(
                            ErrorCode::BadMarkupArg,
                            format!("bad markup argument {other}"),
                        ));
                    }
                }
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        Ok(Markup { name, args, line })
    }

    fn parse_if(&mut self, line: usize) -> Result<Stmt> {
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_body = self.parse_block()?;
        let mut else_body = Vec::new();
        if matches!(self.peek(), Some(TokenKind::Ident(w)) if w == "else") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenKind::Ident(w)) if w == "if") {
                let line2 = self.line();
                self.pos += 1;
                else_body.push(self.parse_if(line2)?);
            } else {
                else_body = self.parse_block()?;
            }
        }
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let line = self.line();
            if matches!(self.peek(), Some(TokenKind::Ident(w)) if w == "if") {
                self.pos += 1;
                stmts.push(self.parse_if(line)?);
            } else {
                let lhs = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                stmts.push(Stmt::Assign { lhs, expr, line });
            }
        }
        Ok(stmts)
    }

    // ---- expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_or()?;
        if self.eat(&TokenKind::Question) {
            let t = self.parse_expr()?;
            self.expect(&TokenKind::Colon)?;
            let e = self.parse_ternary()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(t), Box::new(e)))
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.parse_equality()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::EqEq) => BinOp::Eq,
                Some(TokenKind::NotEq) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_relational()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Lt) => BinOp::Lt,
                Some(TokenKind::Le) => BinOp::Le,
                Some(TokenKind::Gt) => BinOp::Gt,
                Some(TokenKind::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
        } else if self.eat(&TokenKind::Not) {
            let e = self.parse_unary()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(e)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next()? {
            TokenKind::Num(v) => Ok(Expr::Num(v)),
            TokenKind::Ident(name) => {
                if self.peek() == Some(&TokenKind::LParen) && self.peek2().is_some() {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(&TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error(
                ErrorCode::UnexpectedToken,
                format!("expected expression, got {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 1: the modified Pathmanathan model.
    pub const PATHMANATHAN: &str = r#"
Vm; .external(); .nodal(); .lookup(-100,100,0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();

group{ Cm = 200; beta = 1; xi = 3; }.param();
u1_init = 0; u2_init = 0; u3_init = 0; Vm_init = 0;
diff_u3 = 0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1;.method(rk2);

Iion = (-(Cm/2.)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
"#;

    #[test]
    fn parses_paper_listing_1() {
        let ast = parse_model("Pathmanathan", PATHMANATHAN).unwrap();
        // Items: Vm decl, Iion decl, state group, param group, 4 inits,
        // 3 diffs, u1 decl (for method), Iion assignment.
        let decls: Vec<_> = ast
            .items
            .iter()
            .filter(|i| matches!(i, Item::Decl { .. }))
            .collect();
        assert_eq!(decls.len(), 3); // Vm, Iion, u1
        let groups: Vec<_> = ast
            .items
            .iter()
            .filter(|i| matches!(i, Item::Group { .. }))
            .collect();
        assert_eq!(groups.len(), 2);
        let stmts: Vec<_> = ast
            .items
            .iter()
            .filter(|i| matches!(i, Item::Stmt(_)))
            .collect();
        assert_eq!(stmts.len(), 8);
    }

    #[test]
    fn markups_attach_to_preceding_decl() {
        let ast = parse_model("m", "Vm; .external(); .nodal(); .lookup(-100,100,0.05);").unwrap();
        let Item::Decl { name, markups, .. } = &ast.items[0] else {
            panic!("expected decl");
        };
        assert_eq!(name, "Vm");
        assert_eq!(markups.len(), 3);
        assert_eq!(markups[0].name, "external");
        assert_eq!(markups[2].name, "lookup");
        assert_eq!(markups[2].args[0].as_num(), Some(-100.0));
        assert_eq!(markups[2].args[2].as_num(), Some(0.05));
    }

    #[test]
    fn method_markup_ident_arg() {
        let ast = parse_model("m", "u1;.method(rk2);").unwrap();
        let Item::Decl { markups, .. } = &ast.items[0] else {
            panic!();
        };
        assert_eq!(markups[0].args[0].as_ident(), Some("rk2"));
    }

    #[test]
    fn group_with_defaults() {
        let ast = parse_model("m", "group{ Cm = 200; beta = 1; }.param();").unwrap();
        let Item::Group { items, markups, .. } = &ast.items[0] else {
            panic!();
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "Cm");
        assert_eq!(items[0].default, Some(Expr::Num(200.0)));
        assert_eq!(markups[0].name, "param");
    }

    #[test]
    fn precedence_mul_over_add() {
        let ast = parse_model("m", "x = a + b * c;").unwrap();
        let Item::Stmt(Stmt::Assign { expr, .. }) = &ast.items[0] else {
            panic!();
        };
        assert_eq!(expr.to_string(), "(a+(b*c))");
    }

    #[test]
    fn ternary_and_comparison() {
        let ast = parse_model("m", "x = v < 0 ? -v : v;").unwrap();
        let Item::Stmt(Stmt::Assign { expr, .. }) = &ast.items[0] else {
            panic!();
        };
        assert_eq!(expr.to_string(), "((v<0)?(-v):v)");
    }

    #[test]
    fn if_else_statement() {
        let src = "if (Vm > 0) { a = 1; } else { a = 2; b = 3; }";
        let ast = parse_model("m", src).unwrap();
        let Item::Stmt(Stmt::If {
            then_body,
            else_body,
            ..
        }) = &ast.items[0]
        else {
            panic!();
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 2);
    }

    #[test]
    fn else_if_chains() {
        let src = "if (a > 0) { x = 1; } else if (a < 0) { x = 2; } else { x = 3; }";
        let ast = parse_model("m", src).unwrap();
        let Item::Stmt(Stmt::If { else_body, .. }) = &ast.items[0] else {
            panic!();
        };
        assert!(matches!(&else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn nested_calls() {
        let ast = parse_model("m", "x = pow(exp(a), log(b + 1));").unwrap();
        let Item::Stmt(Stmt::Assign { expr, .. }) = &ast.items[0] else {
            panic!();
        };
        assert_eq!(expr.to_string(), "pow(exp(a),log((b+1)))");
    }

    #[test]
    fn markup_without_decl_is_error() {
        let err = parse_model("m", ".external();").unwrap_err();
        assert!(err.message.contains("no preceding declaration"));
        assert_eq!(err.code, ErrorCode::OrphanMarkup);
        assert_eq!(err.model.as_deref(), Some("m"));
    }

    #[test]
    fn markup_skips_statements_to_find_decl() {
        // `u1; ... diff_u1 = …; u1;.method(rk2);` pattern: markup after an
        // assignment attaches to the most recent decl.
        let ast = parse_model("m", "u1;\ndiff_u1 = 1;\n.method(rk2);").unwrap();
        let Item::Decl { markups, .. } = &ast.items[0] else {
            panic!();
        };
        assert_eq!(markups[0].name, "method");
    }

    #[test]
    fn error_line_numbers() {
        let err = parse_model("m", "x = 1;\ny = ;\n").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert_eq!(err.span.col, 5);
        assert_eq!(err.code, ErrorCode::UnexpectedToken);
    }

    #[test]
    fn lex_errors_forward_model_name() {
        let err = parse_model("m", "x = $;").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnexpectedChar);
        assert_eq!(err.model.as_deref(), Some("m"));
    }
}
