//! # limpet-easyml
//!
//! Frontend for **EasyML**, the markup language openCARP uses to describe
//! cardiac ionic models (paper §2.2). The crate lexes, parses, and
//! semantically analyzes model descriptions, producing a checked [`Model`]
//! consumed by the `limpet-codegen` crate.
//!
//! EasyML in brief:
//!
//! * single-assignment variables, C expression syntax and `if` statements,
//!   no loops (not Turing complete);
//! * `diff_X = …;` defines the time derivative of state variable `X`, and
//!   `X_init = …;` its initial value;
//! * markups adjust code generation: `.external()` (inter-cell variables
//!   such as `Vm`/`Iion`), `.param()` groups, `.lookup(lo,hi,step)` (tabulate
//!   expressions of a variable), `.method(rk2)` (integration method).
//!
//! # Examples
//!
//! ```
//! use limpet_easyml::{analyze, parse_model, Method};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//!     Vm; .external();
//!     Iion; .external();
//!     group{ g = 0.1; }.param();
//!     diff_n = (n_inf - n) / 5.0;
//!     n_inf = 1.0 / (1.0 + exp(-Vm / 10.0));
//!     n_init = 0.3;
//!     n;.method(rush_larsen);
//!     Iion = g * n * Vm;
//! ";
//! let model = analyze(&parse_model("Demo", src)?)?;
//! assert_eq!(model.states.len(), 1);
//! assert_eq!(model.state("n").unwrap().method, Method::RushLarsen);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The frontend must never bring down the host process on malformed input:
// every failure is a spanned [`Diagnostic`]. Tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod ast;
mod diag;
mod parser;
mod sema;
mod token;

pub use ast::{BinOp, Expr, GroupItem, Item, Markup, MarkupArg, ModelAst, Stmt, UnOp};
pub use diag::{Diagnostic, ErrorCode, Span};
pub use parser::{parse_model, ParseError};
pub use sema::{
    affine_in, analyze, builtin_arity, eval_const, ExtVar, Lookup, Method, Model, Param, SemaError,
    SemaErrors, StateVar, BUILTINS, IMPLICIT_SOURCES,
};
pub use token::{lex, LexError, Token, TokenKind};

/// Parses and analyzes a model in one step.
///
/// # Errors
///
/// Returns a boxed [`ParseError`] or [`SemaErrors`].
///
/// # Examples
///
/// ```
/// let m = limpet_easyml::compile_model("M", "diff_x = -x;").unwrap();
/// assert_eq!(m.states[0].name, "x");
/// ```
pub fn compile_model(name: &str, src: &str) -> Result<Model, Box<dyn std::error::Error>> {
    let ast = parse_model(name, src)?;
    Ok(analyze(&ast)?)
}
