//! Semantic analysis: turns a raw [`ModelAst`] into a checked [`Model`].
//!
//! Responsibilities (mirroring openCARP's `limpet_fe` frontend, paper §2.2):
//!
//! * classify variables into **state** (those with a `diff_X` equation),
//!   **external** (`.external()` markup: `Vm`, `Iion`, …), **parameters**
//!   (`.param()` groups), and intermediates;
//! * resolve `X_init` assignments into constant initial values;
//! * attach `.lookup(lo,hi,step)` and `.method(name)` markups;
//! * enforce single assignment and both-branch conditional definitions;
//! * topologically order the equation system (EasyML files may list
//!   equations in any order);
//! * provide the affine-form analysis used by the Rush-Larsen family of
//!   integrators.

use crate::ast::{BinOp, Expr, Item, Markup, ModelAst, Stmt, UnOp};
use crate::diag::{Diagnostic, ErrorCode, Span};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A temporal integration method (paper §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Forward Euler — explicit first order, the openCARP default.
    #[default]
    Fe,
    /// 2-stage Runge-Kutta (midpoint) — explicit second order.
    Rk2,
    /// 4-stage Runge-Kutta — explicit fourth order.
    Rk4,
    /// Rush-Larsen — exact exponential update for gate equations.
    RushLarsen,
    /// Sundnes — second-order Rush-Larsen generalization.
    Sundnes,
    /// Backward-Euler-inspired implicit update with refinement, clamped to
    /// `[0, 1]`; used for Markov-chain state variables.
    MarkovBe,
}

impl Method {
    /// Parses the `.method(...)` markup spelling.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "fe" => Method::Fe,
            "rk2" => Method::Rk2,
            "rk4" => Method::Rk4,
            "rush_larsen" => Method::RushLarsen,
            "sundnes" => Method::Sundnes,
            "markov_be" => Method::MarkovBe,
            _ => return None,
        })
    }

    /// The markup spelling.
    pub fn name(self) -> &'static str {
        match self {
            Method::Fe => "fe",
            Method::Rk2 => "rk2",
            Method::Rk4 => "rk4",
            Method::RushLarsen => "rush_larsen",
            Method::Sundnes => "sundnes",
            Method::MarkovBe => "markov_be",
        }
    }

    /// All methods, for exhaustive tests.
    pub const ALL: [Method; 6] = [
        Method::Fe,
        Method::Rk2,
        Method::Rk4,
        Method::RushLarsen,
        Method::Sundnes,
        Method::MarkovBe,
    ];
}

/// A state variable: it has a `diff_X` equation and is integrated in time.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVar {
    /// Variable name.
    pub name: String,
    /// Initial value (from `X_init`, default 0).
    pub init: f64,
    /// Integration method (from `.method()`, default forward Euler).
    pub method: Method,
}

/// An external variable (`.external()`): shared with the outside of the
/// model (e.g. the transmembrane voltage `Vm` and current `Iion`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExtVar {
    /// Variable name.
    pub name: String,
    /// Initial value (from `X_init`, default 0).
    pub init: f64,
    /// Whether the model assigns this variable (output) or only reads it.
    pub assigned: bool,
    /// Whether reads should prefer an attached parent model's state
    /// (`.parent()` markup — multimodel support, paper §3.3.2).
    pub parent: bool,
}

/// A model parameter (`.param()` group member): uniform across cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value.
    pub default: f64,
}

/// A `.lookup(lo, hi, step)` markup: expressions depending only on this
/// variable may be tabulated and linearly interpolated (paper §3.4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Lookup {
    /// The lookup key variable.
    pub var: String,
    /// Lower bound of the tabulated range.
    pub lo: f64,
    /// Upper bound of the tabulated range.
    pub hi: f64,
    /// Tabulation step.
    pub step: f64,
}

/// A semantically checked ionic model.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// State variables, in declaration order.
    pub states: Vec<StateVar>,
    /// External variables.
    pub externals: Vec<ExtVar>,
    /// Parameters with defaults.
    pub params: Vec<Param>,
    /// Lookup-table markups.
    pub lookups: Vec<Lookup>,
    /// Body statements in dependency (topological) order. `X_init`
    /// assignments are resolved into [`StateVar::init`] and removed.
    pub stmts: Vec<Stmt>,
}

impl Model {
    /// Looks up a state variable by name.
    pub fn state(&self, name: &str) -> Option<&StateVar> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Looks up an external variable by name.
    pub fn external(&self, name: &str) -> Option<&ExtVar> {
        self.externals.iter().find(|e| e.name == name)
    }

    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Looks up the lookup markup for a variable.
    pub fn lookup(&self, var: &str) -> Option<&Lookup> {
        self.lookups.iter().find(|l| l.var == var)
    }

    /// The `diff_X` expression for state `name`, when it is a plain
    /// top-level assignment (conditional diff equations return `None`).
    pub fn diff_expr(&self, name: &str) -> Option<&Expr> {
        let want = format!("diff_{name}");
        self.stmts.iter().find_map(|s| match s {
            Stmt::Assign { lhs, expr, .. } if *lhs == want => Some(expr),
            _ => None,
        })
    }

    /// Total number of expression nodes, a complexity measure used for
    /// model-class calibration.
    pub fn complexity(&self) -> usize {
        fn stmt_size(s: &Stmt) -> usize {
            match s {
                Stmt::Assign { expr, .. } => expr.size(),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    cond.size()
                        + then_body.iter().map(stmt_size).sum::<usize>()
                        + else_body.iter().map(stmt_size).sum::<usize>()
                }
            }
        }
        self.stmts.iter().map(stmt_size).sum()
    }
}

/// A semantic error: a [`Diagnostic`] with an `E03xx` code.
pub type SemaError = Diagnostic;

/// All semantic errors found in one model.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaErrors(pub Vec<SemaError>);

impl fmt::Display for SemaErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SemaErrors {}

/// Built-in function names and their arities.
pub const BUILTINS: [(&str, usize); 28] = [
    ("exp", 1),
    ("expm1", 1),
    ("log", 1),
    ("log1p", 1),
    ("log10", 1),
    ("log2", 1),
    ("sqrt", 1),
    ("cbrt", 1),
    ("sin", 1),
    ("cos", 1),
    ("tan", 1),
    ("asin", 1),
    ("acos", 1),
    ("atan", 1),
    ("sinh", 1),
    ("cosh", 1),
    ("tanh", 1),
    ("fabs", 1),
    ("abs", 1),
    ("floor", 1),
    ("ceil", 1),
    ("round", 1),
    ("square", 1),
    ("cube", 1),
    ("pow", 2),
    ("atan2", 2),
    ("copysign", 2),
    ("fmod", 2),
];

/// Looks up a builtin's arity.
pub fn builtin_arity(name: &str) -> Option<usize> {
    BUILTINS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, arity)| *arity)
}

/// Names implicitly available in every model body.
pub const IMPLICIT_SOURCES: [&str; 2] = ["t", "dt"];

/// Evaluates an expression to a constant under `env` (typically the
/// parameter defaults). Returns `None` when any referenced name is missing.
pub fn eval_const(expr: &Expr, env: &HashMap<String, f64>) -> Option<f64> {
    Some(match expr {
        Expr::Num(v) => *v,
        Expr::Var(name) => *env.get(name)?,
        Expr::Unary(UnOp::Neg, e) => -eval_const(e, env)?,
        Expr::Unary(UnOp::Not, e) => {
            if eval_const(e, env)? != 0.0 {
                0.0
            } else {
                1.0
            }
        }
        Expr::Binary(op, l, r) => {
            let (a, b) = (eval_const(l, env)?, eval_const(r, env)?);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                BinOp::Lt => (a < b) as i32 as f64,
                BinOp::Le => (a <= b) as i32 as f64,
                BinOp::Gt => (a > b) as i32 as f64,
                BinOp::Ge => (a >= b) as i32 as f64,
                BinOp::Eq => (a == b) as i32 as f64,
                BinOp::Ne => (a != b) as i32 as f64,
                BinOp::And => ((a != 0.0) && (b != 0.0)) as i32 as f64,
                BinOp::Or => ((a != 0.0) || (b != 0.0)) as i32 as f64,
            }
        }
        Expr::Call(name, args) => {
            let vals: Option<Vec<f64>> = args.iter().map(|a| eval_const(a, env)).collect();
            let vals = vals?;
            match (name.as_str(), vals.as_slice()) {
                ("exp", [a]) => a.exp(),
                ("expm1", [a]) => a.exp_m1(),
                ("log", [a]) => a.ln(),
                ("log1p", [a]) => a.ln_1p(),
                ("log10", [a]) => a.log10(),
                ("log2", [a]) => a.log2(),
                ("sqrt", [a]) => a.sqrt(),
                ("cbrt", [a]) => a.cbrt(),
                ("sin", [a]) => a.sin(),
                ("cos", [a]) => a.cos(),
                ("tan", [a]) => a.tan(),
                ("asin", [a]) => a.asin(),
                ("acos", [a]) => a.acos(),
                ("atan", [a]) => a.atan(),
                ("sinh", [a]) => a.sinh(),
                ("cosh", [a]) => a.cosh(),
                ("tanh", [a]) => a.tanh(),
                ("fabs", [a]) | ("abs", [a]) => a.abs(),
                ("floor", [a]) => a.floor(),
                ("ceil", [a]) => a.ceil(),
                ("round", [a]) => a.round(),
                ("square", [a]) => a * a,
                ("cube", [a]) => a * a * a,
                ("pow", [a, b]) => a.powf(*b),
                ("atan2", [a, b]) => a.atan2(*b),
                ("copysign", [a, b]) => a.copysign(*b),
                ("fmod", [a, b]) => a % b,
                _ => return None,
            }
        }
        Expr::Cond(c, t, e) => {
            if eval_const(c, env)? != 0.0 {
                eval_const(t, env)?
            } else {
                eval_const(e, env)?
            }
        }
    })
}

/// Decomposes `expr` as affine in `var`: `expr = a + b * var`, returning
/// `(a, b)` as expressions free of `var`. Returns `None` when `var` occurs
/// non-affinely (inside calls, conditions, products with itself, …).
///
/// This is the gate-form analysis behind the Rush-Larsen integrators: a gate
/// equation `dx/dt = (x_inf - x) / tau` is affine in `x` with
/// `a = x_inf/tau`, `b = -1/tau`.
pub fn affine_in(expr: &Expr, var: &str) -> Option<(Expr, Expr)> {
    if !expr.references(var) {
        return Some((expr.clone(), Expr::Num(0.0)));
    }
    match expr {
        Expr::Var(v) if v == var => Some((Expr::Num(0.0), Expr::Num(1.0))),
        Expr::Unary(UnOp::Neg, e) => {
            let (a, b) = affine_in(e, var)?;
            Some((
                Expr::Unary(UnOp::Neg, Box::new(a)),
                Expr::Unary(UnOp::Neg, Box::new(b)),
            ))
        }
        Expr::Binary(BinOp::Add, l, r) => {
            let (al, bl) = affine_in(l, var)?;
            let (ar, br) = affine_in(r, var)?;
            Some((Expr::bin(BinOp::Add, al, ar), Expr::bin(BinOp::Add, bl, br)))
        }
        Expr::Binary(BinOp::Sub, l, r) => {
            let (al, bl) = affine_in(l, var)?;
            let (ar, br) = affine_in(r, var)?;
            Some((Expr::bin(BinOp::Sub, al, ar), Expr::bin(BinOp::Sub, bl, br)))
        }
        Expr::Binary(BinOp::Mul, l, r) => {
            // Exactly one side may reference var.
            if !r.references(var) {
                let (a, b) = affine_in(l, var)?;
                Some((
                    Expr::bin(BinOp::Mul, a, (**r).clone()),
                    Expr::bin(BinOp::Mul, b, (**r).clone()),
                ))
            } else if !l.references(var) {
                let (a, b) = affine_in(r, var)?;
                Some((
                    Expr::bin(BinOp::Mul, (**l).clone(), a),
                    Expr::bin(BinOp::Mul, (**l).clone(), b),
                ))
            } else {
                None
            }
        }
        Expr::Binary(BinOp::Div, l, r) => {
            if r.references(var) {
                return None;
            }
            let (a, b) = affine_in(l, var)?;
            Some((
                Expr::bin(BinOp::Div, a, (**r).clone()),
                Expr::bin(BinOp::Div, b, (**r).clone()),
            ))
        }
        _ => None,
    }
}

/// Runs semantic analysis.
///
/// # Errors
///
/// Returns every [`SemaError`] found: unknown variables, double assignment,
/// one-sided conditional definitions, bad markups, non-constant initial
/// values, dependency cycles, and calls to unknown functions.
pub fn analyze(ast: &ModelAst) -> Result<Model, SemaErrors> {
    let mut errors: Vec<SemaError> = Vec::new();

    // ---- collect declarations & markups ----
    let mut external_names: Vec<String> = Vec::new();
    let mut parent_names: Vec<String> = Vec::new();
    let mut params: Vec<Param> = Vec::new();
    let mut lookups: Vec<Lookup> = Vec::new();
    let mut methods: HashMap<String, (Method, usize)> = HashMap::new();
    let mut declared: Vec<String> = Vec::new();

    let handle_markup = |names: &[String],
                         m: &Markup,
                         errors: &mut Vec<SemaError>,
                         lookups: &mut Vec<Lookup>,
                         external_names: &mut Vec<String>,
                         parent_names: &mut Vec<String>,
                         methods: &mut HashMap<String, (Method, usize)>| {
        match m.name.as_str() {
            "external" => {
                for n in names {
                    if !external_names.contains(n) {
                        external_names.push(n.clone());
                    }
                }
            }
            "parent" => {
                for n in names {
                    if !parent_names.contains(n) {
                        parent_names.push(n.clone());
                    }
                }
            }
            "lookup" => {
                let nums: Vec<Option<f64>> = m.args.iter().map(|a| a.as_num()).collect();
                match nums.as_slice() {
                    [Some(lo), Some(hi), Some(step)] if *step > 0.0 && hi > lo => {
                        for n in names {
                            lookups.push(Lookup {
                                var: n.clone(),
                                lo: *lo,
                                hi: *hi,
                                step: *step,
                            });
                        }
                    }
                    _ => errors.push(Diagnostic::new(
                        ErrorCode::BadLookupRange,
                        Span::line(m.line),
                        ".lookup() needs (lo, hi, step) with step > 0 and hi > lo",
                    )),
                }
            }
            "method" => {
                let arg = m.args.first().and_then(|a| a.as_ident());
                match arg.and_then(Method::parse) {
                        Some(method) => {
                            for n in names {
                                methods.insert(n.clone(), (method, m.line));
                            }
                        }
                        None => errors.push(Diagnostic::new(
                            ErrorCode::UnknownMethod,
                            Span::line(m.line),
                            format!(
                                "unknown integration method {:?} (expected one of fe, rk2, rk4, rush_larsen, sundnes, markov_be)",
                                arg.unwrap_or("<missing>")
                            ),
                        )),
                    }
            }
            // Markups that affect storage or tracing, not code shape.
            "nodal" | "regional" | "units" | "trace" | "store" | "param" => {}
            other => errors.push(Diagnostic::new(
                ErrorCode::UnknownMarkup,
                Span::line(m.line),
                format!("unknown markup .{other}()"),
            )),
        }
    };

    for item in &ast.items {
        match item {
            Item::Decl { name, markups, .. } => {
                declared.push(name.clone());
                for m in markups {
                    handle_markup(
                        std::slice::from_ref(name),
                        m,
                        &mut errors,
                        &mut lookups,
                        &mut external_names,
                        &mut parent_names,
                        &mut methods,
                    );
                }
            }
            Item::Group {
                items,
                markups,
                line,
            } => {
                let names: Vec<String> = items.iter().map(|i| i.name.clone()).collect();
                declared.extend(names.iter().cloned());
                let is_param = markups.iter().any(|m| m.name == "param");
                if is_param {
                    for gi in items {
                        let default = match &gi.default {
                            Some(e) => eval_const(e, &HashMap::new()).unwrap_or_else(|| {
                                errors.push(Diagnostic::new(
                                    ErrorCode::NonConstParamDefault,
                                    Span::line(*line),
                                    format!("parameter {} default must be a constant", gi.name),
                                ));
                                0.0
                            }),
                            None => 0.0,
                        };
                        params.push(Param {
                            name: gi.name.clone(),
                            default,
                        });
                    }
                } else {
                    for gi in items {
                        if gi.default.is_some() {
                            errors.push(Diagnostic::new(
                                ErrorCode::DefaultOutsideParamGroup,
                                Span::line(*line),
                                format!(
                                    "group member {} has a default but the group is not .param()",
                                    gi.name
                                ),
                            ));
                        }
                    }
                }
                for m in markups {
                    handle_markup(
                        &names,
                        m,
                        &mut errors,
                        &mut lookups,
                        &mut external_names,
                        &mut parent_names,
                        &mut methods,
                    );
                }
            }
            Item::Stmt(_) => {}
        }
    }

    // ---- partition statements ----
    let mut body: Vec<Stmt> = Vec::new();
    let mut inits: HashMap<String, (Expr, usize)> = HashMap::new();
    for item in &ast.items {
        if let Item::Stmt(stmt) = item {
            match stmt {
                Stmt::Assign { lhs, expr, line } if lhs.ends_with("_init") => {
                    let base = lhs.trim_end_matches("_init").to_owned();
                    if inits.insert(base, (expr.clone(), *line)).is_some() {
                        errors.push(Diagnostic::new(
                            ErrorCode::DuplicateInit,
                            Span::line(*line),
                            format!("{lhs} assigned more than once"),
                        ));
                    }
                }
                s => body.push(s.clone()),
            }
        }
    }

    // ---- classify: state vars are those with diff_ equations ----
    let mut assigned_names: Vec<(String, usize)> = Vec::new();
    for s in &body {
        collect_top_defs(s, &mut assigned_names, &mut errors);
    }
    // Single-assignment check.
    {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (n, line) in &assigned_names {
            if let Some(_first) = seen.insert(n.as_str(), *line) {
                errors.push(Diagnostic::new(
                    ErrorCode::DoubleAssignment,
                    Span::line(*line),
                    format!("{n} assigned more than once (EasyML is single-assignment)"),
                ));
            }
        }
    }

    let state_names: Vec<String> = assigned_names
        .iter()
        .filter_map(|(n, _)| n.strip_prefix("diff_").map(str::to_owned))
        .collect();

    // Parameter environment for init evaluation.
    let param_env: HashMap<String, f64> =
        params.iter().map(|p| (p.name.clone(), p.default)).collect();

    let init_of = |name: &str, errors: &mut Vec<SemaError>| -> f64 {
        match inits.get(name) {
            Some((expr, line)) => match eval_const(expr, &param_env) {
                Some(v) => v,
                None => {
                    errors.push(Diagnostic::new(
                        ErrorCode::NonConstInit,
                        Span::line(*line),
                        format!("{name}_init must be a constant expression over parameters"),
                    ));
                    0.0
                }
            },
            None => 0.0,
        }
    };

    let states: Vec<StateVar> = state_names
        .iter()
        .map(|n| StateVar {
            name: n.clone(),
            init: init_of(n, &mut errors),
            method: methods.get(n).map(|(m, _)| *m).unwrap_or_default(),
        })
        .collect();

    let externals: Vec<ExtVar> = external_names
        .iter()
        .map(|n| ExtVar {
            name: n.clone(),
            init: init_of(n, &mut errors),
            assigned: assigned_names.iter().any(|(a, _)| a == n),
            parent: parent_names.contains(n),
        })
        .collect();

    for p in &parent_names {
        if !external_names.contains(p) {
            errors.push(Diagnostic::new(
                ErrorCode::ParentNotExternal,
                Span::none(),
                format!(".parent() applied to {p}, which is not .external()"),
            ));
        }
    }

    // ---- validity checks on names ----
    let state_set: HashSet<&str> = states.iter().map(|s| s.name.as_str()).collect();
    let ext_set: HashSet<&str> = externals.iter().map(|e| e.name.as_str()).collect();
    let param_set: HashSet<&str> = params.iter().map(|p| p.name.as_str()).collect();

    for (m, (_, line)) in &methods {
        if !state_set.contains(m.as_str()) {
            errors.push(Diagnostic::new(
                ErrorCode::MethodOnNonState,
                Span::line(*line),
                format!(".method() applied to {m}, which has no diff_{m} equation"),
            ));
        }
    }
    for l in &lookups {
        let known = state_set.contains(l.var.as_str())
            || ext_set.contains(l.var.as_str())
            || assigned_names.iter().any(|(a, _)| *a == l.var);
        if !known {
            errors.push(Diagnostic::new(
                ErrorCode::LookupOnUndefined,
                Span::none(),
                format!(".lookup() applied to undefined variable {}", l.var),
            ));
        }
    }
    for (n, line) in &assigned_names {
        if state_set.contains(n.as_str()) {
            errors.push(Diagnostic::new(
                ErrorCode::DirectStateAssignment,
                Span::line(*line),
                format!("state variable {n} cannot be assigned directly; assign diff_{n} instead"),
            ));
        }
        if param_set.contains(n.as_str()) {
            errors.push(Diagnostic::new(
                ErrorCode::ParamAssignment,
                Span::line(*line),
                format!("parameter {n} cannot be assigned in the model body"),
            ));
        }
    }

    // Known sources readable without definition.
    let mut sources: HashSet<String> = HashSet::new();
    sources.extend(state_set.iter().map(|s| s.to_string()));
    sources.extend(ext_set.iter().map(|s| s.to_string()));
    sources.extend(param_set.iter().map(|s| s.to_string()));
    sources.extend(IMPLICIT_SOURCES.iter().map(|s| s.to_string()));

    // Check expressions: unknown names & calls.
    let defined_names: HashSet<&str> = assigned_names.iter().map(|(n, _)| n.as_str()).collect();
    for s in &body {
        check_stmt(s, &sources, &defined_names, &mut errors);
    }

    // ---- topological order ----
    let ordered = match topo_order(&body, &sources) {
        Ok(o) => o,
        Err(cycle) => {
            errors.push(Diagnostic::new(
                ErrorCode::DependencyCycle,
                Span::none(),
                format!("dependency cycle through {cycle}"),
            ));
            body.clone()
        }
    };

    if errors.is_empty() {
        Ok(Model {
            name: ast.name.clone(),
            states,
            externals,
            params,
            lookups,
            stmts: ordered,
        })
    } else {
        Err(SemaErrors(
            errors
                .into_iter()
                .map(|e| e.with_model(&ast.name))
                .collect(),
        ))
    }
}

/// Collects the names defined by a top-level statement. For `if` statements
/// every name must be assigned in both branches.
fn collect_top_defs(stmt: &Stmt, out: &mut Vec<(String, usize)>, errors: &mut Vec<SemaError>) {
    match stmt {
        Stmt::Assign { lhs, line, .. } => out.push((lhs.clone(), *line)),
        Stmt::If {
            then_body,
            else_body,
            line,
            ..
        } => {
            let mut then_names = Vec::new();
            let mut else_names = Vec::new();
            for s in then_body {
                s.assigned_names(&mut then_names);
            }
            for s in else_body {
                s.assigned_names(&mut else_names);
            }
            let then_set: HashSet<&String> = then_names.iter().collect();
            let else_set: HashSet<&String> = else_names.iter().collect();
            for n in then_set.union(&else_set) {
                if then_set.contains(*n) && else_set.contains(*n) {
                    out.push(((*n).clone(), *line));
                } else {
                    errors.push(Diagnostic::new(
                        ErrorCode::OneSidedConditional,
                        Span::line(*line),
                        format!(
                            "{n} is assigned in only one branch of a conditional; EasyML \
                             requires both branches to define it"
                        ),
                    ));
                }
            }
        }
    }
}

fn check_expr(
    expr: &Expr,
    sources: &HashSet<String>,
    defined: &HashSet<&str>,
    errors: &mut Vec<SemaError>,
    line: usize,
) {
    match expr {
        Expr::Num(_) => {}
        Expr::Var(name) => {
            if !sources.contains(name) && !defined.contains(name.as_str()) {
                errors.push(Diagnostic::new(
                    ErrorCode::UndefinedVariable,
                    Span::line(line),
                    format!("use of undefined variable {name}"),
                ));
            }
        }
        Expr::Unary(_, e) => check_expr(e, sources, defined, errors, line),
        Expr::Binary(_, l, r) => {
            check_expr(l, sources, defined, errors, line);
            check_expr(r, sources, defined, errors, line);
        }
        Expr::Call(name, args) => {
            match builtin_arity(name) {
                None => errors.push(Diagnostic::new(
                    ErrorCode::UnknownFunction,
                    Span::line(line),
                    format!("call to unknown function {name}()"),
                )),
                Some(arity) if arity != args.len() => errors.push(Diagnostic::new(
                    ErrorCode::WrongArity,
                    Span::line(line),
                    format!("{name}() expects {arity} argument(s), got {}", args.len()),
                )),
                Some(_) => {}
            }
            for a in args {
                check_expr(a, sources, defined, errors, line);
            }
        }
        Expr::Cond(c, t, e) => {
            check_expr(c, sources, defined, errors, line);
            check_expr(t, sources, defined, errors, line);
            check_expr(e, sources, defined, errors, line);
        }
    }
}

fn check_stmt(
    stmt: &Stmt,
    sources: &HashSet<String>,
    defined: &HashSet<&str>,
    errors: &mut Vec<SemaError>,
) {
    match stmt {
        Stmt::Assign { expr, line, .. } => check_expr(expr, sources, defined, errors, *line),
        Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        } => {
            check_expr(cond, sources, defined, errors, *line);
            for s in then_body.iter().chain(else_body) {
                check_stmt(s, sources, defined, errors);
            }
        }
    }
}

/// Kahn topological sort of statements by def-use dependencies. Reads of
/// source names (state, external, parameter, `t`, `dt`) do not create edges;
/// reads of names defined by another statement do — with the exception of
/// assigned externals, whose *reads as sources* are allowed only if no
/// statement defines them.
fn topo_order(body: &[Stmt], sources: &HashSet<String>) -> Result<Vec<Stmt>, String> {
    let n = body.len();
    // def name -> statement index
    let mut def_of: HashMap<String, usize> = HashMap::new();
    for (i, s) in body.iter().enumerate() {
        let mut defs = Vec::new();
        s.assigned_names(&mut defs);
        for d in defs {
            def_of.insert(d, i);
        }
    }
    let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, s) in body.iter().enumerate() {
        let mut reads = Vec::new();
        s.read_names(&mut reads);
        for r in reads {
            if let Some(&j) = def_of.get(&r) {
                if j != i {
                    deps[i].insert(j);
                }
            } else if !sources.contains(&r) {
                // Unknown name: reported by check_stmt; ignore here.
            }
        }
    }
    let mut indegree: Vec<usize> = vec![0; n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        indegree[i] = ds.len();
        for &j in ds {
            rev[j].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    // Stable order: prefer original source order among ready nodes.
    ready.sort_unstable();
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::BinaryHeap::new();
    for i in ready {
        queue.push(std::cmp::Reverse(i));
    }
    while let Some(std::cmp::Reverse(i)) = queue.pop() {
        order.push(i);
        for &k in &rev[i] {
            indegree[k] -= 1;
            if indegree[k] == 0 {
                queue.push(std::cmp::Reverse(k));
            }
        }
    }
    if order.len() != n {
        // Find a statement stuck in the cycle for the message.
        let stuck = (0..n).find(|i| !order.contains(i)).unwrap_or(0);
        let mut defs = Vec::new();
        body[stuck].assigned_names(&mut defs);
        return Err(defs.join(", "));
    }
    Ok(order.into_iter().map(|i| body[i].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;

    const PATHMANATHAN: &str = r#"
Vm; .external(); .nodal(); .lookup(-100,100,0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();
group{ Cm = 200; beta = 1; xi = 3; }.param();
u1_init = 0; u2_init = 0; u3_init = 0; Vm_init = 0;
diff_u3 = 0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1;.method(rk2);
Iion = (-(Cm/2.)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
"#;

    fn pathmanathan() -> Model {
        analyze(&parse_model("Pathmanathan", PATHMANATHAN).unwrap()).unwrap()
    }

    #[test]
    fn classifies_paper_model() {
        let m = pathmanathan();
        assert_eq!(
            m.states.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["u3", "u2", "u1"]
        );
        assert_eq!(m.state("u1").unwrap().method, Method::Rk2);
        assert_eq!(m.state("u2").unwrap().method, Method::Fe);
        assert_eq!(m.externals.len(), 2);
        assert!(m.external("Iion").unwrap().assigned);
        assert!(!m.external("Vm").unwrap().assigned);
        assert_eq!(m.params.len(), 3);
        assert_eq!(m.param("Cm").unwrap().default, 200.0);
        assert_eq!(m.lookup("Vm").unwrap().step, 0.05);
    }

    #[test]
    fn init_values_resolved() {
        let m = pathmanathan();
        assert_eq!(m.state("u1").unwrap().init, 0.0);
        let m2 = analyze(
            &parse_model("m", "group{k = 2;}.param();\ndiff_x = -x;\nx_init = k * 3;").unwrap(),
        )
        .unwrap();
        assert_eq!(m2.state("x").unwrap().init, 6.0);
    }

    #[test]
    fn topological_order() {
        // b depends on a but is written first.
        let src = "diff_x = b;\nb = a * 2;\na = x + 1;";
        let m = analyze(&parse_model("m", src).unwrap()).unwrap();
        let lhss: Vec<&str> = m
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign { lhs, .. } => lhs.as_str(),
                _ => "?",
            })
            .collect();
        let pos = |n: &str| {
            lhss.iter()
                .position(|l| *l == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("diff_x"));
    }

    #[test]
    fn cycle_detected() {
        let src = "a = b + x;\nb = a * 2;\ndiff_x = a;";
        let err = analyze(&parse_model("m", src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn double_assignment_rejected() {
        let src = "a = 1;\na = 2;\ndiff_x = a + x;";
        let err = analyze(&parse_model("m", src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn direct_state_assignment_rejected() {
        let src = "diff_x = -x;\nx = 3;";
        let err = analyze(&parse_model("m", src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("assign diff_x instead"));
    }

    #[test]
    fn one_sided_conditional_rejected() {
        let src = "diff_x = -x;\nif (x > 0) { a = 1; } else { b = 2; }";
        let err = analyze(&parse_model("m", src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("only one branch"));
    }

    #[test]
    fn both_sided_conditional_ok() {
        let src = "diff_x = -x * a;\nif (x > 0) { a = 1; } else { a = 2; }";
        let m = analyze(&parse_model("m", src).unwrap()).unwrap();
        assert_eq!(m.stmts.len(), 2);
        assert!(matches!(m.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = analyze(&parse_model("m", "diff_x = y;").unwrap()).unwrap_err();
        assert!(err.to_string().contains("undefined variable y"));
    }

    #[test]
    fn unknown_function_rejected() {
        let err = analyze(&parse_model("m", "diff_x = frobnicate(x);").unwrap()).unwrap_err();
        assert!(err.to_string().contains("unknown function"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = analyze(&parse_model("m", "diff_x = pow(x);").unwrap()).unwrap_err();
        assert!(err.to_string().contains("expects 2 argument"));
    }

    #[test]
    fn unknown_method_rejected() {
        let err =
            analyze(&parse_model("m", "diff_x = -x;\nx;.method(cvode);").unwrap()).unwrap_err();
        assert!(err.to_string().contains("unknown integration method"));
    }

    #[test]
    fn method_on_non_state_rejected() {
        let err =
            analyze(&parse_model("m", "a = 1;\nb = a;\ndiff_x = x;\na;.method(rk2);").unwrap())
                .unwrap_err();
        assert!(err.to_string().contains("no diff_a equation"));
    }

    #[test]
    fn affine_gate_form() {
        // dx = (x_inf - x)/tau: a = x_inf/tau, b = -1/tau.
        let src = "diff_m = (m_inf - m) / tau;\nm_inf = 0.5;\ntau = 2.0;";
        let m = analyze(&parse_model("m", src).unwrap()).unwrap();
        let d = m.diff_expr("m").unwrap();
        let (a, b) = affine_in(d, "m").expect("gate equation must be affine");
        let env: HashMap<String, f64> =
            [("m_inf".to_string(), 0.5), ("tau".to_string(), 2.0)].into();
        assert_eq!(eval_const(&a, &env), Some(0.25));
        assert_eq!(eval_const(&b, &env), Some(-0.5));
    }

    #[test]
    fn affine_rejects_nonlinear() {
        let e = Expr::bin(BinOp::Mul, Expr::Var("x".into()), Expr::Var("x".into()));
        assert!(affine_in(&e, "x").is_none());
        let c = Expr::Call("exp".into(), vec![Expr::Var("x".into())]);
        assert!(affine_in(&c, "x").is_none());
    }

    #[test]
    fn affine_alpha_beta_form() {
        // dx = alpha*(1-x) - beta*x  -> a = alpha, b = -(alpha+beta)
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(
                BinOp::Mul,
                Expr::Var("alpha".into()),
                Expr::bin(BinOp::Sub, Expr::Num(1.0), Expr::Var("x".into())),
            ),
            Expr::bin(BinOp::Mul, Expr::Var("beta".into()), Expr::Var("x".into())),
        );
        let (a, b) = affine_in(&e, "x").unwrap();
        let env: HashMap<String, f64> =
            [("alpha".to_string(), 3.0), ("beta".to_string(), 5.0)].into();
        assert_eq!(eval_const(&a, &env), Some(3.0));
        assert_eq!(eval_const(&b, &env), Some(-8.0));
    }

    #[test]
    fn eval_const_covers_all_builtins() {
        let env = HashMap::new();
        for (name, arity) in BUILTINS {
            let args = vec![Expr::Num(0.5); arity];
            let e = Expr::Call(name.to_string(), args);
            assert!(
                eval_const(&e, &env).is_some(),
                "builtin {name} not const-evaluable"
            );
        }
    }

    #[test]
    fn complexity_counts_nodes() {
        let m = pathmanathan();
        assert!(m.complexity() > 20);
    }

    #[test]
    fn methods_all_parse() {
        for meth in Method::ALL {
            assert_eq!(Method::parse(meth.name()), Some(meth));
        }
        assert_eq!(Method::parse("bogus"), None);
    }
}
