//! Lexer for the EasyML ionic-model description language.
//!
//! EasyML is the markup language used by openCARP to describe ionic models
//! (see paper §2.2). Tokens follow C expression syntax plus the markup
//! punctuation (`.markup(args);`) and the `group { … }` construct.

use crate::diag::{Diagnostic, ErrorCode, Span};
use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column of the token's first byte.
    pub col: usize,
}

impl Token {
    /// The token's source span.
    pub fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

/// Token kinds of EasyML.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`group`, `if`, `else` are recognized later).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.` (markup introducer)
    Dot,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Num(v) => write!(f, "number `{v}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Not => write!(f, "`!`"),
        }
    }
}

/// A lexical error: a [`Diagnostic`] with an `E01xx` code.
pub type LexError = Diagnostic;

/// Tokenizes EasyML source.
///
/// Comments run from `#` or `//` to end-of-line, and from `/*` to `*/`.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed numbers or unexpected characters.
///
/// # Examples
///
/// ```
/// use limpet_easyml::lex;
/// let toks = lex("diff_u2 = -(u1+u3-Vm)*cube(u2);").unwrap();
/// assert_eq!(toks.len(), 16);
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;
    // Byte offset of the current line's first byte; columns derive from it.
    let mut line_start = 0usize;

    macro_rules! push_at {
        ($kind:expr, $start:expr) => {
            toks.push(Token {
                kind: $kind,
                line,
                col: $start - line_start + 1,
            })
        };
    }
    macro_rules! push {
        ($kind:expr) => {
            push_at!($kind, pos)
        };
    }
    macro_rules! err {
        ($code:expr, $($msg:tt)*) => {
            Diagnostic::new(
                $code,
                Span { line, col: pos - line_start + 1 },
                format!($($msg)*),
            )
        };
    }

    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b'\n' => {
                line += 1;
                pos += 1;
                line_start = pos;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                pos += 2;
                loop {
                    if pos + 1 >= bytes.len() {
                        return Err(err!(
                            ErrorCode::UnterminatedComment,
                            "unterminated block comment"
                        ));
                    }
                    if bytes[pos] == b'\n' {
                        line += 1;
                        line_start = pos + 1;
                    }
                    if bytes[pos] == b'*' && bytes[pos + 1] == b'/' {
                        pos += 2;
                        break;
                    }
                    pos += 1;
                }
            }
            b'(' => {
                push!(TokenKind::LParen);
                pos += 1;
            }
            b')' => {
                push!(TokenKind::RParen);
                pos += 1;
            }
            b'{' => {
                push!(TokenKind::LBrace);
                pos += 1;
            }
            b'}' => {
                push!(TokenKind::RBrace);
                pos += 1;
            }
            b';' => {
                push!(TokenKind::Semi);
                pos += 1;
            }
            b',' => {
                push!(TokenKind::Comma);
                pos += 1;
            }
            b'+' => {
                push!(TokenKind::Plus);
                pos += 1;
            }
            b'-' => {
                push!(TokenKind::Minus);
                pos += 1;
            }
            b'*' => {
                push!(TokenKind::Star);
                pos += 1;
            }
            b'/' => {
                push!(TokenKind::Slash);
                pos += 1;
            }
            b'%' => {
                push!(TokenKind::Percent);
                pos += 1;
            }
            b'?' => {
                push!(TokenKind::Question);
                pos += 1;
            }
            b':' => {
                push!(TokenKind::Colon);
                pos += 1;
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Le);
                    pos += 2;
                } else {
                    push!(TokenKind::Lt);
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Ge);
                    pos += 2;
                } else {
                    push!(TokenKind::Gt);
                    pos += 1;
                }
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::EqEq);
                    pos += 2;
                } else {
                    push!(TokenKind::Assign);
                    pos += 1;
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::NotEq);
                    pos += 2;
                } else {
                    push!(TokenKind::Not);
                    pos += 1;
                }
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    push!(TokenKind::AndAnd);
                    pos += 2;
                } else {
                    return Err(err!(
                        ErrorCode::BadOperator,
                        "single `&` is not an EasyML operator"
                    ));
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    push!(TokenKind::OrOr);
                    pos += 2;
                } else {
                    return Err(err!(
                        ErrorCode::BadOperator,
                        "single `|` is not an EasyML operator"
                    ));
                }
            }
            b'0'..=b'9' => {
                let start = pos;
                let mut seen_e = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'0'..=b'9' | b'.' => pos += 1,
                        b'e' | b'E' if !seen_e => {
                            seen_e = true;
                            pos += 1;
                            if matches!(bytes.get(pos), Some(b'+') | Some(b'-')) {
                                pos += 1;
                            }
                        }
                        _ => break,
                    }
                }
                // The scanned bytes are ASCII by construction; lossy
                // conversion cannot actually lose anything and never panics.
                let text = String::from_utf8_lossy(&bytes[start..pos]);
                let v: f64 = text
                    .parse()
                    .map_err(|_| err!(ErrorCode::MalformedNumber, "malformed number `{text}`"))?;
                push_at!(TokenKind::Num(v), start);
            }
            b'.' => {
                // Either a markup dot or a leading-dot float like `.05`.
                if matches!(bytes.get(pos + 1), Some(b'0'..=b'9')) {
                    let start = pos;
                    pos += 1;
                    let mut seen_e = false;
                    while pos < bytes.len() {
                        match bytes[pos] {
                            b'0'..=b'9' => pos += 1,
                            b'e' | b'E' if !seen_e => {
                                seen_e = true;
                                pos += 1;
                                if matches!(bytes.get(pos), Some(b'+') | Some(b'-')) {
                                    pos += 1;
                                }
                            }
                            _ => break,
                        }
                    }
                    let text = String::from_utf8_lossy(&bytes[start..pos]);
                    let v: f64 = text.parse().map_err(|_| {
                        err!(ErrorCode::MalformedNumber, "malformed number `{text}`")
                    })?;
                    push_at!(TokenKind::Num(v), start);
                } else {
                    push!(TokenKind::Dot);
                    pos += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..pos]).into_owned();
                push_at!(TokenKind::Ident(text), start);
            }
            other => {
                return Err(err!(
                    ErrorCode::UnexpectedChar,
                    "unexpected character `{}`",
                    other as char
                ))
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_markup_line() {
        let k = kinds("Vm; .external(); .lookup(-100,100,0.05);");
        assert_eq!(k[0], TokenKind::Ident("Vm".into()));
        assert_eq!(k[1], TokenKind::Semi);
        assert_eq!(k[2], TokenKind::Dot);
        assert_eq!(k[3], TokenKind::Ident("external".into()));
        assert!(k.contains(&TokenKind::Num(0.05)));
        // -100 lexes as Minus then Num(100).
        assert!(k.contains(&TokenKind::Minus));
        assert!(k.contains(&TokenKind::Num(100.0)));
    }

    #[test]
    fn lexes_leading_dot_float() {
        let k = kinds("x = .5;");
        assert!(k.contains(&TokenKind::Num(0.5)));
    }

    #[test]
    fn trailing_dot_number_then_markup() {
        // `2.` is a float; `2.);` from the paper's `(Cm/2.)` pattern.
        let k = kinds("Iion = Cm/2.;");
        assert!(k.contains(&TokenKind::Num(2.0)));
    }

    #[test]
    fn lexes_comments() {
        let k = kinds("# full line\nx = 1; // tail\n/* block\nspanning */ y = 2;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Num(1.0),
                TokenKind::Semi,
                TokenKind::Ident("y".into()),
                TokenKind::Assign,
                TokenKind::Num(2.0),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let k = kinds("a<=b >= c != d == e && f || !g");
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::NotEq));
        assert!(k.contains(&TokenKind::EqEq));
        assert!(k.contains(&TokenKind::AndAnd));
        assert!(k.contains(&TokenKind::OrOr));
        assert!(k.contains(&TokenKind::Not));
    }

    #[test]
    fn scientific_notation() {
        let k = kinds("x = 1.5e-3 + 2E+4;");
        assert!(k.contains(&TokenKind::Num(1.5e-3)));
        assert!(k.contains(&TokenKind::Num(2e4)));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a = 1;\nb = 2;\n\nc = 3;").unwrap();
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.kind == TokenKind::Ident(name.into()))
                .unwrap()
                .line
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
    }

    #[test]
    fn error_on_stray_char() {
        let err = lex("x = $;").unwrap_err();
        assert!(err.message.contains('$'));
        assert_eq!(err.span.line, 1);
        assert_eq!(err.span.col, 5);
        assert_eq!(err.code, ErrorCode::UnexpectedChar);
    }

    #[test]
    fn error_on_unterminated_block_comment() {
        let err = lex("/* nope").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnterminatedComment);
    }

    #[test]
    fn columns_tracked_per_line() {
        let toks = lex("a = 1;\n  bb = 22;").unwrap();
        let tok = |name: &str| {
            toks.iter()
                .find(|t| t.kind == TokenKind::Ident(name.into()))
                .unwrap()
        };
        assert_eq!((tok("a").line, tok("a").col), (1, 1));
        assert_eq!((tok("bb").line, tok("bb").col), (2, 3));
        let num22 = toks
            .iter()
            .find(|t| t.kind == TokenKind::Num(22.0))
            .unwrap();
        assert_eq!((num22.line, num22.col), (2, 8));
    }
}
