//! Spanned diagnostics for the EasyML frontend.
//!
//! Every lexical, syntactic, and semantic failure is reported as a
//! [`Diagnostic`]: a stable [`ErrorCode`], a source [`Span`], the model
//! name (when known), and a human-readable message. Nothing in this
//! crate panics on malformed input — the whole frontend funnels through
//! this type so downstream tooling (the harness degradation chain, the
//! `limpet-opt` driver) can classify failures without string matching.

use std::fmt;

/// A source position: 1-based line and column.
///
/// Column `0` means "unknown" (errors synthesized after the token
/// stream is gone, e.g. whole-model semantic checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line (0 when unknown).
    pub line: usize,
    /// 1-based source column (0 when unknown).
    pub col: usize,
}

impl Span {
    /// A span with a known line but no column.
    pub fn line(line: usize) -> Span {
        Span { line, col: 0 }
    }

    /// The unknown span.
    pub fn none() -> Span {
        Span { line: 0, col: 0 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "{}:{}", self.line, self.col)
        } else if self.line > 0 {
            write!(f, "line {}", self.line)
        } else {
            write!(f, "<unknown>")
        }
    }
}

/// Stable EasyML diagnostic codes.
///
/// `E01xx` are lexical, `E02xx` syntactic, `E03xx` semantic. The numeric
/// spelling ([`ErrorCode::as_str`]) is part of the crate's output contract:
/// tests and the harness incident log match on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    // ---- lexical ----
    /// `/* …` with no closing `*/`.
    UnterminatedComment,
    /// A numeric literal that does not parse as `f64` (e.g. `1.2.3`).
    MalformedNumber,
    /// A byte that starts no EasyML token.
    UnexpectedChar,
    /// A lone `&` or `|` (EasyML only has `&&` and `||`).
    BadOperator,
    // ---- syntactic ----
    /// Input ended where a token was required.
    UnexpectedEof,
    /// A well-formed token in a position the grammar does not allow.
    UnexpectedToken,
    /// `.markup();` with no preceding declaration or group to attach to.
    OrphanMarkup,
    /// A markup argument that is neither a number nor an identifier.
    BadMarkupArg,
    // ---- semantic ----
    /// `.lookup(lo, hi, step)` with a malformed range.
    BadLookupRange,
    /// `.method(name)` naming no known integration method.
    UnknownMethod,
    /// A markup name this frontend does not recognize.
    UnknownMarkup,
    /// A `.param()` group member default that is not a constant.
    NonConstParamDefault,
    /// A group member default outside a `.param()` group.
    DefaultOutsideParamGroup,
    /// `X_init` assigned more than once.
    DuplicateInit,
    /// A variable assigned twice (EasyML is single-assignment).
    DoubleAssignment,
    /// Direct assignment to a state variable (only `diff_X` is writable).
    DirectStateAssignment,
    /// Assignment to a parameter in the model body.
    ParamAssignment,
    /// A conditional that defines a name in only one branch.
    OneSidedConditional,
    /// Use of a name no statement defines and no declaration provides.
    UndefinedVariable,
    /// Call to a function outside the builtin table.
    UnknownFunction,
    /// A builtin called with the wrong number of arguments.
    WrongArity,
    /// A dependency cycle in the equation system.
    DependencyCycle,
    /// `.method()` on a variable with no `diff_` equation.
    MethodOnNonState,
    /// `.lookup()` on a variable nothing defines.
    LookupOnUndefined,
    /// `.parent()` on a variable that is not `.external()`.
    ParentNotExternal,
    /// `X_init` that is not a constant expression over the parameters.
    NonConstInit,
}

impl ErrorCode {
    /// The stable `EXXYY` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnterminatedComment => "E0101",
            ErrorCode::MalformedNumber => "E0102",
            ErrorCode::UnexpectedChar => "E0103",
            ErrorCode::BadOperator => "E0104",
            ErrorCode::UnexpectedEof => "E0201",
            ErrorCode::UnexpectedToken => "E0202",
            ErrorCode::OrphanMarkup => "E0203",
            ErrorCode::BadMarkupArg => "E0204",
            ErrorCode::BadLookupRange => "E0301",
            ErrorCode::UnknownMethod => "E0302",
            ErrorCode::UnknownMarkup => "E0303",
            ErrorCode::NonConstParamDefault => "E0304",
            ErrorCode::DefaultOutsideParamGroup => "E0305",
            ErrorCode::DuplicateInit => "E0306",
            ErrorCode::DoubleAssignment => "E0307",
            ErrorCode::DirectStateAssignment => "E0308",
            ErrorCode::ParamAssignment => "E0309",
            ErrorCode::OneSidedConditional => "E0310",
            ErrorCode::UndefinedVariable => "E0311",
            ErrorCode::UnknownFunction => "E0312",
            ErrorCode::WrongArity => "E0313",
            ErrorCode::DependencyCycle => "E0314",
            ErrorCode::MethodOnNonState => "E0315",
            ErrorCode::LookupOnUndefined => "E0316",
            ErrorCode::ParentNotExternal => "E0317",
            ErrorCode::NonConstInit => "E0318",
        }
    }

    /// The frontend stage that produces this code.
    pub fn stage(self) -> &'static str {
        match self.as_str().as_bytes()[2] {
            b'1' => "lex",
            b'2' => "parse",
            _ => "sema",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single spanned frontend diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable error code.
    pub code: ErrorCode,
    /// Where in the source the error was detected.
    pub span: Span,
    /// The model being compiled, when known (the lexer does not know it;
    /// [`crate::parse_model`] fills it in).
    pub model: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with no model attribution.
    pub fn new(code: ErrorCode, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span,
            model: None,
            message: message.into(),
        }
    }

    /// Attaches the model name (keeps an existing one).
    pub fn with_model(mut self, model: &str) -> Diagnostic {
        if self.model.is_none() {
            self.model = Some(model.to_owned());
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]", self.code)?;
        if let Some(m) = &self.model {
            write!(f, " in model '{m}'")?;
        }
        write!(f, " at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_column() {
        let d = Diagnostic::new(
            ErrorCode::UnexpectedToken,
            Span { line: 3, col: 7 },
            "expected `;`, got `)`",
        )
        .with_model("Demo");
        assert_eq!(
            d.to_string(),
            "error[E0202] in model 'Demo' at 3:7: expected `;`, got `)`"
        );
        let d2 = Diagnostic::new(ErrorCode::DependencyCycle, Span::line(4), "cycle");
        assert_eq!(d2.to_string(), "error[E0314] at line 4: cycle");
        let d3 = Diagnostic::new(ErrorCode::ParentNotExternal, Span::none(), "x");
        assert_eq!(d3.to_string(), "error[E0317] at <unknown>: x");
    }

    #[test]
    fn stages_follow_code_ranges() {
        assert_eq!(ErrorCode::MalformedNumber.stage(), "lex");
        assert_eq!(ErrorCode::OrphanMarkup.stage(), "parse");
        assert_eq!(ErrorCode::DependencyCycle.stage(), "sema");
    }

    #[test]
    fn with_model_keeps_existing() {
        let d = Diagnostic::new(ErrorCode::UnexpectedEof, Span::none(), "eof")
            .with_model("A")
            .with_model("B");
        assert_eq!(d.model.as_deref(), Some("A"));
    }
}
