//! The deterministic fault-injection suite: proves every degradation path
//! of the fault-tolerant compile/run chain fires and recovers.
//!
//! Fault plans are process-global, so every test here serializes on one
//! mutex and disarms all plans before and after its scenario. The
//! compile/run acceptance scenario is one `--inject`-style spec with
//! fixed seeds that exercises the five in-process fault kinds end to end
//! on the 3-model CI subset, each producing a recorded incident, with
//! the optimized → raw → reference chain observed and the post-fallback
//! trajectory bit-identical to the reference pipeline. The three disk
//! faults (`disk-corrupt`, `disk-truncate`, `disk-stale-version`) get
//! their own combined-spec scenario here; `persistent_cache.rs` covers
//! each one individually plus self-healing and concurrency.

use limpet_harness::{
    compile_source, faults, CompileError, DiskCache, HealthPolicy, IncidentKind, KernelCache,
    PipelineKind, Simulation, Tier, Workload,
};
use limpet_models::{model, source};
use std::sync::{Arc, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    faults::disarm_all();
    guard
}

const WL: Workload = Workload {
    n_cells: 8,
    steps: 0,
    dt: 0.01,
};

#[test]
fn parse_error_fault_yields_spanned_diagnostic_then_clears() {
    let _g = serialized();
    faults::arm("parse-error@11").unwrap();
    let src = source("HodgkinHuxley");
    let err = compile_source("HodgkinHuxley", &src).expect_err("injected corruption must fail");
    assert_eq!(err.stage(), "parse");
    let text = err.to_string();
    assert!(text.contains("HodgkinHuxley"), "model name in '{text}'");
    assert!(text.contains("error[E0"), "coded diagnostic in '{text}'");

    // Determinism: the same seed corrupts the same way.
    faults::arm("parse-error@11").unwrap();
    let again = compile_source("HodgkinHuxley", &src).expect_err("same seed, same failure");
    assert_eq!(err.to_string(), again.to_string());

    // Once-fired: with the plan spent, the same call succeeds.
    let ok = compile_source("HodgkinHuxley", &src).expect("plan is spent");
    assert_eq!(ok.name, "HodgkinHuxley");
    faults::disarm_all();
}

#[test]
fn verify_fail_quarantines_and_falls_back_to_reference() {
    let _g = serialized();
    let cache = KernelCache::new();
    let m = model("BeelerReuter");
    let config = PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx2);

    faults::arm("verify-fail@9").unwrap();
    let rk = cache
        .get_or_compile_resilient(&m, config)
        .expect("reference fallback must succeed");
    assert_eq!(rk.tier, Tier::Reference);
    assert_eq!(rk.config, PipelineKind::Baseline);
    assert!(rk
        .incidents
        .iter()
        .any(|i| i.kind == IncidentKind::TierFallback));

    // The failure is a structured pipeline error with a verifier code.
    let quarantined = cache.quarantine();
    assert_eq!(quarantined.len(), 1);
    let q = &quarantined[0];
    assert_eq!(q.model, "BeelerReuter");
    match &q.error {
        CompileError::Pipeline(p) => {
            let v = p.verify_error().expect("verify failure");
            assert_eq!(v.code, limpet_ir::VerifyCode::Dominance, "{v}");
        }
        other => panic!("expected a pipeline error, got {other}"),
    }

    // Negative caching: the broken config fails once, later lookups hit
    // the quarantine entry without compiling again.
    let misses_before = cache.stats().misses;
    let rk2 = cache
        .get_or_compile_resilient(&m, config)
        .expect("still served from reference");
    assert_eq!(rk2.tier, Tier::Reference);
    assert_eq!(
        cache.stats().misses,
        misses_before,
        "quarantine hit must not recompile"
    );
    faults::disarm_all();
}

#[test]
fn bytecode_corrupt_falls_back_to_raw_kernel() {
    let _g = serialized();
    let cache = KernelCache::new();
    let m = model("Plonsey");
    faults::arm("bytecode-corrupt@1").unwrap();
    let rk = cache
        .get_or_compile_resilient(&m, PipelineKind::Baseline)
        .expect("raw fallback must succeed");
    assert_eq!(rk.tier, Tier::Raw);
    assert!(rk.kernel().shares_compilation(rk.entry.raw_kernel()));
    assert!(rk
        .incidents
        .iter()
        .any(|i| i.kind == IncidentKind::BytecodeFail));
    faults::disarm_all();
}

#[test]
fn cache_poison_is_recovered_and_recorded() {
    let _g = serialized();
    let cache = KernelCache::new();
    let m = model("HodgkinHuxley");
    faults::arm("cache-poison@0").unwrap();
    let rk = cache
        .get_or_compile_resilient(&m, PipelineKind::Baseline)
        .expect("poisoned lock must not end the run");
    assert_eq!(rk.tier, Tier::Optimized);
    let s = cache.stats();
    assert!(s.poison_recoveries >= 1, "{s:?}");
    assert!(cache
        .incidents()
        .iter()
        .any(|i| i.kind == IncidentKind::CachePoisonRecovered));
    faults::disarm_all();
}

#[test]
fn state_nan_descends_one_tier_under_fallback_policy() {
    let _g = serialized();
    let m = model("MitchellSchaeffer");
    faults::arm("state-nan@5").unwrap();
    let mut sim =
        Simulation::new_resilient(&m, PipelineKind::Baseline, &WL, HealthPolicy::FallbackRaw)
            .expect("healthy model compiles");
    assert_eq!(sim.tier(), Tier::Optimized);
    sim.run_guarded(30).expect("fallback absorbs the NaN");
    assert_eq!(sim.tier(), Tier::Raw, "one rung down after the NaN");
    let kinds: Vec<IncidentKind> = sim.incidents().iter().map(|i| i.kind).collect();
    assert!(kinds.contains(&IncidentKind::NonFiniteState), "{kinds:?}");
    assert!(kinds.contains(&IncidentKind::TierFallback), "{kinds:?}");
    let nan_incident = sim
        .incidents()
        .iter()
        .find(|i| i.kind == IncidentKind::NonFiniteState)
        .unwrap();
    assert_eq!(nan_incident.step, Some(faults::nan_step(5)));
    // Everything stayed finite from the outside.
    for cell in 0..WL.n_cells {
        assert!(sim.vm(cell).is_finite());
    }
    faults::disarm_all();
}

/// The disk-fault trio rides the same spec grammar as the in-process
/// faults, and one spec arming all three spreads them across consecutive
/// disk-cache loads (at most one fault fires per load) — so a single
/// `--inject disk-corrupt@3,disk-truncate@5,disk-stale-version@1` run
/// exercises the checksum, length, and version rungs of the integrity
/// ladder on three successive lookups, each degrading to a recompile
/// whose trajectory stays bit-identical to the original cold compile.
#[test]
fn combined_disk_fault_spec_spreads_over_consecutive_loads() {
    let _g = serialized();
    let dir = std::env::temp_dir().join(format!("limpet-fault-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let m = model("HodgkinHuxley");
    let config = PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512);
    const STEPS: usize = 100;

    let trajectory = |cache: &KernelCache| -> Vec<u64> {
        let entry = cache.get_or_compile(&m, config);
        let mut sim = Simulation::with_kernel(entry.kernel().clone(), entry.layout(), &WL);
        sim.run(STEPS);
        (0..WL.n_cells).map(|c| sim.vm(c).to_bits()).collect()
    };

    // Seed the durable tier with one valid entry.
    let seeder = KernelCache::new();
    seeder.set_disk_cache(Some(Arc::clone(&disk)));
    let reference = trajectory(&seeder);

    faults::arm("disk-corrupt@3,disk-truncate@5,disk-stale-version@1").unwrap();
    for round in 1..=3 {
        // A fresh process-level cache forces each round down to disk.
        let cache = KernelCache::new();
        cache.set_disk_cache(Some(Arc::clone(&disk)));
        let bits = trajectory(&cache);
        let s = cache.stats();
        assert_eq!(s.disk_rejects, 1, "round {round}: one fault, one rejection");
        assert_eq!(s.misses, 1, "round {round}: degraded to a recompile");
        assert_eq!(s.disk_writes, 1, "round {round}: re-stored (self-heal)");
        assert!(
            cache
                .incidents()
                .iter()
                .any(|i| i.kind == IncidentKind::DiskCacheRejected),
            "round {round}: rejection recorded"
        );
        assert_eq!(bits, reference, "round {round}: bit-identical trajectory");
    }

    // All three plans are spent: the fourth load is a clean disk hit.
    let cache = KernelCache::new();
    cache.set_disk_cache(Some(Arc::clone(&disk)));
    let bits = trajectory(&cache);
    let s = cache.stats();
    assert_eq!((s.disk_hits, s.disk_rejects, s.misses), (1, 0, 0), "{s:?}");
    assert_eq!(bits, reference);
    let _ = std::fs::remove_dir_all(&dir);
    faults::disarm_all();
}

/// The acceptance scenario: one fixed-seed spec arms all five in-process
/// fault kinds; a roster-style pass over the 3-model CI subset trips every one
/// of them, each leaving a recorded incident; the degradation chain runs
/// optimized → raw → reference end to end; and the post-fallback
/// trajectory is bit-identical to the reference pipeline.
#[test]
fn full_spec_exercises_all_five_faults_deterministically() {
    let _g = serialized();
    const SUBSET: [&str; 3] = ["HodgkinHuxley", "BeelerReuter", "TenTusscherPanfilov"];
    const STEPS: usize = 40;

    let run_scenario = |name: &str| -> (Vec<IncidentKind>, Vec<u64>) {
        faults::disarm_all();
        faults::arm("parse-error@3,verify-fail@5,cache-poison@2,bytecode-corrupt@1,state-nan@9")
            .unwrap();
        let mut seen = Vec::new();

        // 1. parse-error: the frontend shim reports a spanned diagnostic
        //    (and logs a frontend-error incident globally).
        let err = compile_source(name, &source(name)).expect_err("injected parse failure");
        assert_eq!(err.stage(), "parse");
        assert!(
            KernelCache::global()
                .incidents()
                .iter()
                .any(|i| i.kind == IncidentKind::FrontendError && i.model == name),
            "frontend failure must land in the global incident report"
        );
        seen.push(IncidentKind::FrontendError);

        // 2-4. verify-fail, cache-poison, bytecode-corrupt: the resilient
        // lookup recovers the poisoned lock, quarantines the corrupted
        // vectorized build, falls back to the reference pipeline, and
        // lands on its raw bytecode. A fresh cache isolates the scenario.
        let m = model(name);
        let cache = KernelCache::new();
        let config = PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512);
        let rk = cache
            .get_or_compile_resilient(&m, config)
            .expect("chain ends on a working kernel");
        assert_eq!(rk.config, PipelineKind::Baseline, "reference pipeline");
        assert_eq!(rk.tier, Tier::Raw, "raw bytecode of the reference entry");
        assert!(cache.stats().poison_recoveries >= 1);
        assert_eq!(cache.stats().quarantined, 1);
        for i in cache.incidents() {
            seen.push(i.kind);
        }
        for i in &rk.incidents {
            seen.push(i.kind);
        }

        // 5. state-nan: a guarded run (Baseline config so every tier is
        // the same arithmetic) absorbs a mid-run NaN by descending tiers.
        let mut sim =
            Simulation::new_resilient(&m, PipelineKind::Baseline, &WL, HealthPolicy::FallbackRaw)
                .expect("healthy model compiles");
        sim.run_guarded(STEPS).expect("NaN absorbed");
        for i in sim.incidents() {
            seen.push(i.kind);
        }

        // Post-fallback trajectory must be bit-identical to the reference
        // pipeline run without any faults.
        let mut reference = Simulation::new(&m, PipelineKind::Baseline, &WL);
        reference.run(STEPS);
        let mut bits = Vec::new();
        for cell in 0..WL.n_cells {
            assert_eq!(
                sim.vm(cell).to_bits(),
                reference.vm(cell).to_bits(),
                "{name} cell {cell}: post-fallback Vm diverged from reference"
            );
            bits.push(sim.vm(cell).to_bits());
        }
        faults::disarm_all();
        (seen, bits)
    };

    for name in SUBSET {
        let (seen, bits) = run_scenario(name);
        for kind in [
            IncidentKind::FrontendError,
            IncidentKind::CachePoisonRecovered,
            IncidentKind::Quarantined,
            IncidentKind::TierFallback,
            IncidentKind::BytecodeFail,
            IncidentKind::NonFiniteState,
        ] {
            assert!(seen.contains(&kind), "{name}: missing incident {kind}");
        }
        // Determinism: the identical spec reproduces the identical
        // incidents and the identical trajectory.
        let (seen2, bits2) = run_scenario(name);
        assert_eq!(seen, seen2, "{name}: incident sequence must reproduce");
        assert_eq!(bits, bits2, "{name}: trajectory must reproduce");
    }
}
