//! Differential proof that the VM's post-compile bytecode optimizer is
//! bit-exact: for every roster model, under configurations covering
//! vector widths {1, 4, 8} and both storage layouts (AoS and AoSoA),
//! the optimized and unoptimized kernels must produce bit-identical
//! state trajectories — not approximately equal, identical to the last
//! mantissa bit, because every rewrite (copy coalescing, mul+add→fma
//! with the engine's split fma semantics, constant-operand forms,
//! register compaction) preserves the exact arithmetic.

use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::{model_info, storage_layout, PipelineKind, Simulation, Workload};
use limpet_models::ROSTER;
use limpet_vm::Kernel;

/// Widths 1 (baseline, AoS), 4 (AVX2, AoS layout ablation), and
/// 8 (AVX-512, AoSoA) — every lane count and layout the engine runs.
const CONFIGS: [PipelineKind; 3] = [
    PipelineKind::Baseline,
    PipelineKind::LimpetMlirAos(VectorIsa::Avx2),
    PipelineKind::LimpetMlir(VectorIsa::Avx512),
];

/// Runs one model under `config`, optimizer on and off, and demands
/// bit-identical state after several desynchronized steps.
fn check_bit_exact(m: &limpet_easyml::Model, config: PipelineKind) {
    let wl = Workload {
        n_cells: 8,
        steps: 0,
        dt: 0.02,
    };
    let info = model_info(m);
    let module = config.build(m);
    let layout = storage_layout(&module);
    let (k_opt, stats, k_raw) = Kernel::from_module_both(&module, &info)
        .unwrap_or_else(|e| panic!("{} {}: {e}", m.name, config.label()));
    let mut opt = Simulation::with_kernel(k_opt, layout, &wl);
    let mut raw = Simulation::with_kernel(k_raw, layout, &wl);
    assert!(
        stats.instrs_after < stats.instrs_before,
        "{} {}: optimizer removed nothing",
        m.name,
        config.label()
    );
    // Desynchronize the cells so lanes take different paths.
    for cell in 0..wl.n_cells {
        let dv = cell as f64 * 1.5;
        opt.perturb_vm(cell, dv);
        raw.perturb_vm(cell, dv);
    }
    for _ in 0..6 {
        opt.step();
        raw.step();
    }
    for cell in 0..wl.n_cells {
        for s in &m.states {
            let a = opt.state_of(cell, &s.name).unwrap();
            let b = raw.state_of(cell, &s.name).unwrap();
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} {} cell {cell} state {}: {a} vs {b}",
                m.name,
                config.label(),
                s.name
            );
        }
    }
}

/// One sweep over the full roster: each model is parsed and checked once
/// per configuration (model sources are parsed a single time and shared
/// across the three configurations — this is the long pole of the test).
#[test]
fn optimizer_is_bit_exact_on_every_roster_model_all_widths_and_layouts() {
    for entry in &ROSTER {
        let m = limpet_models::model(entry.name);
        for config in CONFIGS {
            check_bit_exact(&m, config);
        }
    }
}
