//! Integration suite for the durable kernel-cache tier: disk round-trips
//! must be bit-identical to cold compiles, every injected disk fault must
//! degrade to a recompile with a recorded incident and then self-heal,
//! quarantined failures must never reach disk, and concurrent access —
//! racing threads in one process and a spawned second process — must
//! serialize to exactly one valid entry per key.
//!
//! Fault plans are process-global, so tests that arm them serialize on
//! one mutex, mirroring `fault_injection.rs`. The second-process tests
//! re-exec this test binary (`std::env::current_exe()`) with an `--exact`
//! filter on an env-gated child test, so no extra fixture binary is
//! needed.

use limpet_harness::{
    faults, CompiledKernel, DiskCache, IncidentKind, KernelCache, PipelineKind, Simulation,
    Workload,
};
use limpet_models::model;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, Barrier, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    faults::disarm_all();
    guard
}

const WL: Workload = Workload {
    n_cells: 8,
    steps: 0,
    dt: 0.01,
};
const STEPS: usize = 200;
const CONFIG: PipelineKind = PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512);

/// A fresh per-test cache directory under the system temp dir (std-only:
/// no tempfile crate), cleaned before use so stale runs can't leak in.
fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("limpet-persist-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the compiled kernel for [`STEPS`] and returns every cell's Vm as
/// raw bits — the bit-identity currency of this suite.
fn trajectory_bits(entry: &CompiledKernel) -> Vec<u64> {
    let mut sim = Simulation::with_kernel(entry.kernel().clone(), entry.layout(), &WL);
    sim.run(STEPS);
    (0..WL.n_cells).map(|c| sim.vm(c).to_bits()).collect()
}

fn cache_with_disk(disk: &Arc<DiskCache>) -> KernelCache {
    let cache = KernelCache::new();
    cache.set_disk_cache(Some(Arc::clone(disk)));
    cache
}

/// FNV-1a over the trajectory bits — one u64 that fits on the child
/// process's result line.
fn fnv_digest(bits: &[u64]) -> u64 {
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bits {
        for byte in b.to_le_bytes() {
            digest ^= u64::from(byte);
            digest = digest.wrapping_mul(0x0100_0000_01b3);
        }
    }
    digest
}

#[test]
fn disk_hit_matches_cold_compile_bit_exactly() {
    let _g = serialized();
    let dir = temp_cache_dir("roundtrip");
    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let m = model("HodgkinHuxley");

    // Cold compile populates the disk tier.
    let seeder = cache_with_disk(&disk);
    let cold = seeder.get_or_compile(&m, CONFIG);
    let s = seeder.stats();
    assert_eq!(s.misses, 1, "cold compile");
    assert_eq!(s.disk_writes, 1, "persisted");
    let cold_bits = trajectory_bits(&cold);

    // A fresh process-level cache (as a second process would have) must
    // be served from disk without compiling.
    let warm = cache_with_disk(&disk);
    let loaded = warm.get_or_compile(&m, CONFIG);
    let s = warm.stats();
    assert_eq!(s.disk_hits, 1, "served from the durable tier");
    assert_eq!(s.misses, 0, "zero cold compiles on the warm path");
    assert_eq!(
        loaded.pass_report().passes[0].name,
        "disk-load",
        "provenance: a loaded entry reports the synthetic disk-load pass"
    );
    assert_eq!(
        trajectory_bits(&loaded),
        cold_bits,
        "disk round-trip must be bit-identical to the cold compile"
    );

    // The uncached reference agrees too — the persisted kernel is the
    // real thing, not merely self-consistent.
    let mut reference = Simulation::new_uncached(&m, CONFIG, &WL);
    reference.run(STEPS);
    for (cell, &bits) in cold_bits.iter().enumerate() {
        assert_eq!(reference.vm(cell).to_bits(), bits, "cell {cell}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn each_disk_fault_degrades_to_recompile_and_self_heals() {
    let _g = serialized();
    let dir = temp_cache_dir("faults");
    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let m = model("BeelerReuter");

    let seeder = cache_with_disk(&disk);
    let reference_bits = trajectory_bits(&seeder.get_or_compile(&m, CONFIG));

    for spec in ["disk-corrupt@3", "disk-truncate@5", "disk-stale-version@1"] {
        faults::arm(spec).unwrap();
        let cache = cache_with_disk(&disk);
        let entry = cache.get_or_compile(&m, CONFIG);
        let s = cache.stats();
        assert_eq!(s.disk_rejects, 1, "{spec}: integrity check must reject");
        assert_eq!(s.misses, 1, "{spec}: rejection degrades to a cold compile");
        assert_eq!(
            s.disk_writes, 1,
            "{spec}: the recompile re-stores the entry"
        );
        let incident = cache
            .incidents()
            .iter()
            .find(|i| i.kind == IncidentKind::DiskCacheRejected)
            .cloned()
            .unwrap_or_else(|| panic!("{spec}: rejection must be recorded as an incident"));
        assert!(
            incident.detail.contains("recompiling"),
            "{spec}: incident names the degradation: {}",
            incident.detail
        );
        assert_eq!(
            trajectory_bits(&entry),
            reference_bits,
            "{spec}: degraded path must stay bit-identical"
        );
        faults::disarm_all();

        // Self-heal: the re-stored entry satisfies the next process
        // cleanly — no lingering rejected file, no recompile.
        let verify = cache_with_disk(&disk);
        verify.get_or_compile(&m, CONFIG);
        let s = verify.stats();
        assert_eq!(s.disk_hits, 1, "{spec}: healed entry serves a clean hit");
        assert_eq!(s.disk_rejects, 0, "{spec}: no repeat rejection");
        assert_eq!(s.misses, 0, "{spec}: no repeat compile");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_compilations_are_never_persisted() {
    let _g = serialized();
    let dir = temp_cache_dir("quarantine");
    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let m = model("BeelerReuter");

    faults::arm("verify-fail@9").unwrap();
    let cache = cache_with_disk(&disk);
    let err = cache
        .try_get_or_compile(&m, CONFIG)
        .expect_err("injected verify failure must quarantine");
    assert_eq!(err.model, "BeelerReuter");
    assert_eq!(cache.stats().quarantined, 1);

    // The negative result stays process-local: nothing reached disk.
    let status = disk.status().expect("readable cache dir");
    assert_eq!(status.entries, 0, "no entry file for a quarantined build");
    assert_eq!(disk.stats().writes, 0, "no store was even attempted");
    faults::disarm_all();

    // Sanity: with the fault spent, the same key compiles and persists —
    // so the empty dir above was the quarantine gate, not a broken store.
    let retry = cache_with_disk(&disk);
    retry.get_or_compile(&m, CONFIG);
    assert_eq!(disk.status().expect("readable").entries, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_threads_serialize_to_one_valid_entry() {
    let _g = serialized();
    let dir = temp_cache_dir("thread-race");
    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let m = model("HodgkinHuxley");

    // Two threads, each with its own process-level cache (so both miss
    // memory), race the same key into one shared disk tier. The store
    // path serializes on the lock file; whatever interleaving happens,
    // the durable outcome must be exactly one valid entry.
    let barrier = Arc::new(Barrier::new(2));
    let digests: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let disk = Arc::clone(&disk);
                let barrier = Arc::clone(&barrier);
                let m = &m;
                scope.spawn(move || {
                    let cache = cache_with_disk(&disk);
                    barrier.wait();
                    trajectory_bits(&cache.get_or_compile(m, CONFIG))
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert_eq!(
        digests[0], digests[1],
        "racing results must agree bit-exactly"
    );

    let status = disk.status().expect("readable cache dir");
    assert_eq!(status.entries, 1, "exactly one entry file per key");

    // And that one entry is valid: a fresh cache gets a clean disk hit
    // that reproduces the racers' trajectory.
    let verify = cache_with_disk(&disk);
    let entry = verify.get_or_compile(&m, CONFIG);
    let s = verify.stats();
    assert_eq!((s.disk_hits, s.disk_rejects, s.misses), (1, 0, 0), "{s:?}");
    assert_eq!(trajectory_bits(&entry), digests[0]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Env-gated worker for the multi-process tests: does nothing under a
/// normal `cargo test` run. When `LIMPET_PERSIST_CHILD_DIR` is set (by a
/// parent test re-executing this binary), it opens the shared cache dir,
/// acquires the kernel through a fresh cache, and prints one structured
/// result line for the parent to parse.
#[test]
fn child_process_disk_probe() {
    let Ok(dir) = std::env::var("LIMPET_PERSIST_CHILD_DIR") else {
        return;
    };
    let disk = Arc::new(DiskCache::open(Path::new(&dir)).expect("shared cache dir"));
    let cache = cache_with_disk(&disk);
    let m = model("HodgkinHuxley");
    let entry = cache.get_or_compile(&m, CONFIG);
    let digest = fnv_digest(&trajectory_bits(&entry));
    let s = cache.stats();
    let d = disk.stats();
    println!(
        "child-result digest={digest:016x} misses={} disk_hits={} stale_broken={} \
         lock_retries={}",
        s.misses, s.disk_hits, d.stale_locks_broken, d.lock_retries
    );
}

/// The parsed fields of one `child-result` line.
struct ChildResult {
    digest: u64,
    misses: u64,
    disk_hits: u64,
    stale_broken: u64,
}

/// Re-executes this test binary filtered down to the child probe above,
/// pointed at `dir`.
fn spawn_child(dir: &Path) -> std::process::Child {
    Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", "child_process_disk_probe", "--nocapture"])
        .env("LIMPET_PERSIST_CHILD_DIR", dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn child test process")
}

fn parse_child_result(child: std::process::Child) -> ChildResult {
    let out = child.wait_with_output().expect("child runs to completion");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child process failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Under --nocapture libtest prints its own "test ... " prefix on the
    // same line, so search for the marker anywhere, not at line start.
    let line = stdout
        .lines()
        .find_map(|l| l.split("child-result ").nth(1))
        .unwrap_or_else(|| panic!("no child-result line in:\n{stdout}"));
    let field = |key: &str| -> u64 {
        let tok = line
            .split_whitespace()
            .find_map(|t| t.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in '{line}'"));
        u64::from_str_radix(tok, 16)
            .or_else(|_| tok.parse())
            .unwrap_or_else(|_| panic!("bad {key} in '{line}'"))
    };
    ChildResult {
        digest: field("digest"),
        misses: field("misses"),
        disk_hits: field("disk_hits"),
        stale_broken: field("stale_broken"),
    }
}

#[test]
fn second_process_warm_run_has_zero_cold_compiles() {
    let _g = serialized();
    let dir = temp_cache_dir("second-process");
    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let m = model("HodgkinHuxley");

    // This process compiles cold and persists; the spawned process must
    // then reach the same kernel without a single compile.
    let seeder = cache_with_disk(&disk);
    let parent_digest = fnv_digest(&trajectory_bits(&seeder.get_or_compile(&m, CONFIG)));

    let child = parse_child_result(spawn_child(&dir));
    assert_eq!(child.misses, 0, "second process must not compile");
    assert_eq!(child.disk_hits, 1, "second process is served from disk");
    assert_eq!(child.digest, parent_digest, "cross-process bit-identity");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_processes_serialize_to_one_valid_entry() {
    let _g = serialized();
    let dir = temp_cache_dir("process-race");
    // Note: no seeding — both children start from an empty dir, so both
    // (very likely) compile cold and race their stores through the lock
    // file. Either interleaving is acceptable; the durable outcome isn't.
    let a = spawn_child(&dir);
    let b = spawn_child(&dir);
    let digest_a = parse_child_result(a).digest;
    let digest_b = parse_child_result(b).digest;
    assert_eq!(
        digest_a, digest_b,
        "racing processes must agree bit-exactly"
    );

    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let status = disk.status().expect("readable cache dir");
    assert_eq!(status.entries, 1, "exactly one entry file per key");

    // The surviving entry passes the full integrity ladder.
    let verify = cache_with_disk(&disk);
    let entry = verify.get_or_compile(&model("HodgkinHuxley"), CONFIG);
    let s = verify.stats();
    assert_eq!((s.disk_hits, s.disk_rejects, s.misses), (1, 0, 0), "{s:?}");
    assert_eq!(
        fnv_digest(&trajectory_bits(&entry)),
        digest_a,
        "survivor reproduces the racers' trajectory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_lock_from_crashed_process_is_broken_by_the_next() {
    let _g = serialized();
    let dir = temp_cache_dir("stale-lock");
    let disk = Arc::new(DiskCache::open(&dir).expect("temp cache dir"));
    let m = model("HodgkinHuxley");

    // First writer "crashes" while holding the directory lock: the
    // injected fault leaks the lock guard mid-store, so no entry lands
    // but the lock file stays behind — exactly what a killed process
    // leaves. The compile itself succeeds in memory, so we still get the
    // reference digest.
    faults::arm("lock-holder-crash@1").unwrap();
    let crashed = cache_with_disk(&disk);
    let parent_digest = fnv_digest(&trajectory_bits(&crashed.get_or_compile(&m, CONFIG)));
    faults::disarm_all();
    assert!(
        disk.lock_path().exists(),
        "crashed writer abandons its lock file"
    );
    assert_eq!(
        disk.status().expect("readable").entries,
        0,
        "the store died with the writer"
    );

    // Age the abandoned lock past the stale threshold — the moral
    // equivalent of waiting ten seconds, without the ten seconds.
    std::fs::OpenOptions::new()
        .write(true)
        .open(disk.lock_path())
        .and_then(|f| {
            f.set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(60))
        })
        .expect("backdate lock file");

    // A second process starting cold must break the stale lock, compile,
    // and persist — not hang waiting on a writer that no longer exists.
    let child = parse_child_result(spawn_child(&dir));
    assert_eq!(
        child.misses, 1,
        "nothing persisted; the child compiles cold"
    );
    assert!(
        child.stale_broken >= 1,
        "the child broke the abandoned lock"
    );
    assert_eq!(
        child.digest, parent_digest,
        "cross-process bit-identity survives the crash"
    );
    assert!(
        !disk.lock_path().exists(),
        "lock released after the child's store"
    );
    assert_eq!(
        disk.status().expect("readable").entries,
        1,
        "exactly one valid entry per key"
    );

    // And that entry is genuinely valid: a fresh cache is served a clean
    // disk hit that reproduces the crashed writer's trajectory.
    let verify = cache_with_disk(&disk);
    let entry = verify.get_or_compile(&m, CONFIG);
    let s = verify.stats();
    assert_eq!((s.disk_hits, s.disk_rejects, s.misses), (1, 0, 0), "{s:?}");
    assert_eq!(fnv_digest(&trajectory_bits(&entry)), parent_digest);
    let _ = std::fs::remove_dir_all(&dir);
}
