//! Health-guard policy tests: the same injected mid-run NaN under each
//! [`HealthPolicy`], proving `Abort` fails fast with a named incident,
//! `ClampAndWarn` keeps going with finite state, and `FallbackRaw`
//! resumes with a trajectory bit-identical to the reference pipeline.
//!
//! Fault plans are process-global; every test serializes on one mutex.

use limpet_harness::{
    faults, HealthPolicy, IncidentKind, PipelineKind, Simulation, Tier, Workload,
};
use limpet_models::model;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    faults::disarm_all();
    guard
}

const WL: Workload = Workload {
    n_cells: 8,
    steps: 0,
    dt: 0.01,
};
const SEED: u64 = 13;
const STEPS: usize = 50;

fn guarded(model_name: &str, policy: HealthPolicy) -> Simulation {
    faults::arm(&format!("state-nan@{SEED}")).unwrap();
    Simulation::new_resilient(&model(model_name), PipelineKind::Baseline, &WL, policy)
        .expect("healthy model compiles")
}

#[test]
fn abort_policy_fails_fast_with_named_incident() {
    let _g = serialized();
    let mut sim = guarded("BeelerReuter", HealthPolicy::Abort);
    let err = sim
        .run_guarded(STEPS)
        .expect_err("abort must surface the NaN");
    assert_eq!(err.kind, IncidentKind::NonFiniteState);
    assert_eq!(err.model, "BeelerReuter");
    assert_eq!(
        err.step,
        Some(faults::nan_step(SEED)),
        "fails at the injected step"
    );
    // The incident is also on the simulation's report, and no fallback
    // happened: the tier is unchanged.
    assert!(sim
        .incidents()
        .iter()
        .any(|i| i.kind == IncidentKind::NonFiniteState));
    assert_eq!(sim.tier(), Tier::Optimized);
    faults::disarm_all();
}

#[test]
fn clamp_policy_restores_and_continues() {
    let _g = serialized();
    let mut sim = guarded("BeelerReuter", HealthPolicy::ClampAndWarn);
    sim.run_guarded(STEPS).expect("clamping absorbs the NaN");
    assert_eq!(sim.tier(), Tier::Optimized, "clamping never changes tier");
    let incident = sim
        .incidents()
        .iter()
        .find(|i| i.kind == IncidentKind::NonFiniteState)
        .expect("clamp must be recorded");
    assert_eq!(incident.step, Some(faults::nan_step(SEED)));
    for cell in 0..WL.n_cells {
        assert!(sim.vm(cell).is_finite(), "cell {cell} not finite");
    }
    faults::disarm_all();
}

#[test]
fn fallback_policy_resumes_bit_identical_to_reference() {
    let _g = serialized();
    let mut sim = guarded("BeelerReuter", HealthPolicy::FallbackRaw);
    sim.run_guarded(STEPS).expect("fallback absorbs the NaN");
    assert_eq!(sim.tier(), Tier::Raw, "one rung down");

    // An unguarded reference run of the same workload: the rolled-back
    // retry must leave no trace in the numbers.
    let mut reference = Simulation::new(&model("BeelerReuter"), PipelineKind::Baseline, &WL);
    reference.run(STEPS);
    for cell in 0..WL.n_cells {
        assert_eq!(
            sim.vm(cell).to_bits(),
            reference.vm(cell).to_bits(),
            "cell {cell} diverged from the reference trajectory"
        );
        for var in ["V", "m", "h"] {
            if let (Some(a), Some(b)) = (sim.state_of(cell, var), reference.state_of(cell, var)) {
                assert_eq!(a.to_bits(), b.to_bits(), "state {var} of cell {cell}");
            }
        }
    }
    faults::disarm_all();
}

#[test]
fn unguarded_step_guarded_is_plain_stepping() {
    let _g = serialized();
    let m = model("Plonsey");
    let mut guarded = Simulation::new(&m, PipelineKind::Baseline, &WL);
    let mut plain = Simulation::new(&m, PipelineKind::Baseline, &WL);
    for _ in 0..20 {
        guarded.step_guarded().expect("no guard, no incidents");
        plain.step();
    }
    assert!(guarded.incidents().is_empty());
    for cell in 0..WL.n_cells {
        assert_eq!(guarded.vm(cell).to_bits(), plain.vm(cell).to_bits());
    }
    faults::disarm_all();
}
