//! Roster-wide differential test for the native execution tier: for
//! every ionic model, a simulation hot-swapped onto compiled C must
//! reproduce the bytecode tier's trajectory bit for bit — every state
//! variable and every external of every cell, after every tested step
//! count. This is the acceptance gate behind `BENCH_native_tier.json`:
//! the native tier is only a performance tier, never a numerics tier.
//!
//! Skips (with a note) on hosts without a C toolchain — the promotion
//! path itself degrades to bytecode there, which `fault_injection.rs`
//! and the `harness::native` unit tests cover.

use limpet_harness::{KernelCache, PipelineKind, Simulation, Stimulus, Tier, Workload};
use limpet_models::ROSTER;

const CELLS: usize = 7;
const STEPS: usize = 120;

fn stim() -> Stimulus {
    Stimulus {
        period: 0.5,
        duration: 0.1,
        amplitude: 40.0,
    }
}

/// Full-state bit-identity, native vs. bytecode, across the roster.
///
/// The width-1 scalar pipeline is the only promotion-eligible config;
/// both twins run under a stimulus so the trajectories exercise the
/// models' upstroke dynamics, not just their resting fixed point.
#[test]
fn native_tier_is_bit_identical_across_roster() {
    if !limpet_harness::toolchain_available() {
        eprintln!("skipping: no C toolchain on this host");
        return;
    }
    let cache = KernelCache::global();
    let wl = Workload {
        n_cells: CELLS,
        steps: 0,
        dt: 0.01,
    };
    let mut promoted = 0usize;
    for entry in &ROSTER {
        let m = limpet_models::model(entry.name);
        let mut bytecode = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let mut native = Simulation::new(&m, PipelineKind::Baseline, &wl);
        bytecode.set_stimulus(stim());
        native.set_stimulus(stim());
        native
            .promote_native_blocking(cache)
            .unwrap_or_else(|e| panic!("{}: native promotion failed: {e}", entry.name));
        assert_eq!(native.tier(), Tier::Native, "{}", entry.name);
        assert_eq!(bytecode.tier(), Tier::Optimized, "{}", entry.name);
        promoted += 1;
        // Compare at several horizons so a divergence that later cancels
        // (or saturates) cannot hide at the final step.
        let mut done = 0usize;
        for horizon in [1usize, STEPS / 2, STEPS] {
            bytecode.run(horizon - done);
            native.run(horizon - done);
            done = horizon;
            assert_eq!(
                bytecode.state_bits(),
                native.state_bits(),
                "{}: native trajectory diverged from bytecode at step {horizon}",
                entry.name
            );
        }
        assert!(
            (bytecode.time() - native.time()).abs() < f64::EPSILON,
            "{}: clocks diverged",
            entry.name
        );
    }
    assert_eq!(promoted, ROSTER.len(), "every roster model must promote");
}

/// The ineligible configs (vectorized, AoSoA) must refuse promotion and
/// keep running on bytecode rather than producing a wrong-layout native
/// kernel.
#[test]
fn vectorized_configs_never_promote() {
    let cache = KernelCache::global();
    let wl = Workload {
        n_cells: CELLS,
        steps: 0,
        dt: 0.01,
    };
    let m = limpet_models::model("AlievPanfilov");
    let mut sim = Simulation::new(
        &m,
        PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512),
        &wl,
    );
    let err = sim
        .promote_native_blocking(cache)
        .expect_err("vectorized config must be ineligible");
    assert!(err.contains("eligible"), "unexpected reason: {err}");
    assert_eq!(sim.tier(), Tier::Optimized);
    sim.run(4); // still runs fine on bytecode
}
