//! Roster-wide acceptance gate for durable mid-trajectory checkpoints:
//! a run interrupted at any step boundary and resumed from its snapshot
//! must finish **bit-identical** to the uninterrupted run — every state
//! variable and external of every cell, and the sim clock. Covered here:
//!
//! * every roster model × every SIMD width (scalar / AVX2 / AVX-512),
//!   interrupted at a per-model pseudo-random boundary, round-tripped
//!   through a real on-disk [`SnapshotStore`] (not just the in-memory
//!   codec);
//! * sharded pools: a 4-thread snapshot resumed into both 1- and
//!   4-thread pools (snapshots are logical-cells-only, so thread count
//!   is a free parameter of resume);
//! * the native tier, when a C toolchain is present — the snapshot
//!   records the tier and resume re-promotes;
//! * the three seeded checkpoint faults (`ckpt-torn`, `ckpt-corrupt`,
//!   `ckpt-stale-version`): each rejects the current snapshot, self-heals
//!   the store, falls back to the previous rotation, and still finishes
//!   bit-identical (the previous snapshot is just an earlier boundary of
//!   the same trajectory).
//!
//! Fault plans are process-global, so every test here serializes on one
//! mutex and disarms before its scenario (the sharded test too: armed
//! plans flip `ShardedSimulation::new` onto its resilient path).

use std::path::PathBuf;
use std::sync::Mutex;

use limpet_harness::{
    faults, HealthPolicy, KernelCache, PipelineKind, RejectReason, ShardedSimulation, Simulation,
    SnapshotStore, Stimulus, Tier, Workload,
};
use limpet_models::{model, ROSTER};

const CELLS: usize = 7;
const STEPS: usize = 96;

static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    faults::disarm_all();
    guard
}

fn wl() -> Workload {
    Workload {
        n_cells: CELLS,
        steps: 0,
        dt: 0.01,
    }
}

fn stim() -> Stimulus {
    Stimulus {
        period: 0.5,
        duration: 0.1,
        amplitude: 40.0,
    }
}

/// Per-model "randomized" interruption boundary: FNV-1a of the model
/// name mapped into `1..STEPS-1`, so every model is cut at a different
/// step but reruns are reproducible.
fn boundary(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % (STEPS as u64 - 2)) as usize + 1
}

/// Fresh on-disk store under a collision-proof temp dir; the caller
/// removes the dir when done.
fn tmp_store(tag: &str) -> (PathBuf, SnapshotStore) {
    let dir = std::env::temp_dir().join(format!(
        "limpet-ckpt-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::new(&dir).expect("create snapshot store");
    (dir, store)
}

fn guarded(m: &limpet_easyml::Model, config: PipelineKind) -> Simulation {
    let mut sim = Simulation::new_resilient(m, config, &wl(), HealthPolicy::Abort)
        .unwrap_or_else(|q| panic!("model '{}' quarantined on every tier: {}", q.model, q.error));
    sim.set_stimulus(stim());
    sim
}

/// Every roster model × every SIMD width: interrupt at a per-model
/// boundary, persist the snapshot through a real store (atomic write +
/// checksum verify on load), resume, and demand full-state and clock
/// bit-identity with the uninterrupted twin.
#[test]
fn resume_is_bit_identical_across_roster_and_widths() {
    let _g = serialized();
    let (dir, store) = tmp_store("widths");
    let configs = [
        PipelineKind::Baseline,
        PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx2),
        PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512),
    ];
    for entry in &ROSTER {
        let m = model(entry.name);
        let k = boundary(entry.name);
        for config in configs {
            let mut clean = guarded(&m, config);
            clean
                .run_guarded(STEPS)
                .unwrap_or_else(|i| panic!("{}: clean run unhealthy: {i:?}", entry.name));
            let clean_bits = clean.state_bits();
            let clean_t = clean.time().to_bits();

            let mut first = guarded(&m, config);
            first
                .run_guarded(k)
                .unwrap_or_else(|i| panic!("{}: first leg unhealthy: {i:?}", entry.name));
            let snap = first.snapshot(&config.label(), k as u64);
            let key = format!("{}-{}", entry.name, config.label());
            store.save(&key, &snap).expect("save snapshot");
            let out = store.load(&key);
            assert!(out.rejects.is_empty(), "{key}: clean store must not reject");
            assert!(!out.from_previous, "{key}: current rotation must load");
            let snap = out.snapshot.expect("durable round-trip");

            let mut resumed =
                Simulation::resume_from(&m, config, &wl(), HealthPolicy::Abort, &snap)
                    .unwrap_or_else(|e| panic!("{key}: resume failed: {e}"));
            resumed.set_stimulus(stim());
            assert_eq!(
                resumed.guarded_steps(),
                k,
                "{key}: step counter must survive"
            );
            resumed
                .run_guarded(STEPS - k)
                .unwrap_or_else(|i| panic!("{key}: resumed leg unhealthy: {i:?}"));
            assert_eq!(
                resumed.state_bits(),
                clean_bits,
                "{key}: resumed trajectory diverged (interrupted at step {k})"
            );
            assert_eq!(resumed.time().to_bits(), clean_t, "{key}: clocks diverged");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharded pools across the roster: a snapshot written by a 4-thread
/// pool at a chunk boundary resumes into 1- and 4-thread pools, both
/// finishing bit-identical to an uninterrupted single-`Simulation` run.
/// (Pools carry no stimulus, so the reference twin runs without one.)
#[test]
fn sharded_resume_is_thread_count_independent_across_roster() {
    let _g = serialized();
    let (dir, store) = tmp_store("sharded");
    let config = PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512);
    for entry in &ROSTER {
        let m = model(entry.name);
        let k = boundary(entry.name);

        let mut clean = Simulation::new(&m, config, &wl());
        clean.run(STEPS);
        let clean_bits = clean.state_bits();

        let mut writer = ShardedSimulation::new(&m, config, &wl(), 4);
        writer.run_threaded(k);
        let snap = writer.snapshot(&config.label(), k as u64);
        assert_eq!(snap.shards.len(), writer.threads(), "{}", entry.name);
        store.save(entry.name, &snap).expect("save snapshot");
        let snap = store.load(entry.name).snapshot.expect("durable round-trip");

        for threads in [1usize, 4] {
            let mut resumed = ShardedSimulation::resume_from(&m, config, &wl(), threads, &snap)
                .unwrap_or_else(|e| panic!("{}: T={threads} resume failed: {e}", entry.name));
            resumed.run_threaded(STEPS - k);
            assert_eq!(
                resumed.state_bits(),
                clean_bits,
                "{}: T=4 snapshot resumed at T={threads} diverged (cut at step {k})",
                entry.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The native tier across the roster: the snapshot records `tier native`,
/// resume re-promotes, and the resumed native trajectory stays
/// bit-identical to the uninterrupted native run. Skips (with a note)
/// on hosts without a C toolchain.
#[test]
fn native_resume_is_bit_identical_across_roster() {
    if !limpet_harness::toolchain_available() {
        eprintln!("skipping: no C toolchain on this host");
        return;
    }
    let _g = serialized();
    let cache = KernelCache::global();
    let (dir, store) = tmp_store("native");
    let config = PipelineKind::Baseline;
    for entry in &ROSTER {
        let m = model(entry.name);
        let k = boundary(entry.name);

        let mut clean = Simulation::new(&m, config, &wl());
        clean.set_stimulus(stim());
        clean
            .promote_native_blocking(cache)
            .unwrap_or_else(|e| panic!("{}: promotion failed: {e}", entry.name));
        clean.run(STEPS);
        let clean_bits = clean.state_bits();

        let mut first = Simulation::new(&m, config, &wl());
        first.set_stimulus(stim());
        first
            .promote_native_blocking(cache)
            .unwrap_or_else(|e| panic!("{}: promotion failed: {e}", entry.name));
        first.run(k);
        let snap = first.snapshot(&config.label(), k as u64);
        assert_eq!(snap.tier, Tier::Native.to_string(), "{}", entry.name);
        store.save(entry.name, &snap).expect("save snapshot");
        let snap = store.load(entry.name).snapshot.expect("durable round-trip");

        let mut resumed = Simulation::resume_from(&m, config, &wl(), HealthPolicy::Abort, &snap)
            .unwrap_or_else(|e| panic!("{}: resume failed: {e}", entry.name));
        assert_eq!(
            resumed.tier(),
            Tier::Native,
            "{}: resume must re-promote a native snapshot",
            entry.name
        );
        resumed.set_stimulus(stim());
        resumed.run(STEPS - k);
        assert_eq!(
            resumed.state_bits(),
            clean_bits,
            "{}: resumed native trajectory diverged (cut at step {k})",
            entry.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// All three checkpoint fault kinds: the injected damage rejects the
/// current snapshot (on the expected ladder rung), the store self-heals
/// (damaged file removed, reject counted), resume falls back to the
/// previous rotation, and the finished trajectory is still bit-identical
/// — a resume from an *earlier* boundary of the same trajectory loses
/// wall-clock, never bits.
#[test]
fn ckpt_faults_self_heal_and_fall_back_to_previous_rotation() {
    let _g = serialized();
    let m = model("HodgkinHuxley");
    let config = PipelineKind::Baseline;
    let (k1, k2) = (24usize, 48usize);

    let mut clean = guarded(&m, config);
    clean.run_guarded(STEPS).expect("clean run healthy");
    let clean_bits = clean.state_bits();

    // `ckpt-torn` truncates at a seeded offset, which can land inside
    // the header — so its rung is torn-tail *or* bad-header; the other
    // two target one rung exactly.
    let scenarios: [(&str, &[RejectReason]); 3] = [
        (
            "ckpt-torn@7",
            &[RejectReason::TornTail, RejectReason::BadHeader],
        ),
        ("ckpt-corrupt@11", &[RejectReason::ChecksumMismatch]),
        ("ckpt-stale-version@3", &[RejectReason::StaleVersion]),
    ];
    for (spec, rungs) in scenarios {
        let (dir, store) = tmp_store(spec.split('@').next().unwrap());
        let mut sim = guarded(&m, config);
        sim.run_guarded(k1).expect("healthy");
        store
            .save("job", &sim.snapshot(&config.label(), k1 as u64))
            .expect("save first");
        sim.run_guarded(k2 - k1).expect("healthy");
        store
            .save("job", &sim.snapshot(&config.label(), k2 as u64))
            .expect("save second"); // rotates: prev = step 24, current = step 48

        faults::arm(spec).unwrap();
        let out = store.load("job");
        assert_eq!(out.rejects.len(), 1, "{spec}: current must be rejected");
        let reason = out.rejects[0].1;
        assert!(
            rungs.contains(&reason),
            "{spec}: rejected on rung {reason:?}, expected one of {rungs:?}"
        );
        assert!(
            !store.path_for("job").exists(),
            "{spec}: damaged current snapshot must be removed (self-heal)"
        );
        assert!(out.from_previous, "{spec}: must fall back to previous");
        let snap = out.snapshot.expect("previous rotation survives");
        assert_eq!(snap.steps_done, k1 as u64, "{spec}");

        let mut resumed = Simulation::resume_from(&m, config, &wl(), HealthPolicy::Abort, &snap)
            .unwrap_or_else(|e| panic!("{spec}: resume failed: {e}"));
        resumed.set_stimulus(stim());
        resumed
            .run_guarded(STEPS - k1)
            .unwrap_or_else(|i| panic!("{spec}: resumed leg unhealthy: {i:?}"));
        assert_eq!(
            resumed.state_bits(),
            clean_bits,
            "{spec}: fallback resume diverged"
        );
        let stats = store.stats();
        assert!(
            stats.rejected_total() >= 1,
            "{spec}: reject must be counted"
        );
        assert_eq!(stats.loaded_previous, 1, "{spec}");
        assert_eq!(stats.fell_to_zero, 0, "{spec}");
        faults::disarm_all();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
