//! Real-thread differential gate: the persistent worker pool must be
//! bit-identical to the single-thread driver — full state vector of every
//! cell, not just a probe voltage — for every roster model at T ∈
//! {2, 4, 8}, across uneven shard shapes, and while the fault-injection
//! framework is degrading kernels underneath it.
//!
//! Fault plans are process-global, so the injected scenarios serialize on
//! one mutex and disarm all plans around themselves (same idiom as
//! `fault_injection.rs`). They also use (model, config) pairs no other
//! scenario in this binary touches, because quarantine entries live in
//! the process-global kernel cache.

use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::{
    faults, HealthPolicy, KernelCache, PipelineKind, ShardedSimulation, Simulation, Workload,
};
use limpet_models::{model, ROSTER};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    faults::disarm_all();
    guard
}

/// Runs `steps` on a fresh single-thread driver and on a fresh pool of
/// `threads` workers, returning both full-state bit vectors.
fn run_pair(
    name: &str,
    config: PipelineKind,
    n_cells: usize,
    threads: usize,
    steps: usize,
) -> (Vec<u64>, Vec<u64>) {
    let m = model(name);
    let wl = Workload {
        n_cells,
        steps: 0,
        dt: 0.01,
    };
    let mut single = Simulation::new(&m, config, &wl);
    for _ in 0..steps {
        single.step();
    }
    let mut sharded = ShardedSimulation::new(&m, config, &wl, threads);
    sharded.run_threaded(steps);
    (single.state_bits(), sharded.state_bits())
}

/// The headline gate: every roster model, T ∈ {2, 4, 8}, full state
/// vector bit-identical between the pool and the single-thread driver.
#[test]
fn roster_wide_pool_matches_single_thread_bit_exactly() {
    let _g = serialized();
    let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
    let wl = Workload {
        n_cells: 24,
        steps: 0,
        dt: 0.01,
    };
    for e in &ROSTER {
        let m = model(e.name);
        let mut single = Simulation::new(&m, config, &wl);
        for _ in 0..25 {
            single.step();
        }
        let reference = single.state_bits();
        for threads in [2usize, 4, 8] {
            let mut sharded = ShardedSimulation::new(&m, config, &wl, threads);
            sharded.run_threaded(25);
            assert_eq!(
                reference,
                sharded.state_bits(),
                "{} diverged at T={threads} (full state vector)",
                e.name
            );
        }
    }
}

/// Uneven shapes: cell counts that don't divide the thread count, fewer
/// cells than threads, and every vector width (chunk padding differs per
/// width, so the shard boundaries land differently each time).
#[test]
fn uneven_shard_shapes_stay_bit_identical() {
    let _g = serialized();
    for config in [
        PipelineKind::Baseline,
        PipelineKind::LimpetMlir(VectorIsa::Sse),
        PipelineKind::LimpetMlir(VectorIsa::Avx2),
        PipelineKind::LimpetMlir(VectorIsa::Avx512),
    ] {
        for (n_cells, threads) in [(61, 4), (13, 8), (7, 3), (3, 8), (1, 4)] {
            let (single, sharded) = run_pair("BeelerReuter", config, n_cells, threads, 30);
            assert_eq!(
                single,
                sharded,
                "{} cells / {} threads diverged under {}",
                n_cells,
                threads,
                config.label()
            );
        }
    }
}

/// Under an injected verifier fault, every shard must degrade through the
/// same quarantine entry (the resilient lookup is deterministic per
/// (model, config)), so the pool still matches a resilient single-thread
/// run bit for bit. Courtemanche + AVX2 is used by no other scenario in
/// this binary — the quarantine it leaves in the global cache cannot
/// leak into the clean differential tests above.
#[test]
fn pool_matches_single_under_injected_verify_fault() {
    let _g = serialized();
    let m = model("Courtemanche");
    let config = PipelineKind::LimpetMlir(VectorIsa::Avx2);
    let wl = Workload {
        n_cells: 22,
        steps: 0,
        dt: 0.01,
    };

    faults::arm("verify-fail@9").unwrap();
    let mut sharded = ShardedSimulation::new(&m, config, &wl, 4);
    sharded.run_threaded(25);
    assert!(
        KernelCache::global()
            .quarantine()
            .iter()
            .any(|q| q.model == "Courtemanche"),
        "injected fault must quarantine the kernel"
    );

    let mut single = Simulation::new_resilient(&m, config, &wl, HealthPolicy::Abort)
        .expect("reference fallback must succeed");
    for _ in 0..25 {
        single.step();
    }
    assert_eq!(
        single.state_bits(),
        sharded.state_bits(),
        "fault-degraded pool diverged from resilient single-thread driver"
    );
    faults::disarm_all();
}

/// Same differential under a bytecode-corruption fault, on its own
/// (model, config) key (NygrenFiset + SSE).
#[test]
fn pool_matches_single_under_injected_bytecode_corruption() {
    let _g = serialized();
    let m = model("NygrenFiset");
    let config = PipelineKind::LimpetMlir(VectorIsa::Sse);
    let wl = Workload {
        n_cells: 19,
        steps: 0,
        dt: 0.01,
    };

    faults::arm("bytecode-corrupt@7").unwrap();
    let mut sharded = ShardedSimulation::new(&m, config, &wl, 3);
    sharded.run_threaded(25);

    let mut single = Simulation::new_resilient(&m, config, &wl, HealthPolicy::Abort)
        .expect("degraded tier must still run");
    for _ in 0..25 {
        single.step();
    }
    assert_eq!(
        single.state_bits(),
        sharded.state_bits(),
        "fault-degraded pool diverged from resilient single-thread driver"
    );
    faults::disarm_all();
}

/// Pool reuse across thread counts: the same workload re-run on pools of
/// every size lands on the same bits (shard count is not observable).
#[test]
fn every_pool_size_produces_identical_bits() {
    let _g = serialized();
    let m = model("HodgkinHuxley");
    let wl = Workload {
        n_cells: 24,
        steps: 0,
        dt: 0.01,
    };
    let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
    let reference = {
        let mut sharded = ShardedSimulation::new(&m, config, &wl, 2);
        sharded.run_threaded(40);
        sharded.state_bits()
    };
    for threads in [3usize, 4, 5, 8] {
        let mut sharded = ShardedSimulation::new(&m, config, &wl, threads);
        sharded.run_threaded(40);
        assert_eq!(
            reference,
            sharded.state_bits(),
            "T={threads} disagrees with T=2"
        );
    }
}
