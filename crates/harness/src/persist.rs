//! The durable tier of the kernel cache: checksummed on-disk entries,
//! multi-process locking, LRU eviction, and the resumable-sweep journal.
//!
//! [`crate::KernelCache`] is process-lifetime only — every `figures`
//! invocation used to recompile the full roster from scratch. [`DiskCache`]
//! persists each compiled kernel through the textual round-trips the
//! compiler already owns (IR via [`limpet_ir::print_module`], bytecode and
//! LUTs via [`limpet_vm::serialize_program`] / [`limpet_vm::serialize_luts`])
//! so a later process can reload the *identical* compilation and produce
//! bit-identical trajectories.
//!
//! Crash-safety and integrity rules, in order of enforcement on load:
//!
//! 1. **Atomic writes** — entries are written to a temp file and renamed
//!    into place, so readers never observe a half-written entry under the
//!    final name.
//! 2. **Version stamps** — every entry header embeds the entry format
//!    version, [`limpet_ir::TEXT_FORMAT_VERSION`], and
//!    [`limpet_vm::BYTECODE_FORMAT_VERSION`]. Any mismatch means "stale:
//!    recompile", never "try to parse anyway".
//! 3. **Key echo** — the header repeats the fingerprint/pipeline/opt key,
//!    so a renamed or mislabelled file cannot serve the wrong kernel.
//! 4. **Length + checksum** — the header carries the payload byte length
//!    and an FNV-1a checksum over it; truncation and bit-rot are caught
//!    before any parser runs.
//! 5. **Full re-parse + verify** — the IR is re-verified and the bytecode
//!    re-validated on load, so even a checksum collision cannot smuggle in
//!    a malformed kernel.
//!
//! Every rejection degrades to a recompile (reported via
//! [`DiskLoad::Rejected`], which the cache records as an incident) — a
//! corrupt cache can cost time, never correctness. The
//! [`crate::FaultKind::DiskCorrupt`] / `DiskTruncate` / `DiskStaleVersion`
//! injection points mutate the loaded bytes so the real integrity checks,
//! not mocks, exercise those paths.

use crate::cache::{model_fingerprint, CompiledKernel};
use crate::faults::{self, FaultKind};
use crate::sim::{model_info, storage_layout, PipelineKind};
use limpet_easyml::Model;
use limpet_rng::SmallRng;
use limpet_vm::Kernel;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

/// Version of the on-disk entry envelope (header + section framing). Bump
/// on any layout change; old entries are then rejected as stale and
/// recompiled rather than misparsed.
pub const ENTRY_FORMAT_VERSION: u32 = 1;

/// First token of every entry file; anything else is not ours.
const MAGIC: &str = "limpet-kernel-cache";

/// Version of the native shared-object container envelope.
pub const NATIVE_CONTAINER_VERSION: u32 = 1;

/// First token of every native container file.
const NATIVE_MAGIC: &str = "limpet-native-cache";

/// Default size cap: 512 MiB, far above a full-roster footprint, so
/// eviction only triggers when a user points many big runs at one dir.
pub const DEFAULT_CAP_BYTES: u64 = 512 * 1024 * 1024;

/// A lock file older than this is considered abandoned by a crashed
/// process and is broken (removed) by the next writer. Overridable per
/// cache with [`DiskCache::set_stale_lock_after`] (tests and chaos runs
/// shrink it).
const STALE_LOCK_AFTER: Duration = Duration::from_secs(10);

/// First backoff delay while waiting for the directory lock; doubles per
/// retry (with deterministic jitter) up to [`LOCK_BACKOFF_CAP`].
const LOCK_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Ceiling on the per-retry lock backoff delay.
const LOCK_BACKOFF_CAP: Duration = Duration::from_millis(32);

/// The identity of one persisted compilation: the same triple that keys
/// the in-memory map, spelled out so it can be embedded in (and checked
/// against) the entry header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryKey {
    /// [`model_fingerprint`] of the checked model.
    pub fingerprint: u64,
    /// The pipeline configuration.
    pub config: PipelineKind,
    /// The bytecode-optimizer toggle the kernel was compiled under.
    pub opt: bool,
}

impl EntryKey {
    /// The key for `model` under `config` with the bytecode-opt toggle
    /// `opt`.
    pub fn new(model: &Model, config: PipelineKind, opt: bool) -> EntryKey {
        EntryKey {
            fingerprint: model_fingerprint(model),
            config,
            opt,
        }
    }

    /// The entry's file name inside the cache directory. The format
    /// version is deliberately *not* part of the name: a newer reader must
    /// find (and reject in-header) a stale entry, not silently shadow it.
    pub fn file_name(&self) -> String {
        format!(
            "entry-{:016x}-{}-{}.lke",
            self.fingerprint,
            self.config.label(),
            u8::from(self.opt)
        )
    }
}

/// The file name of a persisted native shared object, keyed by the
/// emitted-C content fingerprint ([`crate::native::native_fingerprint`]).
/// Like [`EntryKey::file_name`], versions live in the header, not the
/// name, so a newer reader rejects stale containers instead of
/// shadowing them.
pub fn native_file_name(fingerprint: u64) -> String {
    format!("native-{fingerprint:016x}.lso")
}

/// Outcome of a [`DiskCache::load_native`].
#[derive(Debug)]
pub enum NativeDiskLoad {
    /// The container passed every envelope check; the payload is the
    /// shared object's bytes. The caller must still `dlopen` and
    /// probation-validate them — the envelope proves integrity, not
    /// correctness.
    Hit(Vec<u8>),
    /// No container exists for the fingerprint.
    Miss,
    /// A container exists but failed an envelope check and should be
    /// removed and recompiled.
    Rejected(String),
}

/// Outcome of a [`DiskCache::load`].
#[derive(Debug)]
pub enum DiskLoad {
    /// The entry was present, passed every integrity check, and
    /// reconstructed into a runnable compilation.
    Hit(Box<CompiledKernel>),
    /// No entry exists for the key (the ordinary cold-start case).
    Miss,
    /// An entry exists but failed an integrity check (corruption,
    /// truncation, stale version, unparseable payload) and was discarded.
    /// The caller recompiles and should record the reason as an incident.
    Rejected(String),
}

/// Monotonic counters for the disk tier (mirrors
/// [`crate::CacheStats`] for the in-memory tier).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Loads that reconstructed a kernel from disk.
    pub hits: u64,
    /// Loads that found an entry and rejected it.
    pub rejects: u64,
    /// Entries successfully written.
    pub writes: u64,
    /// Entries removed by the LRU size-cap sweep.
    pub evictions: u64,
    /// Stale (crashed-writer) lock files broken.
    pub stale_locks_broken: u64,
    /// Backoff retries spent waiting for the directory lock (each retry
    /// is one jittered exponential-backoff sleep under contention).
    pub lock_retries: u64,
}

/// A point-in-time scan of the cache directory (the `figures --cache stat`
/// report).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskCacheStatus {
    /// Entry files present.
    pub entries: usize,
    /// Their total size in bytes.
    pub bytes: u64,
    /// The configured size cap in bytes.
    pub cap_bytes: u64,
}

impl DiskCacheStatus {
    /// The scan as one compact JSON object, for `figures --cache stat
    /// --json` and the service daemon's `stats` verb.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"entries\":{},\"bytes\":{},\"cap_bytes\":{}}}",
            self.entries, self.bytes, self.cap_bytes
        )
    }
}

/// The cache directory honoring `LIMPET_CACHE_DIR`, defaulting to
/// `~/.cache/limpet-rs` (falling back to a temp-dir path when `HOME` is
/// unset, e.g. in minimal CI containers).
pub fn default_cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("LIMPET_CACHE_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    match std::env::var("HOME") {
        Ok(home) if !home.is_empty() => Path::new(&home).join(".cache").join("limpet-rs"),
        _ => std::env::temp_dir().join("limpet-rs-cache"),
    }
}

/// FNV-1a over raw bytes — same constants as [`model_fingerprint`], kept
/// dependency-free on purpose (the checksum guards against accidents, not
/// adversaries).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Held while mutating the cache directory (store / evict / clear).
/// Readers do not take it: writes are atomic renames, so a reader either
/// sees the old complete entry or the new complete entry.
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// The durable kernel-cache tier: one checksummed file per
/// `(fingerprint, pipeline, opt)` key under `dir`.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    cap_bytes: AtomicU64,
    lock_timeout_ms: AtomicU64,
    stale_lock_after_ms: AtomicU64,
    hits: AtomicU64,
    rejects: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    stale_locks_broken: AtomicU64,
    lock_retries: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a disk cache rooted at `dir`, with the
    /// size cap from `LIMPET_CACHE_CAP_MB` when set, else
    /// [`DEFAULT_CAP_BYTES`].
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created.
    pub fn open(dir: &Path) -> io::Result<DiskCache> {
        fs::create_dir_all(dir)?;
        let cap = std::env::var("LIMPET_CACHE_CAP_MB")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|mb| mb.saturating_mul(1024 * 1024))
            .unwrap_or(DEFAULT_CAP_BYTES);
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            cap_bytes: AtomicU64::new(cap),
            lock_timeout_ms: AtomicU64::new(5_000),
            stale_lock_after_ms: AtomicU64::new(STALE_LOCK_AFTER.as_millis() as u64),
            hits: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_locks_broken: AtomicU64::new(0),
            lock_retries: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Overrides the size cap (bytes). `0` evicts everything but the
    /// entry just written.
    pub fn set_cap_bytes(&self, cap: u64) {
        self.cap_bytes.store(cap, Ordering::Relaxed);
    }

    /// The current size cap in bytes.
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes.load(Ordering::Relaxed)
    }

    /// Overrides how long a writer waits for the directory lock before
    /// degrading (skipping its store). Tests shrink this.
    pub fn set_lock_timeout(&self, timeout: Duration) {
        self.lock_timeout_ms
            .store(timeout.as_millis() as u64, Ordering::Relaxed);
    }

    /// Overrides how old a lock file must be before it is treated as
    /// abandoned by a crashed writer and broken. Tests and chaos runs
    /// shrink this so lock-holder-crash recovery is fast to exercise.
    pub fn set_stale_lock_after(&self, age: Duration) {
        self.stale_lock_after_ms
            .store(age.as_millis() as u64, Ordering::Relaxed);
    }

    /// The lock-file path guarding directory mutation — exposed so tests
    /// can simulate a crashed writer.
    pub fn lock_path(&self) -> PathBuf {
        self.dir.join("lock")
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_locks_broken: self.stale_locks_broken.load(Ordering::Relaxed),
            lock_retries: self.lock_retries.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: &EntryKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    fn entry_files(&self) -> io::Result<Vec<(PathBuf, u64, SystemTime)>> {
        let mut out = Vec::new();
        for item in fs::read_dir(&self.dir)? {
            let item = item?;
            let name = item.file_name();
            let is_entry = name.to_str().is_some_and(|n| {
                (n.starts_with("entry-") && n.ends_with(".lke"))
                    || (n.starts_with("native-") && n.ends_with(".lso"))
            });
            if !is_entry {
                continue;
            }
            let meta = item.metadata()?;
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            out.push((item.path(), meta.len(), mtime));
        }
        Ok(out)
    }

    /// Scans the directory for the `--cache stat` report.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk I/O errors.
    pub fn status(&self) -> io::Result<DiskCacheStatus> {
        let files = self.entry_files()?;
        Ok(DiskCacheStatus {
            entries: files.len(),
            bytes: files.iter().map(|(_, len, _)| len).sum(),
            cap_bytes: self.cap_bytes(),
        })
    }

    /// Removes every entry file (the `--cache clear` verb), returning how
    /// many were removed. Takes the directory lock.
    ///
    /// # Errors
    ///
    /// Returns a description on lock timeout or removal failure.
    pub fn clear(&self) -> Result<usize, String> {
        let _lock = self.acquire_lock()?;
        let files = self
            .entry_files()
            .map_err(|e| format!("cannot scan cache dir: {e}"))?;
        let mut removed = 0;
        for (path, _, _) in files {
            fs::remove_file(&path).map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Takes the directory lock with bounded exponential backoff:
    /// contention sleeps `1ms · 2^attempt` (capped at 32 ms) with
    /// deterministic jitter from [`crate::deadline::backoff_delay`]
    /// (seeded by pid and lock path, so a chaos run's delay schedule is
    /// reproducible), counting each sleep in
    /// [`DiskStats::lock_retries`]. Locks abandoned by a crashed writer
    /// (older than [`DiskCache::set_stale_lock_after`]) are broken.
    fn acquire_lock(&self) -> Result<DirLock, String> {
        let path = self.lock_path();
        let timeout = Duration::from_millis(self.lock_timeout_ms.load(Ordering::Relaxed));
        let stale_after = Duration::from_millis(self.stale_lock_after_ms.load(Ordering::Relaxed));
        let deadline = Instant::now() + timeout;
        let jitter_seed = u64::from(std::process::id()) ^ fnv64(path.to_string_lossy().as_bytes());
        let mut attempt: u32 = 0;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    let lock = DirLock { path };
                    if faults::take(FaultKind::LockHolderCrash).is_some() {
                        // Simulate a writer that died while holding the
                        // lock: leak the guard so its Drop never removes
                        // the file, and fail the mutation the way a crash
                        // would. Contenders must back off until the lock
                        // ages past the stale threshold, then break it.
                        std::mem::forget(lock);
                        return Err("injected lock-holder crash: lock file abandoned while held"
                            .to_string());
                    }
                    return Ok(lock);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    // Break locks abandoned by a crashed writer.
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
                        .is_some_and(|age| age > stale_after);
                    if stale && fs::remove_file(&path).is_ok() {
                        self.stale_locks_broken.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "timed out waiting for cache lock {} after {attempt} backoff \
                             retries (held by another process?)",
                            path.display()
                        ));
                    }
                    self.lock_retries.fetch_add(1, Ordering::Relaxed);
                    let delay = crate::deadline::backoff_delay(
                        attempt,
                        LOCK_BACKOFF_BASE,
                        LOCK_BACKOFF_CAP,
                        jitter_seed,
                    )
                    .min(deadline.saturating_duration_since(Instant::now()));
                    std::thread::sleep(delay);
                    attempt = attempt.saturating_add(1);
                }
                Err(e) => return Err(format!("cannot create cache lock: {e}")),
            }
        }
    }

    /// Persists a compiled entry for `key`, atomically (temp file +
    /// rename) and under the directory lock, then enforces the size cap.
    /// Quarantined compilations must never reach this — only successful
    /// ones are worth (or safe) replaying in another process.
    ///
    /// # Errors
    ///
    /// Returns a description on lock timeout or I/O failure; the caller
    /// degrades (keeps the in-memory entry, records an incident).
    pub fn store(
        &self,
        key: &EntryKey,
        model_name: &str,
        entry: &CompiledKernel,
    ) -> Result<(), String> {
        let bytes = encode_entry(key, model_name, entry);
        let _lock = self.acquire_lock()?;
        let final_path = self.entry_path(key);
        let tmp_path = self
            .dir
            .join(format!("{}.tmp-{}", key.file_name(), std::process::id()));
        let write = || -> io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            // Flush to the device before the rename publishes the entry,
            // so a crash cannot leave a complete-looking empty file.
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        };
        if let Err(e) = write() {
            let _ = fs::remove_file(&tmp_path);
            return Err(format!("cannot write cache entry: {e}"));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_cap_locked(&final_path);
        Ok(())
    }

    /// Evicts least-recently-used entries (by mtime, which loads refresh)
    /// until the directory fits the cap. The just-written entry is
    /// protected so a tiny cap cannot make every store a self-defeating
    /// write-then-evict.
    fn enforce_cap_locked(&self, protect: &Path) {
        let cap = self.cap_bytes();
        let Ok(mut files) = self.entry_files() else {
            return;
        };
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        if total <= cap {
            return;
        }
        files.sort_by_key(|(_, _, mtime)| *mtime);
        for (path, len, _) in files {
            if total <= cap || path == protect {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Loads and reconstructs the entry for `key`, running the full
    /// integrity ladder (see the module docs). Never panics: every
    /// failure mode is a [`DiskLoad::Rejected`] (or [`DiskLoad::Miss`]
    /// when no entry exists).
    pub fn load(&self, key: &EntryKey, model: &Model) -> DiskLoad {
        let path = self.entry_path(key);
        let mut bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return DiskLoad::Miss,
            Err(e) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                return DiskLoad::Rejected(format!("unreadable entry: {e}"));
            }
        };
        inject_disk_faults(&mut bytes);
        match decode_entry(&bytes, key, model) {
            Ok(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Refresh mtime so LRU eviction sees this entry as live.
                // Best-effort: a read-only cache dir still serves hits.
                let _ = fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .and_then(|f| f.set_modified(SystemTime::now()));
                DiskLoad::Hit(Box::new(entry))
            }
            Err(reason) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                // Drop the bad file so the recompile's store self-heals
                // the cache instead of re-rejecting forever.
                let _ = fs::remove_file(&path);
                DiskLoad::Rejected(reason)
            }
        }
    }

    /// Persists a probation-validated native shared object, atomically
    /// and under the directory lock, like [`DiskCache::store`]. The
    /// envelope stamps the container and emitter versions and carries an
    /// FNV-1a checksum over the object bytes.
    ///
    /// Callers must only persist objects that passed the bit-identity
    /// probation — quarantined native code never reaches disk.
    ///
    /// # Errors
    ///
    /// Returns a description on lock timeout or I/O failure; the caller
    /// degrades to in-memory-only.
    pub fn store_native(&self, fingerprint: u64, so_bytes: &[u8]) -> Result<(), String> {
        let header = format!(
            "{NATIVE_MAGIC} {NATIVE_CONTAINER_VERSION} {} {fingerprint:016x} {} {:016x}\n",
            limpet_codegen::NATIVE_EMITTER_VERSION,
            so_bytes.len(),
            fnv64(so_bytes),
        );
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(so_bytes);
        let _lock = self.acquire_lock()?;
        let final_path = self.dir.join(native_file_name(fingerprint));
        let tmp_path = self.dir.join(format!(
            "{}.tmp-{}",
            native_file_name(fingerprint),
            std::process::id()
        ));
        let write = || -> io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        };
        if let Err(e) = write() {
            let _ = fs::remove_file(&tmp_path);
            return Err(format!("cannot write native container: {e}"));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_cap_locked(&final_path);
        Ok(())
    }

    /// Loads the persisted shared object for `fingerprint`, running the
    /// envelope's integrity ladder (magic, versions, key echo, length,
    /// checksum). Returns the raw object bytes on success; the caller
    /// still `dlopen`s and re-probates them.
    pub fn load_native(&self, fingerprint: u64) -> NativeDiskLoad {
        let path = self.dir.join(native_file_name(fingerprint));
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return NativeDiskLoad::Miss,
            Err(e) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                return NativeDiskLoad::Rejected(format!("unreadable container: {e}"));
            }
        };
        match decode_native(&bytes, fingerprint) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Refresh mtime so LRU eviction sees the object as live.
                let _ = fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .and_then(|f| f.set_modified(SystemTime::now()));
                NativeDiskLoad::Hit(payload)
            }
            Err(reason) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                NativeDiskLoad::Rejected(reason)
            }
        }
    }

    /// Removes the persisted shared object for `fingerprint`, if any
    /// (rejected containers self-heal this way).
    pub fn remove_native(&self, fingerprint: u64) {
        let _ = fs::remove_file(self.dir.join(native_file_name(fingerprint)));
    }
}

/// Envelope checks for a native container; returns the object payload.
fn decode_native(bytes: &[u8], fingerprint: u64) -> Result<Vec<u8>, String> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("missing header line")?;
    let header =
        std::str::from_utf8(&bytes[..header_end]).map_err(|_| "header is not UTF-8".to_string())?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    let [magic, container_ver, emitter_ver, fp, payload_len, checksum] = tokens[..] else {
        return Err(format!(
            "malformed header ({} fields, expected 6)",
            tokens.len()
        ));
    };
    if magic != NATIVE_MAGIC {
        return Err(format!("bad magic '{magic}'"));
    }
    let want = (
        NATIVE_CONTAINER_VERSION.to_string(),
        limpet_codegen::NATIVE_EMITTER_VERSION.to_string(),
    );
    if (container_ver, emitter_ver) != (&want.0, &want.1) {
        return Err(format!(
            "stale native container (container {container_ver}, emitter {emitter_ver}; this build wants {}/{})",
            want.0, want.1
        ));
    }
    let fp = u64::from_str_radix(fp, 16).map_err(|_| format!("bad fingerprint '{fp}'"))?;
    if fp != fingerprint {
        return Err(format!(
            "key mismatch (container is {fp:016x}, wanted {fingerprint:016x})"
        ));
    }
    let payload_len: usize = payload_len
        .parse()
        .map_err(|_| format!("bad payload length '{payload_len}'"))?;
    let checksum =
        u64::from_str_radix(checksum, 16).map_err(|_| format!("bad checksum '{checksum}'"))?;
    let payload = &bytes[header_end + 1..];
    if payload.len() != payload_len {
        return Err(format!(
            "truncated container (payload {} bytes, header promises {payload_len})",
            payload.len()
        ));
    }
    let got = fnv64(payload);
    if got != checksum {
        return Err(format!(
            "checksum mismatch (computed {got:016x}, header says {checksum:016x})"
        ));
    }
    Ok(payload.to_vec())
}

/// Applies at most one armed disk-fault plan to the just-read entry
/// bytes (so a spec arming several disk faults spreads them across
/// consecutive loads instead of piling onto the first). The mutations
/// are deliberately fed through the *real* integrity checks — the test
/// asserts the rejection, not the mutation.
fn inject_disk_faults(bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    if let Some(seed) = faults::take(FaultKind::DiskCorrupt) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let at = rng.gen_range(0..bytes.len());
        bytes[at] ^= 0x20;
        return;
    }
    if let Some(seed) = faults::take(FaultKind::DiskTruncate) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let keep = rng.gen_range(0..bytes.len());
        bytes.truncate(keep);
        return;
    }
    if faults::take(FaultKind::DiskStaleVersion).is_some() {
        // Rewrite the entry-format-version token in the header, as if the
        // file had been written by an incompatible limpet-rs build.
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .unwrap_or(bytes.len());
        if let Ok(header) = std::str::from_utf8(&bytes[..header_end]) {
            let mut tokens: Vec<String> = header.split_whitespace().map(String::from).collect();
            if tokens.len() >= 2 {
                tokens[1] = "999999".to_string();
                let mut patched = tokens.join(" ").into_bytes();
                patched.extend_from_slice(&bytes[header_end..]);
                *bytes = patched;
            }
        }
    }
}

/// Serializes one compiled entry into its on-disk byte form:
///
/// ```text
/// limpet-kernel-cache <entry-ver> <ir-ver> <bc-ver> <fp:016x> <label> <opt> <payload-len> <fnv:016x>\n
/// model <name>\n
/// section module <len>\n<IR text>\n
/// section program.main <len>\n<bytecode text>\n
/// section program.raw <len>\n<bytecode text>\n
/// section luts <len>\n<LUT text>\n
/// ```
fn encode_entry(key: &EntryKey, model_name: &str, entry: &CompiledKernel) -> Vec<u8> {
    let module_text = limpet_ir::print_module(entry.module());
    let main_text = limpet_vm::serialize_program(entry.kernel().program());
    let raw_text = limpet_vm::serialize_program(entry.raw_kernel().program());
    let luts_text = limpet_vm::serialize_luts(entry.kernel().luts());
    let mut payload = String::new();
    let _ = writeln!(payload, "model {model_name}");
    for (name, body) in [
        ("module", &module_text),
        ("program.main", &main_text),
        ("program.raw", &raw_text),
        ("luts", &luts_text),
    ] {
        let _ = writeln!(payload, "section {name} {}", body.len());
        payload.push_str(body);
        payload.push('\n');
    }
    let payload = payload.into_bytes();
    let header = format!(
        "{MAGIC} {ENTRY_FORMAT_VERSION} {} {} {:016x} {} {} {} {:016x}\n",
        limpet_ir::TEXT_FORMAT_VERSION,
        limpet_vm::BYTECODE_FORMAT_VERSION,
        key.fingerprint,
        key.config.label(),
        u8::from(key.opt),
        payload.len(),
        fnv64(&payload),
    );
    let mut out = header.into_bytes();
    out.extend_from_slice(&payload);
    out
}

/// Runs the integrity ladder over raw entry bytes and reconstructs the
/// compilation. Every failure is a `String` reason (mapped to
/// [`DiskLoad::Rejected`] by the caller).
fn decode_entry(bytes: &[u8], key: &EntryKey, model: &Model) -> Result<CompiledKernel, String> {
    let started = Instant::now();
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("missing header line")?;
    let header =
        std::str::from_utf8(&bytes[..header_end]).map_err(|_| "header is not UTF-8".to_string())?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    let [magic, entry_ver, ir_ver, bc_ver, fp, label, opt, payload_len, checksum] = tokens[..]
    else {
        return Err(format!(
            "malformed header ({} fields, expected 9)",
            tokens.len()
        ));
    };
    if magic != MAGIC {
        return Err(format!("bad magic '{magic}'"));
    }
    let want_vers = (
        ENTRY_FORMAT_VERSION.to_string(),
        limpet_ir::TEXT_FORMAT_VERSION.to_string(),
        limpet_vm::BYTECODE_FORMAT_VERSION.to_string(),
    );
    if (entry_ver, ir_ver, bc_ver) != (&want_vers.0, &want_vers.1, &want_vers.2) {
        return Err(format!(
            "stale format version (entry {entry_ver}, ir {ir_ver}, bc {bc_ver}; this build wants {}/{}/{})",
            want_vers.0, want_vers.1, want_vers.2
        ));
    }
    let fp = u64::from_str_radix(fp, 16).map_err(|_| format!("bad fingerprint '{fp}'"))?;
    if fp != key.fingerprint || label != key.config.label() || opt != u8::from(key.opt).to_string()
    {
        return Err(format!(
            "key mismatch (entry is {fp:016x}/{label}/{opt}, wanted {:016x}/{}/{})",
            key.fingerprint,
            key.config.label(),
            u8::from(key.opt)
        ));
    }
    let payload_len: usize = payload_len
        .parse()
        .map_err(|_| format!("bad payload length '{payload_len}'"))?;
    let checksum =
        u64::from_str_radix(checksum, 16).map_err(|_| format!("bad checksum '{checksum}'"))?;
    let payload = &bytes[header_end + 1..];
    if payload.len() != payload_len {
        return Err(format!(
            "truncated entry (payload {} bytes, header promises {payload_len})",
            payload.len()
        ));
    }
    let got = fnv64(payload);
    if got != checksum {
        return Err(format!(
            "checksum mismatch (computed {got:016x}, header says {checksum:016x})"
        ));
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let (model_line, rest) = payload
        .split_once('\n')
        .ok_or("payload missing model line")?;
    let recorded_model = model_line
        .strip_prefix("model ")
        .ok_or("payload missing model line")?;
    if recorded_model != model.name {
        return Err(format!(
            "model mismatch (entry records '{recorded_model}', wanted '{}')",
            model.name
        ));
    }
    let mut sections = SectionReader { text: rest };
    let module_text = sections.section("module")?;
    let main_text = sections.section("program.main")?;
    let raw_text = sections.section("program.raw")?;
    let luts_text = sections.section("luts")?;

    let module =
        limpet_ir::parse_module(module_text).map_err(|e| format!("unparseable IR: {e}"))?;
    limpet_ir::verify_module(&module).map_err(|e| format!("IR failed verification: {e}"))?;
    let width = module.attrs.i64_of("vector_width").unwrap_or(1) as usize;
    let info = model_info(model);
    let luts = limpet_vm::deserialize_luts(luts_text).map_err(|e| format!("bad LUT data: {e}"))?;
    let main_prog =
        limpet_vm::deserialize_program(main_text).map_err(|e| format!("bad main bytecode: {e}"))?;
    let raw_prog =
        limpet_vm::deserialize_program(raw_text).map_err(|e| format!("bad raw bytecode: {e}"))?;
    let kernel = Kernel::from_parts(module.name(), main_prog, width, &info, luts.clone())
        .map_err(|e| format!("main kernel rejected: {e}"))?;
    let raw_kernel = Kernel::from_parts(module.name(), raw_prog, width, &info, luts)
        .map_err(|e| format!("raw kernel rejected: {e}"))?;
    let layout = storage_layout(&module);
    // The entry's provenance is visible in the pass report: a disk load
    // shows a single synthetic "disk-load" pass instead of the pipeline.
    let report = limpet_passes::RunReport {
        passes: vec![limpet_pm::PassRun {
            name: "disk-load",
            changed: false,
            duration: started.elapsed(),
            counters: Vec::new(),
        }],
        dumps: Vec::new(),
    };
    Ok(CompiledKernel::from_parts(
        module, kernel, raw_kernel, layout, report,
    ))
}

/// Cursor over the `section <name> <len>` framing of an entry payload.
struct SectionReader<'a> {
    text: &'a str,
}

impl<'a> SectionReader<'a> {
    fn section(&mut self, want: &str) -> Result<&'a str, String> {
        let (header, rest) = self
            .text
            .split_once('\n')
            .ok_or_else(|| format!("missing section '{want}'"))?;
        let mut fields = header.split_whitespace();
        let (kw, name, len) = (fields.next(), fields.next(), fields.next());
        if kw != Some("section") || name != Some(want) || fields.next().is_some() {
            return Err(format!("expected section '{want}', found '{header}'"));
        }
        let len: usize = len
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| format!("bad length for section '{want}'"))?;
        if rest.len() < len + 1 || !rest.is_char_boundary(len) {
            return Err(format!("section '{want}' is truncated"));
        }
        let (body, after) = rest.split_at(len);
        let after = after
            .strip_prefix('\n')
            .ok_or_else(|| format!("section '{want}' has a bad terminator"))?;
        self.text = after;
        Ok(body)
    }
}

/// An append-only checkpoint journal making long sweeps resumable: one
/// header line identifying the sweep's options, then one line per
/// completed unit of work. A restarted sweep re-opens the journal, skips
/// everything already recorded, and finishes the remainder; [`Journal::finish`]
/// removes the file once the sweep completes.
///
/// Partial trailing lines (a crash mid-append) are ignored on reopen, and
/// a header mismatch (same path, different options) restarts the journal
/// rather than resuming someone else's sweep.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<fs::File>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a sweep identified by
    /// `header`. Returns the journal and the lines already completed by a
    /// previous run (empty when starting fresh or when the existing file
    /// belongs to a different sweep).
    ///
    /// # Errors
    ///
    /// Propagates file creation/read errors.
    pub fn open(path: &Path, header: &str) -> io::Result<(Journal, Vec<String>)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let existing = fs::read_to_string(path).unwrap_or_default();
        // Only fully-written lines count: a crash mid-append leaves a
        // trailing fragment with no newline, which must be redone.
        let complete = &existing[..existing.rfind('\n').map_or(0, |i| i + 1)];
        let mut lines = complete.lines();
        let resumed = if lines.next() == Some(header) {
            lines.map(String::from).collect()
        } else {
            Vec::new()
        };
        let mut file = if resumed.is_empty() {
            let mut f = fs::File::create(path)?;
            writeln!(f, "{header}")?;
            f
        } else {
            // Truncate any partial trailing fragment, then append.
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(complete.len() as u64)?;
            fs::OpenOptions::new().append(true).open(path)?
        };
        file.flush()?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            resumed,
        ))
    }

    /// Records one completed unit of work (must not contain `\n`). The
    /// line is flushed and synced so it survives a crash immediately
    /// after.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn record(&self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal lines must be single lines");
        let mut f = self.file.lock().unwrap_or_else(|p| p.into_inner());
        writeln!(f, "{line}")?;
        f.flush()?;
        f.sync_data()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Marks the sweep complete: closes and removes the journal file.
    ///
    /// # Errors
    ///
    /// Propagates the removal error.
    pub fn finish(self) -> io::Result<()> {
        drop(self.file);
        fs::remove_file(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_models::model;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "limpet-persist-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry() -> (Model, EntryKey, CompiledKernel) {
        let m = model("Plonsey");
        let key = EntryKey::new(&m, PipelineKind::Baseline, true);
        let entry = CompiledKernel::compile(&m, PipelineKind::Baseline);
        (m, key, entry)
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        let (m, key, entry) = sample_entry();
        cache.store(&key, &m.name, &entry).unwrap();
        match cache.load(&key, &m) {
            DiskLoad::Hit(loaded) => {
                assert_eq!(
                    limpet_ir::print_module(loaded.module()),
                    limpet_ir::print_module(entry.module())
                );
                assert_eq!(loaded.layout(), entry.layout());
                assert_eq!(loaded.pass_report().passes[0].name, "disk-load");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.rejects, s.writes), (1, 0, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_is_a_miss_not_a_reject() {
        let dir = temp_dir("miss");
        let cache = DiskCache::open(&dir).unwrap();
        let (m, key, _) = sample_entry();
        assert!(matches!(cache.load(&key, &m), DiskLoad::Miss));
        assert_eq!(cache.stats().rejects, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn physically_corrupted_entry_is_rejected_and_removed() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        let (m, key, entry) = sample_entry();
        cache.store(&key, &m.name, &entry).unwrap();
        let path = cache.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        match cache.load(&key, &m) {
            DiskLoad::Rejected(reason) => {
                assert!(
                    reason.contains("checksum") || reason.contains("UTF-8"),
                    "unexpected reason: {reason}"
                )
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(!path.exists(), "bad entry must be dropped for self-heal");
        // Next lookup is a clean miss.
        assert!(matches!(cache.load(&key, &m), DiskLoad::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_rejected() {
        let dir = temp_dir("truncate");
        let cache = DiskCache::open(&dir).unwrap();
        let (m, key, entry) = sample_entry();
        cache.store(&key, &m.name, &entry).unwrap();
        let path = cache.entry_path(&key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(cache.load(&key, &m), DiskLoad::Rejected(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_is_rejected_with_a_stale_reason() {
        let dir = temp_dir("stale");
        let cache = DiskCache::open(&dir).unwrap();
        let (m, key, entry) = sample_entry();
        cache.store(&key, &m.name, &entry).unwrap();
        let path = cache.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        let patched = text.replacen(
            &format!("{MAGIC} {ENTRY_FORMAT_VERSION} "),
            &format!("{MAGIC} 999999 "),
            1,
        );
        assert_ne!(text, patched, "header must have been patched");
        fs::write(&path, patched).unwrap();
        match cache.load(&key, &m) {
            DiskLoad::Rejected(reason) => assert!(reason.contains("stale"), "{reason}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn renamed_entry_cannot_serve_the_wrong_key() {
        let dir = temp_dir("rename");
        let cache = DiskCache::open(&dir).unwrap();
        let (m, key, entry) = sample_entry();
        cache.store(&key, &m.name, &entry).unwrap();
        // Pretend the file belongs to a different key (as if mis-renamed).
        let other = model("HodgkinHuxley");
        let other_key = EntryKey::new(&other, PipelineKind::Baseline, true);
        fs::rename(cache.entry_path(&key), cache.entry_path(&other_key)).unwrap();
        match cache.load(&other_key, &other) {
            DiskLoad::Rejected(reason) => assert!(reason.contains("key mismatch"), "{reason}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_removes_oldest_entries_until_under_cap() {
        let dir = temp_dir("evict");
        let cache = DiskCache::open(&dir).unwrap();
        let models = ["Plonsey", "HodgkinHuxley", "BeelerReuter"];
        let mut keys = Vec::new();
        for (i, name) in models.iter().enumerate() {
            let m = model(name);
            let key = EntryKey::new(&m, PipelineKind::Baseline, true);
            let entry = CompiledKernel::compile(&m, PipelineKind::Baseline);
            cache.store(&key, &m.name, &entry).unwrap();
            // Age the earlier entries so LRU order is deterministic.
            let age = SystemTime::now() - Duration::from_secs(100 - i as u64 * 10);
            fs::OpenOptions::new()
                .append(true)
                .open(cache.entry_path(&key))
                .and_then(|f| f.set_modified(age))
                .unwrap();
            keys.push((m, key));
        }
        // Cap to just the newest entry's size: the two oldest must go.
        let newest = fs::metadata(cache.entry_path(&keys[2].1)).unwrap().len();
        cache.set_cap_bytes(newest);
        let (m, key) = &keys[2];
        let entry = CompiledKernel::compile(m, PipelineKind::Baseline);
        cache.store(key, &m.name, &entry).unwrap();
        let status = cache.status().unwrap();
        assert_eq!(status.entries, 1, "only the protected newest entry stays");
        assert!(matches!(
            cache.load(&keys[2].1, &keys[2].0),
            DiskLoad::Hit(_)
        ));
        assert!(matches!(cache.load(&keys[0].1, &keys[0].0), DiskLoad::Miss));
        assert!(cache.stats().evictions >= 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken_fresh_lock_times_out() {
        let dir = temp_dir("lock");
        let cache = DiskCache::open(&dir).unwrap();
        cache.set_lock_timeout(Duration::from_millis(50));
        let (m, key, entry) = sample_entry();
        // A fresh lock (live writer) must make the store time out.
        fs::write(cache.lock_path(), b"12345").unwrap();
        let err = cache.store(&key, &m.name, &entry).unwrap_err();
        assert!(err.contains("timed out"), "{err}");
        // An old lock (crashed writer) must be broken and the store succeed.
        let old = SystemTime::now() - Duration::from_secs(120);
        fs::OpenOptions::new()
            .append(true)
            .open(cache.lock_path())
            .and_then(|f| f.set_modified(old))
            .unwrap();
        cache.store(&key, &m.name, &entry).unwrap();
        assert_eq!(cache.stats().stale_locks_broken, 1);
        assert!(!cache.lock_path().exists(), "lock released after store");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_holder_crash_is_survived_by_backoff_and_stale_break() {
        let _g = faults::TEST_SERIAL
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        let dir = temp_dir("crashlock");
        let cache = DiskCache::open(&dir).unwrap();
        cache.set_stale_lock_after(Duration::from_millis(100));
        cache.set_lock_timeout(Duration::from_secs(5));
        let (m, key, entry) = sample_entry();
        faults::arm("lock-holder-crash").unwrap();
        let err = cache.store(&key, &m.name, &entry).unwrap_err();
        assert!(err.contains("lock-holder crash"), "{err}");
        assert!(
            cache.lock_path().exists(),
            "the crash leaves the lock file behind"
        );
        // The next writer retries with backoff until the abandoned lock
        // ages past the stale threshold, breaks it, and completes.
        cache.store(&key, &m.name, &entry).unwrap();
        let s = cache.stats();
        assert!(s.stale_locks_broken >= 1, "{s:?}");
        assert!(s.lock_retries >= 1, "backoff retries were counted: {s:?}");
        assert!(matches!(cache.load(&key, &m), DiskLoad::Hit(_)));
        assert!(!cache.lock_path().exists(), "lock released after store");
        faults::disarm_all();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_entries_and_status_reports_them() {
        let dir = temp_dir("clear");
        let cache = DiskCache::open(&dir).unwrap();
        let (m, key, entry) = sample_entry();
        cache.store(&key, &m.name, &entry).unwrap();
        let status = cache.status().unwrap();
        assert_eq!(status.entries, 1);
        assert!(status.bytes > 0);
        assert_eq!(cache.clear().unwrap(), 1);
        assert_eq!(cache.status().unwrap().entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_resumes_completed_lines_and_ignores_partial_tail() {
        let dir = temp_dir("journal");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.journal");
        let (j, resumed) = Journal::open(&path, "sweep-v1 cells=100").unwrap();
        assert!(resumed.is_empty());
        j.record("row-a").unwrap();
        j.record("row-b").unwrap();
        drop(j);
        // Simulate a crash mid-append: a trailing fragment with no newline.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "row-c-partial").unwrap();
        drop(f);
        let (j, resumed) = Journal::open(&path, "sweep-v1 cells=100").unwrap();
        assert_eq!(resumed, vec!["row-a".to_string(), "row-b".to_string()]);
        j.record("row-c").unwrap();
        // A different sweep identity restarts instead of resuming.
        drop(j);
        let (j, resumed) = Journal::open(&path, "sweep-v1 cells=200").unwrap();
        assert!(resumed.is_empty(), "mismatched header must not resume");
        j.finish().unwrap();
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn native_container_round_trips_and_rejects_tampering() {
        let dir = temp_dir("native");
        let cache = DiskCache::open(&dir).unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let fp = 0xdead_beef_cafe_f00d;
        cache.store_native(fp, &payload).unwrap();
        match cache.load_native(fp) {
            NativeDiskLoad::Hit(bytes) => assert_eq!(bytes, payload),
            other => panic!("expected hit, got {other:?}"),
        }
        // Unknown fingerprint is a miss.
        assert!(matches!(cache.load_native(fp ^ 1), NativeDiskLoad::Miss));
        // A flipped payload byte fails the checksum.
        let path = dir.join(native_file_name(fp));
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match cache.load_native(fp) {
            NativeDiskLoad::Rejected(reason) => {
                assert!(reason.contains("checksum"), "{reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // A stale emitter version is rejected before any parse.
        cache.store_native(fp, &payload).unwrap();
        let text = fs::read(&path).unwrap();
        let header_end = text.iter().position(|&b| b == b'\n').unwrap();
        let header = String::from_utf8(text[..header_end].to_vec()).unwrap();
        let stale = header.replacen(
            &format!("{NATIVE_MAGIC} {NATIVE_CONTAINER_VERSION} "),
            &format!("{NATIVE_MAGIC} 999999 "),
            1,
        );
        let mut patched = stale.into_bytes();
        patched.extend_from_slice(&text[header_end..]);
        fs::write(&path, &patched).unwrap();
        match cache.load_native(fp) {
            NativeDiskLoad::Rejected(reason) => assert!(reason.contains("stale"), "{reason}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        // remove_native clears the slot.
        cache.remove_native(fp);
        assert!(matches!(cache.load_native(fp), NativeDiskLoad::Miss));
        // Native containers count in the directory status scan.
        cache.store_native(fp, &payload).unwrap();
        assert_eq!(cache.status().unwrap().entries, 1);
        assert_eq!(cache.clear().unwrap(), 1, "clear removes native containers");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_dir_honors_env_override() {
        // Can't mutate the environment safely in parallel tests; just
        // check the fallback shape is non-empty and rooted somewhere.
        let dir = default_cache_dir();
        assert!(!dir.as_os_str().is_empty());
    }
}
