//! Runtime health guards and the incident taxonomy for the fault-tolerant
//! compile/run chain.
//!
//! A roster run survives three classes of trouble without losing the whole
//! campaign: a model that fails to *compile* (parse, sema, pipeline verify,
//! or bytecode emission), a kernel whose *optimized* bytecode misbehaves,
//! and a simulation whose *state* goes non-finite mid-run. Each recovery
//! step is recorded as an [`Incident`] so the degradation is visible in the
//! run report rather than silent.
//!
//! The execution [`Tier`] ladder is `Native → Optimized → Raw →
//! Reference`: dlopen'd machine code compiled from the kernel's own
//! bytecode at the top (entered only by *promotion*, never at startup
//! cold), optimized bytecode below it, the unoptimized bytecode of the
//! same module on optimizer trouble, and finally the scalar reference
//! pipeline ([`crate::PipelineKind::Baseline`]) when the configured
//! pipeline itself is at fault.

use std::fmt;

/// What a [`crate::Simulation`] does when a per-step health check finds a
/// non-finite value in the cell state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HealthPolicy {
    /// Stop immediately and surface the incident as an error. Default:
    /// silent NaN propagation is the worst outcome for a physiology run.
    #[default]
    Abort,
    /// Overwrite every non-finite entry with its pre-step value, record the
    /// incident, and keep going. Cheap, but the trajectory is no longer a
    /// faithful integration.
    ClampAndWarn,
    /// Roll the whole step back, drop down one execution tier
    /// (optimized → raw → reference), and re-run the step there. The
    /// post-fallback trajectory is exactly what the lower tier would have
    /// produced from the rolled-back state.
    FallbackRaw,
}

impl fmt::Display for HealthPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthPolicy::Abort => "abort",
            HealthPolicy::ClampAndWarn => "clamp-and-warn",
            HealthPolicy::FallbackRaw => "fallback-raw",
        })
    }
}

/// Which rung of the degradation ladder a kernel is running on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Machine code: the kernel's bytecode re-emitted as serial C,
    /// compiled by the system toolchain, and `dlopen`'d. Entered only by
    /// promotion from [`Tier::Optimized`] after a probation run proves
    /// bit-identity; every failure falls back to `Optimized`.
    Native,
    /// Optimized bytecode of the configured pipeline's module.
    Optimized,
    /// Unoptimized bytecode of the same module (shares its LUTs).
    Raw,
    /// The scalar reference pipeline ([`crate::PipelineKind::Baseline`]),
    /// recompiled from the model source.
    Reference,
}

impl Tier {
    /// The next rung down, or `None` from [`Tier::Reference`].
    pub fn next_down(self) -> Option<Tier> {
        match self {
            Tier::Native => Some(Tier::Optimized),
            Tier::Optimized => Some(Tier::Raw),
            Tier::Raw => Some(Tier::Reference),
            Tier::Reference => None,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Native => "native",
            Tier::Optimized => "optimized",
            Tier::Raw => "raw",
            Tier::Reference => "reference",
        })
    }
}

/// The category of a recorded [`Incident`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IncidentKind {
    /// The model source failed to parse or analyze.
    FrontendError,
    /// A pass-manager pipeline reported a verification failure.
    VerifyFail,
    /// Bytecode emission or optimization failed for the lowered module.
    BytecodeFail,
    /// Compilation panicked; the panic was contained by the cache.
    CompilePanic,
    /// A per-step health check found a non-finite state value.
    NonFiniteState,
    /// The kernel-cache mutex was found poisoned and recovered.
    CachePoisonRecovered,
    /// Execution dropped one tier on the degradation ladder.
    TierFallback,
    /// A model was served from (or newly placed in) quarantine.
    Quarantined,
    /// An on-disk cache entry failed an integrity check (corruption,
    /// truncation, stale version, unparseable payload) and was discarded;
    /// the lookup degraded to a cold compile.
    DiskCacheRejected,
    /// The disk cache tier itself misbehaved (lock timeout, write
    /// failure); the run continued in-memory only.
    DiskCacheDegraded,
    /// The system C toolchain failed (or was missing) while building a
    /// native shared object; the kernel stays on bytecode.
    NativeCcFail,
    /// A built native shared object could not be loaded (`dlopen` or
    /// symbol resolution failed); the kernel stays on bytecode.
    NativeDlopenFail,
    /// A native kernel's probation run diverged bitwise from the bytecode
    /// tier; the native slot was quarantined and never persisted.
    NativeDivergent,
    /// A kernel was promoted to the native tier (hot-swap or warm load).
    NativePromoted,
    /// A job's wall-clock budget expired (or it was explicitly
    /// cancelled): the run stopped cooperatively at a step boundary, so
    /// the state is whole up to the last completed step.
    DeadlineExceeded,
    /// The native `cc` compile exceeded its watchdog timeout; the child
    /// process was killed and the kernel quarantined on bytecode.
    NativeCcTimeout,
}

impl IncidentKind {
    /// Stable kebab-case label used in reports and test assertions.
    pub fn as_str(self) -> &'static str {
        match self {
            IncidentKind::FrontendError => "frontend-error",
            IncidentKind::VerifyFail => "verify-fail",
            IncidentKind::BytecodeFail => "bytecode-fail",
            IncidentKind::CompilePanic => "compile-panic",
            IncidentKind::NonFiniteState => "non-finite-state",
            IncidentKind::CachePoisonRecovered => "cache-poison-recovered",
            IncidentKind::TierFallback => "tier-fallback",
            IncidentKind::Quarantined => "quarantined",
            IncidentKind::DiskCacheRejected => "disk-cache-rejected",
            IncidentKind::DiskCacheDegraded => "disk-cache-degraded",
            IncidentKind::NativeCcFail => "cc-fail",
            IncidentKind::NativeDlopenFail => "dlopen-fail",
            IncidentKind::NativeDivergent => "native-divergent",
            IncidentKind::NativePromoted => "native-promoted",
            IncidentKind::DeadlineExceeded => "deadline-exceeded",
            IncidentKind::NativeCcTimeout => "cc-timeout",
        }
    }
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded recovery (or failure) event. Incidents accumulate next to
/// the pass report: [`crate::Simulation::incidents`] for per-run events and
/// [`crate::KernelCache::incidents`] for compile-time events.
#[derive(Clone, Debug)]
pub struct Incident {
    /// What happened.
    pub kind: IncidentKind,
    /// The model involved, when known.
    pub model: String,
    /// Simulation step at which the incident fired (runtime incidents only).
    pub step: Option<usize>,
    /// The tier execution moved *to*, for fallback incidents.
    pub tier: Option<Tier>,
    /// Human-readable description (underlying error text, variable names…).
    pub detail: String,
}

impl Incident {
    /// Builds an incident with no step or tier annotation.
    pub fn new(
        kind: IncidentKind,
        model: impl Into<String>,
        detail: impl Into<String>,
    ) -> Incident {
        Incident {
            kind,
            model: model.into(),
            step: None,
            tier: None,
            detail: detail.into(),
        }
    }

    /// Annotates the simulation step the incident fired at.
    #[must_use]
    pub fn at_step(mut self, step: usize) -> Incident {
        self.step = Some(step);
        self
    }

    /// Annotates the tier execution moved to.
    #[must_use]
    pub fn to_tier(mut self, tier: Tier) -> Incident {
        self.tier = Some(tier);
        self
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] model '{}'", self.kind, self.model)?;
        if let Some(step) = self.step {
            write!(f, " at step {step}")?;
        }
        if let Some(tier) = self.tier {
            write!(f, " -> tier {tier}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Collapses a raw incident list into `(representative, count)` groups
/// for display. Incidents are grouped by kind, model, tier, and detail —
/// the step is ignored, since a per-step incident repeating for hundreds
/// of steps is one story, not hundreds — and sorted by model, then kind,
/// then detail. Multi-occurrence groups drop the (now meaningless)
/// step annotation from the representative.
pub fn summarize_incidents(incidents: &[Incident]) -> Vec<(Incident, usize)> {
    let mut groups: Vec<(Incident, usize)> = Vec::new();
    for incident in incidents {
        match groups.iter_mut().find(|(rep, _)| {
            rep.kind == incident.kind
                && rep.model == incident.model
                && rep.tier == incident.tier
                && rep.detail == incident.detail
        }) {
            Some((_, count)) => *count += 1,
            None => groups.push((incident.clone(), 1)),
        }
    }
    for (rep, count) in &mut groups {
        if *count > 1 {
            rep.step = None;
        }
    }
    groups.sort_by(|(a, _), (b, _)| {
        (a.model.as_str(), a.kind.as_str(), a.detail.as_str()).cmp(&(
            b.model.as_str(),
            b.kind.as_str(),
            b.detail.as_str(),
        ))
    });
    groups
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable twin of [`summarize_incidents`]: a JSON array of
/// `(representative, count)` groups, each with the kind's stable
/// kebab-case label, the model, the optional step/tier annotations
/// (`null` when absent), the detail text, and the occurrence count.
/// Served by `figures --cache stat --json` and `limpet-serve`'s `stats`
/// verb so telemetry consumers stop parsing the pretty-printer.
pub fn incidents_json(incidents: &[Incident]) -> String {
    let mut out = String::from("[");
    for (i, (rep, count)) in summarize_incidents(incidents).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let step = rep
            .step
            .map_or_else(|| "null".to_owned(), |s| s.to_string());
        let tier = rep
            .tier
            .map_or_else(|| "null".to_owned(), |t| format!("\"{t}\""));
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"model\":\"{}\",\"step\":{},\"tier\":{},\"detail\":\"{}\",\"count\":{}}}",
            rep.kind.as_str(),
            json_escape(&rep.model),
            step,
            tier,
            json_escape(&rep.detail),
            count
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ladder_descends_to_reference() {
        assert_eq!(Tier::Native.next_down(), Some(Tier::Optimized));
        assert_eq!(Tier::Optimized.next_down(), Some(Tier::Raw));
        assert_eq!(Tier::Raw.next_down(), Some(Tier::Reference));
        assert_eq!(Tier::Reference.next_down(), None);
    }

    #[test]
    fn incident_display_includes_annotations() {
        let i = Incident::new(IncidentKind::NonFiniteState, "HodgkinHuxley", "Vm went NaN")
            .at_step(17)
            .to_tier(Tier::Raw);
        let s = i.to_string();
        assert!(s.contains("non-finite-state"), "{s}");
        assert!(s.contains("HodgkinHuxley"), "{s}");
        assert!(s.contains("step 17"), "{s}");
        assert!(s.contains("tier raw"), "{s}");
    }

    #[test]
    fn default_policy_is_abort() {
        assert_eq!(HealthPolicy::default(), HealthPolicy::Abort);
    }

    #[test]
    fn summarize_groups_repeats_and_sorts() {
        let mut incidents = Vec::new();
        for step in [3, 4, 5] {
            incidents.push(
                Incident::new(IncidentKind::NonFiniteState, "Zebra", "Vm went NaN").at_step(step),
            );
        }
        incidents.push(Incident::new(
            IncidentKind::Quarantined,
            "Aardvark",
            "verify failed",
        ));
        let summary = summarize_incidents(&incidents);
        assert_eq!(summary.len(), 2);
        // Sorted by model: Aardvark first.
        assert_eq!(summary[0].0.model, "Aardvark");
        assert_eq!(summary[0].1, 1);
        assert_eq!(summary[1].1, 3, "per-step repeats collapse into a count");
        assert_eq!(
            summary[1].0.step, None,
            "a collapsed group has no single step"
        );
        // Different details stay distinct groups.
        let distinct = summarize_incidents(&[
            Incident::new(IncidentKind::Quarantined, "M", "a"),
            Incident::new(IncidentKind::Quarantined, "M", "b"),
        ]);
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn incidents_json_groups_and_escapes() {
        let incidents = [
            Incident::new(IncidentKind::TierFallback, "M", "quote \" and\nnewline")
                .at_step(7)
                .to_tier(Tier::Raw),
            Incident::new(IncidentKind::TierFallback, "M", "quote \" and\nnewline")
                .at_step(8)
                .to_tier(Tier::Raw),
        ];
        let json = incidents_json(&incidents);
        assert_eq!(
            json,
            "[{\"kind\":\"tier-fallback\",\"model\":\"M\",\"step\":null,\
             \"tier\":\"raw\",\"detail\":\"quote \\\" and\\nnewline\",\"count\":2}]"
        );
        assert_eq!(incidents_json(&[]), "[]");
    }
}
