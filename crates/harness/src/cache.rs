//! The compilation service: a shared, thread-safe cache of compiled
//! kernels, plus parallel roster precompilation.
//!
//! Every figure runner used to re-lower and re-tabulate the same
//! `(model, pipeline)` pair once per measurement repeat — for the full
//! `--all` run that is thousands of redundant compilations of 43 models.
//! [`KernelCache`] compiles each pair once and hands out [`Kernel`]
//! clones, which are a few refcount bumps since the kernel's program and
//! LUTs sit behind `Arc` (see `limpet_vm::Kernel`).
//!
//! Keys are `(model fingerprint, PipelineKind, bytecode-opt toggle)`.
//! The fingerprint hashes the model's full checked structure (name,
//! states, parameters, statements), so two models that happen to share a
//! name but differ in content — e.g. synthetic specs with different
//! knobs — occupy distinct entries. The bytecode-optimizer toggle is
//! part of the key because `--no-bytecode-opt` changes the compiled
//! program: an ablation run must not be served a cached optimized
//! kernel (or vice versa).

use crate::sim::{model_info, storage_layout, PipelineKind};
use limpet_easyml::Model;
use limpet_vm::{Kernel, StateLayout};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, OnceLock};

/// One cached compilation: the lowered IR module, the executable kernel,
/// the storage layout the module mandates, and the pass manager's
/// execution report from the cold compile that produced it.
#[derive(Debug)]
pub struct CompiledKernel {
    module: limpet_ir::Module,
    kernel: Kernel,
    layout: StateLayout,
    pass_report: limpet_passes::RunReport,
}

impl CompiledKernel {
    /// Compiles `model` under `config` from scratch (no cache involved).
    ///
    /// # Panics
    ///
    /// Panics when the module fails bytecode compilation (roster models
    /// are tested not to).
    pub fn compile(model: &Model, config: PipelineKind) -> CompiledKernel {
        let (module, mut pass_report) = config.build_with_report(model);
        let info = model_info(model);
        let opt = limpet_vm::bytecode_opt_enabled();
        let started = std::time::Instant::now();
        let (kernel, opt_stats) = Kernel::from_module_opt(&module, &info, opt)
            .unwrap_or_else(|e| panic!("kernel compilation failed for {}: {e}", model.name));
        // Surface the bytecode optimizer as one more (synthetic) pass so
        // `Compiled::pass_report()` shows its counters next to the IR
        // passes. When disabled it still appears, with zero counters, so
        // ablation reports are visibly "optimizer off" rather than silent.
        pass_report.passes.push(limpet_pm::PassRun {
            name: "bytecode-opt",
            changed: opt_stats.changed(),
            duration: started.elapsed(),
            counters: if opt {
                opt_stats.counters()
            } else {
                Vec::new()
            },
        });
        let layout = storage_layout(&module);
        CompiledKernel {
            module,
            kernel,
            layout,
            pass_report,
        }
    }

    /// The lowered IR module.
    pub fn module(&self) -> &limpet_ir::Module {
        &self.module
    }

    /// The executable kernel (clone it to run — clones share the
    /// compilation).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The state storage layout the module mandates.
    pub fn layout(&self) -> StateLayout {
        self.layout
    }

    /// The pass manager's execution report from the cold compile: one
    /// [`limpet_passes::PassRun`] per pipeline pass, with wall time and
    /// counters. Cache hits share the entry, so this is always the
    /// timing of the compile that actually ran.
    pub fn pass_report(&self) -> &limpet_passes::RunReport {
        &self.pass_report
    }
}

/// FNV-1a accumulator that consumes formatted text directly, so hashing
/// a model's debug representation allocates nothing.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Ok(())
    }
}

/// A content fingerprint of a checked model: stable within a process and
/// across identical sources, sensitive to any structural change (the
/// debug representation covers the name, every state/external/parameter,
/// and the full statement bodies).
pub fn model_fingerprint(model: &Model) -> u64 {
    use std::fmt::Write;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    write!(w, "{model:?}").expect("fmt to hasher cannot fail");
    w.0
}

/// Cache hit/miss counters (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a new entry.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A thread-safe map from `(model fingerprint, PipelineKind,
/// bytecode-opt toggle)` to compiled kernels.
///
/// Compilation happens outside the map lock, so concurrent misses on
/// *different* keys compile in parallel; concurrent misses on the *same*
/// key race benignly (first insert wins, the loser's work is dropped).
#[derive(Debug, Default)]
pub struct KernelCache {
    map: Mutex<HashMap<(u64, PipelineKind, bool), Arc<CompiledKernel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// When set, every lookup compiles fresh and nothing is stored
    /// (`figures --no-cache`, A/B validation).
    bypass: std::sync::atomic::AtomicBool,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> KernelCache {
        KernelCache::default()
    }

    /// The process-wide shared cache (what [`crate::Simulation::new`]
    /// uses).
    pub fn global() -> &'static KernelCache {
        static GLOBAL: OnceLock<KernelCache> = OnceLock::new();
        GLOBAL.get_or_init(KernelCache::new)
    }

    /// Turns caching off (every lookup compiles fresh, nothing is
    /// stored) or back on. Off is the `figures --no-cache` mode, kept
    /// for A/B-validating that cached and cold runs agree.
    pub fn set_enabled(&self, enabled: bool) {
        self.bypass.store(!enabled, Ordering::Relaxed);
    }

    /// Returns the cached compilation for `(model, config)`, compiling it
    /// on first use.
    pub fn get_or_compile(&self, model: &Model, config: PipelineKind) -> Arc<CompiledKernel> {
        if self.bypass.load(Ordering::Relaxed) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(CompiledKernel::compile(model, config));
        }
        let key = (
            model_fingerprint(model),
            config,
            limpet_vm::bytecode_opt_enabled(),
        );
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Miss: compile without holding the lock.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(CompiledKernel::compile(model, config));
        Arc::clone(self.map.lock().unwrap().entry(key).or_insert(built))
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().unwrap().len(),
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }

    /// Compiles every `(model, config)` pair on `jobs` worker threads,
    /// populating the cache. Returns the number of pairs compiled (cache
    /// misses); pairs already resident are counted as skipped work and
    /// cost one lookup.
    ///
    /// Work is distributed dynamically (an atomic cursor over the cross
    /// product), so a thread that drew small models keeps pulling work
    /// while another chews through TenTusscher-class ones.
    pub fn precompile(&self, models: &[Model], configs: &[PipelineKind], jobs: usize) -> usize {
        let jobs = jobs.max(1);
        let pairs: Vec<(&Model, PipelineKind)> = models
            .iter()
            .flat_map(|m| configs.iter().map(move |&c| (m, c)))
            .collect();
        let before = self.stats().misses;
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(pairs.len().max(1)) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(model, config)) = pairs.get(i) else {
                        break;
                    };
                    self.get_or_compile(model, config);
                });
            }
        });
        (self.stats().misses - before) as usize
    }
}

/// Every pipeline configuration the experiments exercise, across the
/// three vector ISAs — the "whole roster" precompilation set.
pub fn all_pipeline_kinds() -> Vec<PipelineKind> {
    use limpet_codegen::pipeline::VectorIsa;
    let mut kinds = vec![PipelineKind::Baseline];
    for isa in [VectorIsa::Sse, VectorIsa::Avx2, VectorIsa::Avx512] {
        kinds.extend([
            PipelineKind::LimpetMlir(isa),
            PipelineKind::LimpetMlirAos(isa),
            PipelineKind::LimpetMlirNoLut(isa),
            PipelineKind::CompilerSimd(isa),
            PipelineKind::LimpetMlirSpline(isa),
        ]);
    }
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Simulation, Workload};
    use limpet_codegen::pipeline::VectorIsa;
    use limpet_models::model;

    #[test]
    fn cache_hits_share_one_compilation() {
        let cache = KernelCache::new();
        let m = model("BeelerReuter");
        let a = cache.get_or_compile(&m, PipelineKind::Baseline);
        let b = cache.get_or_compile(&m, PipelineKind::Baseline);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be the same entry");
        assert!(a.kernel().shares_compilation(b.kernel()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

        // A different pipeline is a different entry.
        let c = cache.get_or_compile(&m, PipelineKind::LimpetMlir(VectorIsa::Avx2));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn bytecode_opt_toggle_is_part_of_the_key() {
        let cache = KernelCache::new();
        let m = model("Plonsey");
        let optimized = cache.get_or_compile(&m, PipelineKind::Baseline);
        limpet_vm::set_bytecode_opt(false);
        let plain = cache.get_or_compile(&m, PipelineKind::Baseline);
        limpet_vm::set_bytecode_opt(true);
        assert!(
            !Arc::ptr_eq(&optimized, &plain),
            "ablation must not reuse the optimized entry"
        );
        assert_eq!(cache.stats().entries, 2);
        // The optimizer shows up as a synthetic pass in the report, with
        // counters only when it ran.
        let run = |ck: &CompiledKernel| {
            ck.pass_report()
                .passes
                .iter()
                .find(|p| p.name == "bytecode-opt")
                .expect("bytecode-opt pass recorded")
                .clone()
        };
        assert!(!run(&optimized).counters.is_empty());
        assert!(run(&plain).counters.is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_structure_not_identity() {
        let m1 = model("HodgkinHuxley");
        let m2 = model("HodgkinHuxley");
        assert_eq!(model_fingerprint(&m1), model_fingerprint(&m2));
        let other = model("BeelerReuter");
        assert_ne!(model_fingerprint(&m1), model_fingerprint(&other));
    }

    #[test]
    fn cached_and_cold_kernels_produce_identical_trajectories() {
        let m = model("MitchellSchaeffer");
        let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
        let wl = Workload {
            n_cells: 16,
            steps: 0,
            dt: 0.05,
        };
        // Cold: compiled directly, bypassing every cache.
        let mut cold = Simulation::new_uncached(&m, config, &wl);
        // Warm: served from a cache entry.
        let cache = KernelCache::new();
        cache.get_or_compile(&m, config); // populate
        let entry = cache.get_or_compile(&m, config);
        let mut warm = Simulation::with_kernel(entry.kernel().clone(), entry.layout(), &wl);
        assert_eq!(cache.stats().hits, 1);

        for _ in 0..500 {
            cold.step();
            warm.step();
        }
        for cell in 0..wl.n_cells {
            // Bit-identical, not approximately equal: the cached kernel is
            // the same compilation, so the arithmetic is the same.
            assert_eq!(
                cold.vm(cell).to_bits(),
                warm.vm(cell).to_bits(),
                "cell {cell} diverged"
            );
        }
    }

    #[test]
    fn parallel_precompile_populates_every_pair() {
        let cache = KernelCache::new();
        let models: Vec<_> = ["HodgkinHuxley", "MitchellSchaeffer", "FentonKarma"]
            .iter()
            .map(|n| model(n))
            .collect();
        let kinds = [
            PipelineKind::Baseline,
            PipelineKind::LimpetMlir(VectorIsa::Avx2),
        ];
        let compiled = cache.precompile(&models, &kinds, 4);
        assert_eq!(compiled, 6);
        assert_eq!(cache.stats().entries, 6);
        // Re-running compiles nothing new.
        assert_eq!(cache.precompile(&models, &kinds, 4), 0);
    }
}
