//! The compilation service: a shared, thread-safe cache of compiled
//! kernels, plus parallel roster precompilation.
//!
//! Every figure runner used to re-lower and re-tabulate the same
//! `(model, pipeline)` pair once per measurement repeat — for the full
//! `--all` run that is thousands of redundant compilations of 43 models.
//! [`KernelCache`] compiles each pair once and hands out [`Kernel`]
//! clones, which are a few refcount bumps since the kernel's program and
//! LUTs sit behind `Arc` (see `limpet_vm::Kernel`).
//!
//! Keys are `(model fingerprint, PipelineKind, bytecode-opt toggle)`.
//! The fingerprint hashes the model's full checked structure (name,
//! states, parameters, statements), so two models that happen to share a
//! name but differ in content — e.g. synthetic specs with different
//! knobs — occupy distinct entries. The bytecode-optimizer toggle is
//! part of the key because `--no-bytecode-opt` changes the compiled
//! program: an ablation run must not be served a cached optimized
//! kernel (or vice versa).

use crate::error::CompileError;
use crate::faults::{self, FaultKind};
use crate::health::{Incident, IncidentKind, Tier};
use crate::sim::{model_info, storage_layout, PipelineKind};
use limpet_easyml::Model;
use limpet_vm::{Kernel, StateLayout};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One cached compilation: the lowered IR module, the executable kernel,
/// the unoptimized sibling kernel (the raw tier of the degradation
/// ladder), the storage layout the module mandates, and the pass
/// manager's execution report from the cold compile that produced it.
#[derive(Debug)]
pub struct CompiledKernel {
    module: limpet_ir::Module,
    kernel: Kernel,
    raw_kernel: Kernel,
    layout: StateLayout,
    pass_report: limpet_passes::RunReport,
}

impl CompiledKernel {
    /// Compiles `model` under `config` from scratch (no cache involved).
    ///
    /// # Panics
    ///
    /// Panics when the pipeline or bytecode compilation fails (roster
    /// models are tested not to). Fault-tolerant callers go through
    /// [`CompiledKernel::try_compile`] or the cache's resilient lookup.
    pub fn compile(model: &Model, config: PipelineKind) -> CompiledKernel {
        CompiledKernel::try_compile(model, config)
            .unwrap_or_else(|e| panic!("kernel compilation failed for {}: {e}", model.name))
    }

    /// Non-panicking [`CompiledKernel::compile`]: every stage failure —
    /// pipeline verification, bytecode emission — comes back as a
    /// structured [`CompileError`]. This is also where the
    /// [`FaultKind::VerifyFail`] injection point lives: an armed plan
    /// corrupts the lowered module so verification genuinely fails.
    pub fn try_compile(
        model: &Model,
        config: PipelineKind,
    ) -> Result<CompiledKernel, CompileError> {
        let (mut module, mut pass_report) = config.try_build_with_report(model)?;
        if let Some(seed) = faults::take(FaultKind::VerifyFail) {
            faults::corrupt_module(&mut module, seed);
            if let Err(error) = limpet_ir::verify_module(&module) {
                return Err(CompileError::Pipeline(
                    limpet_pm::PipelineError::VerifyFailed {
                        pass: limpet_pm::PassManager::INPUT.to_string(),
                        error,
                    },
                ));
            }
        }
        let info = model_info(model);
        let opt = limpet_vm::bytecode_opt_enabled();
        let started = std::time::Instant::now();
        // Compile both the optimized and the raw program in one go; the
        // raw sibling shares the LUTs and is what the degradation ladder
        // falls back to when the optimized bytecode misbehaves.
        let (opt_kernel, opt_stats, raw_kernel) = Kernel::from_module_both(&module, &info)?;
        let kernel = if opt { opt_kernel } else { raw_kernel.clone() };
        // Surface the bytecode optimizer as one more (synthetic) pass so
        // `Compiled::pass_report()` shows its counters next to the IR
        // passes. When disabled it still appears, with zero counters, so
        // ablation reports are visibly "optimizer off" rather than silent.
        pass_report.passes.push(limpet_pm::PassRun {
            name: "bytecode-opt",
            changed: opt && opt_stats.changed(),
            duration: started.elapsed(),
            counters: if opt {
                opt_stats.counters()
            } else {
                Vec::new()
            },
        });
        let layout = storage_layout(&module);
        Ok(CompiledKernel {
            module,
            kernel,
            raw_kernel,
            layout,
            pass_report,
        })
    }

    /// The lowered IR module.
    pub fn module(&self) -> &limpet_ir::Module {
        &self.module
    }

    /// The executable kernel (clone it to run — clones share the
    /// compilation).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The unoptimized sibling of [`CompiledKernel::kernel`]: the same
    /// module compiled with the bytecode optimizer off, sharing its LUTs.
    /// This is the raw tier of the optimized → raw → reference ladder.
    pub fn raw_kernel(&self) -> &Kernel {
        &self.raw_kernel
    }

    /// The state storage layout the module mandates.
    pub fn layout(&self) -> StateLayout {
        self.layout
    }

    /// The pass manager's execution report from the cold compile: one
    /// [`limpet_passes::PassRun`] per pipeline pass, with wall time and
    /// counters. Cache hits share the entry, so this is always the
    /// timing of the compile that actually ran — except for entries
    /// reloaded from the disk tier, whose report is a single synthetic
    /// `"disk-load"` pass (see [`crate::persist`]).
    pub fn pass_report(&self) -> &limpet_passes::RunReport {
        &self.pass_report
    }

    /// Reassembles an entry from parts reconstructed off disk
    /// ([`crate::persist::DiskCache::load`]). Crate-private: the only
    /// legitimate producer of parts is the persistence layer's verified
    /// decode path.
    pub(crate) fn from_parts(
        module: limpet_ir::Module,
        kernel: Kernel,
        raw_kernel: Kernel,
        layout: StateLayout,
        pass_report: limpet_passes::RunReport,
    ) -> CompiledKernel {
        CompiledKernel {
            module,
            kernel,
            raw_kernel,
            layout,
            pass_report,
        }
    }
}

/// FNV-1a accumulator that consumes formatted text directly, so hashing
/// a model's debug representation allocates nothing.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Ok(())
    }
}

/// A content fingerprint of a checked model: stable within a process and
/// across identical sources, sensitive to any structural change (the
/// debug representation covers the name, every state/external/parameter,
/// and the full statement bodies).
pub fn model_fingerprint(model: &Model) -> u64 {
    use std::fmt::Write;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    write!(w, "{model:?}").expect("fmt to hasher cannot fail");
    w.0
}

/// Cache hit/miss counters (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory map.
    pub hits: u64,
    /// Lookups that compiled a new entry from scratch (cold compiles —
    /// disk hits are counted separately, not here).
    pub misses: u64,
    /// Lookups that missed in memory but reloaded a verified entry from
    /// the disk tier (no compilation ran).
    pub disk_hits: u64,
    /// Disk entries found but rejected by an integrity check (each one
    /// degraded to a cold compile and an incident).
    pub disk_rejects: u64,
    /// Entries persisted to the disk tier.
    pub disk_writes: u64,
    /// Entries currently resident (successful compilations only).
    pub entries: usize,
    /// Quarantined entries currently resident (models whose compilation
    /// failed; negative results so a broken model fails once, not per
    /// lookup).
    pub quarantined: usize,
    /// Times the map lock was found poisoned and recovered.
    pub poison_recoveries: u64,
    /// Full-population steps executed through resident kernels (the
    /// optimized and raw siblings of every entry, summed) — the signal
    /// the native tier's promotion threshold watches.
    pub executed_steps: u64,
    /// Native kernels compiled and validated by this process.
    pub native_compiles: u64,
    /// Native kernels reloaded from the persisted `.so` container (no
    /// compiler ran).
    pub native_disk_hits: u64,
    /// Native slots currently ready to hot-swap.
    pub native_ready: usize,
    /// Native slots quarantined (compile, load, or probation failure).
    pub native_quarantined: usize,
    /// Native compiler invocations killed by the compile watchdog.
    pub native_cc_timeouts: u64,
    /// Backoff retries spent waiting for the disk tier's directory lock
    /// (zero when no disk tier is attached).
    pub disk_lock_retries: u64,
    /// Stale (crashed-writer) disk lock files broken.
    pub disk_stale_locks_broken: u64,
}

impl CacheStats {
    /// The counters as one compact JSON object — the machine-readable
    /// twin of the `figures --cache stat` pretty-printer, served verbatim
    /// by `limpet-serve`'s `stats` verb so nothing downstream has to
    /// parse human-formatted text.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"hits\":{},\"misses\":{},\"disk_hits\":{},",
                "\"disk_rejects\":{},\"disk_writes\":{},\"entries\":{},",
                "\"quarantined\":{},\"poison_recoveries\":{},",
                "\"executed_steps\":{},\"native_compiles\":{},",
                "\"native_disk_hits\":{},\"native_ready\":{},",
                "\"native_quarantined\":{},\"native_cc_timeouts\":{},",
                "\"disk_lock_retries\":{},",
                "\"disk_stale_locks_broken\":{}}}"
            ),
            self.hits,
            self.misses,
            self.disk_hits,
            self.disk_rejects,
            self.disk_writes,
            self.entries,
            self.quarantined,
            self.poison_recoveries,
            self.executed_steps,
            self.native_compiles,
            self.native_disk_hits,
            self.native_ready,
            self.native_quarantined,
            self.native_cc_timeouts,
            self.disk_lock_retries,
            self.disk_stale_locks_broken,
        )
    }
}

/// A negative cache entry: the model failed to compile under this
/// configuration, and the failure is remembered so every later lookup
/// fails fast instead of re-running a doomed compilation (or re-tripping
/// a panic).
#[derive(Debug)]
pub struct QuarantineEntry {
    /// The model that failed.
    pub model: String,
    /// The configuration it failed under.
    pub config: PipelineKind,
    /// Why it failed.
    pub error: CompileError,
}

#[derive(Debug, Clone)]
enum CacheSlot {
    Ready(Arc<CompiledKernel>),
    Quarantined(Arc<QuarantineEntry>),
}

/// A kernel obtained through the degradation-aware lookup
/// ([`KernelCache::get_or_compile_resilient`]): the compiled entry plus
/// which tier of the optimized → raw → reference ladder it landed on and
/// every incident recorded getting there.
#[derive(Debug)]
pub struct ResilientKernel {
    /// The compiled entry serving this kernel.
    pub entry: Arc<CompiledKernel>,
    /// The tier the lookup landed on.
    pub tier: Tier,
    /// The pipeline actually compiled — the requested one, or
    /// [`PipelineKind::Baseline`] after a reference-tier fallback.
    pub config: PipelineKind,
    /// Incidents recorded during this lookup (fallbacks, quarantines).
    pub incidents: Vec<Incident>,
}

impl ResilientKernel {
    /// The kernel for the landed tier: the entry's optimized kernel on
    /// [`Tier::Optimized`] and [`Tier::Reference`], its raw sibling on
    /// [`Tier::Raw`]. A [`Tier::Native`] landing also hands back the
    /// optimized bytecode kernel — the native code runs *beside* it (and
    /// must agree bit-for-bit), so the bytecode kernel stays the
    /// authoritative compilation the simulation owns.
    pub fn kernel(&self) -> &Kernel {
        match self.tier {
            Tier::Raw => self.entry.raw_kernel(),
            Tier::Native | Tier::Optimized | Tier::Reference => self.entry.kernel(),
        }
    }
}

/// A thread-safe map from `(model fingerprint, PipelineKind,
/// bytecode-opt toggle)` to compiled kernels.
///
/// Compilation happens outside the map lock, so concurrent misses on
/// *different* keys compile in parallel; concurrent misses on the *same*
/// key race benignly (first insert wins, the loser's work is dropped).
///
/// The cache is also the containment boundary of the fault-tolerant
/// chain: compilation panics are caught and converted into quarantine
/// entries, a poisoned map lock is recovered rather than propagated, and
/// both events land in [`KernelCache::incidents`].
#[derive(Debug, Default)]
pub struct KernelCache {
    map: Mutex<HashMap<(u64, PipelineKind, bool), CacheSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_rejects: AtomicU64,
    disk_writes: AtomicU64,
    poison_recoveries: AtomicU64,
    incidents: Mutex<Vec<Incident>>,
    /// The durable tier, when attached ([`KernelCache::set_disk_cache`]):
    /// consulted between a memory miss and a cold compile, written after
    /// every successful compile.
    disk: Mutex<Option<Arc<crate::persist::DiskCache>>>,
    /// When set, every lookup compiles fresh and nothing is stored
    /// (`figures --no-cache`, A/B validation).
    bypass: std::sync::atomic::AtomicBool,
    /// The native-tier slot registry: background C compilations keyed by
    /// emitted-source fingerprint (see [`crate::native`]).
    native: Arc<crate::native::NativeRegistry>,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> KernelCache {
        KernelCache::default()
    }

    /// The process-wide shared cache (what [`crate::Simulation::new`]
    /// uses).
    pub fn global() -> &'static KernelCache {
        static GLOBAL: OnceLock<KernelCache> = OnceLock::new();
        GLOBAL.get_or_init(KernelCache::new)
    }

    /// Turns caching off (every lookup compiles fresh, nothing is
    /// stored) or back on. Off is the `figures --no-cache` mode, kept
    /// for A/B-validating that cached and cold runs agree.
    pub fn set_enabled(&self, enabled: bool) {
        self.bypass.store(!enabled, Ordering::Relaxed);
    }

    /// Attaches (or with `None` detaches) the durable disk tier. Once
    /// attached, memory misses consult the disk before compiling and
    /// successful compiles are persisted for later processes.
    pub fn set_disk_cache(&self, disk: Option<Arc<crate::persist::DiskCache>>) {
        *self.disk.lock().unwrap_or_else(|p| p.into_inner()) = disk;
    }

    /// The attached disk tier, if any.
    pub fn disk_cache(&self) -> Option<Arc<crate::persist::DiskCache>> {
        self.disk.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// The native-tier slot registry owned by this cache. Simulations
    /// route promotion requests here so background compilations are
    /// shared across runs and their counters/incidents surface in
    /// [`KernelCache::stats`] / [`KernelCache::incidents`].
    pub fn native_registry(&self) -> &Arc<crate::native::NativeRegistry> {
        &self.native
    }

    /// Locks the entry map, recovering (and recording) a poisoned lock.
    ///
    /// A panic while compiling used to poison this mutex and take every
    /// later lookup down with it — one broken model ending a whole roster
    /// run. The map holds only completed inserts (compilation happens
    /// outside the lock), so the data is consistent and recovery is safe.
    fn map_lock(&self) -> MutexGuard<'_, HashMap<(u64, PipelineKind, bool), CacheSlot>> {
        match self.map.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                self.map.clear_poison();
                self.log(Incident::new(
                    IncidentKind::CachePoisonRecovered,
                    "<cache>",
                    "kernel-cache mutex was poisoned by a panicking thread; recovered",
                ));
                poisoned.into_inner()
            }
        }
    }

    pub(crate) fn log(&self, incident: Incident) {
        self.incidents
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(incident);
    }

    /// Every incident the cache has recorded — quarantines, poison
    /// recoveries, and the native registry's build outcomes — in order
    /// (native incidents appended). The runtime counterpart lives on
    /// [`crate::Simulation::incidents`].
    pub fn incidents(&self) -> Vec<Incident> {
        let mut all = self
            .incidents
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        all.extend(self.native.incidents());
        all
    }

    /// Deliberately poisons the map lock (a thread panics while holding
    /// it) — the [`FaultKind::CachePoison`] injection point.
    fn poison(&self) {
        let guard = self.map_lock();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _held = guard;
            panic!("injected kernel-cache poisoning");
        }));
    }

    /// Returns the cached compilation for `(model, config)`, compiling it
    /// on first use.
    ///
    /// # Panics
    ///
    /// Panics when the model fails to compile — including when it is
    /// already quarantined from an earlier failed attempt (negative
    /// results are cached too). Roster callers that must survive broken
    /// models use [`KernelCache::try_get_or_compile`] or
    /// [`KernelCache::get_or_compile_resilient`].
    pub fn get_or_compile(&self, model: &Model, config: PipelineKind) -> Arc<CompiledKernel> {
        match self.try_get_or_compile(model, config) {
            Ok(entry) => entry,
            Err(q) => panic!(
                "model '{}' failed to compile under {}: {}",
                q.model,
                q.config.label(),
                q.error
            ),
        }
    }

    /// Returns the cached compilation for `(model, config)`, compiling it
    /// on first use; failures come back as a shared [`QuarantineEntry`].
    ///
    /// Failure is sticky: the first failed compilation of a key inserts a
    /// quarantine entry, and every later lookup of that key returns it
    /// without compiling again. Panics during compilation are caught and
    /// quarantined as [`CompileError::Panicked`], so one broken model
    /// neither aborts nor poisons a shared cache.
    ///
    /// # Errors
    ///
    /// Returns the quarantine entry recording why compilation failed.
    pub fn try_get_or_compile(
        &self,
        model: &Model,
        config: PipelineKind,
    ) -> Result<Arc<CompiledKernel>, Arc<QuarantineEntry>> {
        let bypass = self.bypass.load(Ordering::Relaxed);
        let key = (
            model_fingerprint(model),
            config,
            limpet_vm::bytecode_opt_enabled(),
        );
        if !bypass {
            if let Some(slot) = self.map_lock().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return match slot {
                    CacheSlot::Ready(entry) => Ok(Arc::clone(entry)),
                    CacheSlot::Quarantined(q) => Err(Arc::clone(q)),
                };
            }
            // Memory miss: consult the durable tier before compiling.
            // Quarantines are never persisted, so disk can only hand back
            // verified successful compilations; any integrity failure
            // degrades to the cold compile below with an incident.
            if let Some(disk) = self.disk_cache() {
                let disk_key = crate::persist::EntryKey {
                    fingerprint: key.0,
                    config: key.1,
                    opt: key.2,
                };
                match disk.load(&disk_key, model) {
                    crate::persist::DiskLoad::Hit(entry) => {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        let slot = CacheSlot::Ready(Arc::new(*entry));
                        return match self.map_lock().entry(key).or_insert(slot) {
                            CacheSlot::Ready(entry) => Ok(Arc::clone(entry)),
                            CacheSlot::Quarantined(q) => Err(Arc::clone(q)),
                        };
                    }
                    crate::persist::DiskLoad::Miss => {}
                    crate::persist::DiskLoad::Rejected(reason) => {
                        self.disk_rejects.fetch_add(1, Ordering::Relaxed);
                        self.log(Incident::new(
                            IncidentKind::DiskCacheRejected,
                            &model.name,
                            format!("disk cache entry rejected ({reason}); recompiling"),
                        ));
                    }
                }
            }
        }
        // Miss: compile without holding the lock, containing panics.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CompiledKernel::try_compile(model, config)
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(CompileError::Panicked(msg))
        });
        let slot = match built {
            Ok(entry) => {
                let entry = Arc::new(entry);
                if !bypass {
                    self.persist_entry(&key, model, &entry);
                }
                CacheSlot::Ready(entry)
            }
            Err(error) => {
                let q = Arc::new(QuarantineEntry {
                    model: model.name.clone(),
                    config,
                    error,
                });
                self.log(Incident::new(
                    IncidentKind::Quarantined,
                    &model.name,
                    q.error.to_string(),
                ));
                CacheSlot::Quarantined(q)
            }
        };
        if bypass {
            match slot {
                CacheSlot::Ready(entry) => return Ok(entry),
                CacheSlot::Quarantined(q) => return Err(q),
            }
        }
        match self.map_lock().entry(key).or_insert(slot) {
            CacheSlot::Ready(entry) => Ok(Arc::clone(entry)),
            CacheSlot::Quarantined(q) => Err(Arc::clone(q)),
        }
    }

    /// Writes a freshly compiled entry to the disk tier, if one is
    /// attached. Only successful compilations reach this — quarantined
    /// failures stay process-local (a negative result must be retried,
    /// not replayed, by the next process). Store failures degrade to an
    /// incident: persistence is an optimization, never a correctness
    /// dependency.
    fn persist_entry(
        &self,
        key: &(u64, PipelineKind, bool),
        model: &Model,
        entry: &CompiledKernel,
    ) {
        let Some(disk) = self.disk_cache() else {
            return;
        };
        let disk_key = crate::persist::EntryKey {
            fingerprint: key.0,
            config: key.1,
            opt: key.2,
        };
        match disk.store(&disk_key, &model.name, entry) {
            Ok(()) => {
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.log(Incident::new(
                IncidentKind::DiskCacheDegraded,
                &model.name,
                format!("could not persist kernel ({e}); continuing in-memory only"),
            )),
        }
    }

    /// The degradation-aware lookup: tries the requested configuration
    /// first, and on compile failure falls back to the scalar reference
    /// pipeline ([`PipelineKind::Baseline`]), recording every step as an
    /// [`Incident`]. An armed [`FaultKind::BytecodeCorrupt`] plan lands
    /// the result on [`Tier::Raw`] (the unoptimized sibling kernel), and
    /// an armed [`FaultKind::CachePoison`] plan poisons the map lock
    /// first so the recovery path runs.
    ///
    /// # Errors
    ///
    /// Returns the quarantine entry of the *last* tier tried when even
    /// the reference pipeline fails to compile.
    pub fn get_or_compile_resilient(
        &self,
        model: &Model,
        config: PipelineKind,
    ) -> Result<ResilientKernel, Arc<QuarantineEntry>> {
        if faults::take(FaultKind::CachePoison).is_some() {
            self.poison();
        }
        let mut incidents = Vec::new();
        let (entry, mut tier, config) = match self.try_get_or_compile(model, config) {
            Ok(entry) => (entry, Tier::Optimized, config),
            Err(q) => {
                let detail = if config == PipelineKind::Baseline {
                    format!(
                        "{} failed to compile ({}); no tier below the reference pipeline",
                        config.label(),
                        q.error
                    )
                } else {
                    format!(
                        "{} failed to compile ({}); falling back to reference pipeline",
                        config.label(),
                        q.error
                    )
                };
                let incident = Incident::new(IncidentKind::TierFallback, &model.name, detail)
                    .to_tier(Tier::Reference);
                self.log(incident.clone());
                incidents.push(incident);
                if config == PipelineKind::Baseline {
                    // The reference pipeline itself failed; nothing below.
                    return Err(q);
                }
                let entry = self.try_get_or_compile(model, PipelineKind::Baseline)?;
                (entry, Tier::Reference, PipelineKind::Baseline)
            }
        };
        // The raw sibling is the refuge from optimizer trouble on whatever
        // entry we landed on — the requested pipeline's or the reference's.
        if faults::take(FaultKind::BytecodeCorrupt).is_some() {
            let incident = Incident::new(
                IncidentKind::BytecodeFail,
                &model.name,
                "optimized bytecode rejected (injected); using raw bytecode",
            )
            .to_tier(Tier::Raw);
            self.log(incident.clone());
            incidents.push(incident);
            tier = Tier::Raw;
        }
        Ok(ResilientKernel {
            entry,
            tier,
            config,
            incidents,
        })
    }

    /// Quarantined entries currently resident, in no particular order.
    pub fn quarantine(&self) -> Vec<Arc<QuarantineEntry>> {
        self.map_lock()
            .values()
            .filter_map(|slot| match slot {
                CacheSlot::Quarantined(q) => Some(Arc::clone(q)),
                CacheSlot::Ready(_) => None,
            })
            .collect()
    }

    /// Hit/miss/occupancy counters, the resident kernels' executed-step
    /// total, and the native registry's counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, quarantined, executed_steps) = {
            let map = self.map_lock();
            let quarantined = map
                .values()
                .filter(|s| matches!(s, CacheSlot::Quarantined(_)))
                .count();
            let executed_steps = map
                .values()
                .filter_map(|s| match s {
                    CacheSlot::Ready(e) => Some(e),
                    CacheSlot::Quarantined(_) => None,
                })
                .map(|e| {
                    let main = e.kernel().executed_steps();
                    // With the optimizer off, the entry's main kernel IS
                    // the raw sibling (one shared counter) — don't count
                    // the same steps twice.
                    if e.kernel().shares_compilation(e.raw_kernel()) {
                        main
                    } else {
                        main + e.raw_kernel().executed_steps()
                    }
                })
                .sum();
            (map.len() - quarantined, quarantined, executed_steps)
        };
        let native = self.native.stats();
        let disk = self.disk_cache().map(|d| d.stats()).unwrap_or_default();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_rejects: self.disk_rejects.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            entries,
            quarantined,
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
            executed_steps,
            native_compiles: native.compiles,
            native_disk_hits: native.disk_hits,
            native_ready: native.ready,
            native_quarantined: native.quarantined,
            native_cc_timeouts: native.cc_timeouts,
            disk_lock_retries: disk.lock_retries,
            disk_stale_locks_broken: disk.stale_locks_broken,
        }
    }

    /// Drops every entry, including quarantined ones (counters are
    /// preserved).
    pub fn clear(&self) {
        self.map_lock().clear();
        self.incidents
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// Compiles every `(model, config)` pair on `jobs` worker threads,
    /// populating the cache. Returns the number of pairs compiled (cache
    /// misses); pairs already resident are counted as skipped work and
    /// cost one lookup.
    ///
    /// Work is distributed dynamically (an atomic cursor over the cross
    /// product), so a thread that drew small models keeps pulling work
    /// while another chews through TenTusscher-class ones.
    pub fn precompile(&self, models: &[Model], configs: &[PipelineKind], jobs: usize) -> usize {
        let jobs = jobs.max(1);
        let pairs: Vec<(&Model, PipelineKind)> = models
            .iter()
            .flat_map(|m| configs.iter().map(move |&c| (m, c)))
            .collect();
        let before = self.stats().misses;
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(pairs.len().max(1)) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(model, config)) = pairs.get(i) else {
                        break;
                    };
                    // A broken model quarantines instead of panicking, so
                    // one bad roster entry cannot end precompilation.
                    let _ = self.try_get_or_compile(model, config);
                });
            }
        });
        (self.stats().misses - before) as usize
    }
}

/// Every pipeline configuration the experiments exercise, across the
/// three vector ISAs — the "whole roster" precompilation set.
pub fn all_pipeline_kinds() -> Vec<PipelineKind> {
    use limpet_codegen::pipeline::VectorIsa;
    let mut kinds = vec![PipelineKind::Baseline];
    for isa in [VectorIsa::Sse, VectorIsa::Avx2, VectorIsa::Avx512] {
        kinds.extend([
            PipelineKind::LimpetMlir(isa),
            PipelineKind::LimpetMlirAos(isa),
            PipelineKind::LimpetMlirNoLut(isa),
            PipelineKind::CompilerSimd(isa),
            PipelineKind::LimpetMlirSpline(isa),
        ]);
    }
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Simulation, Workload};
    use limpet_codegen::pipeline::VectorIsa;
    use limpet_models::model;

    #[test]
    fn cache_hits_share_one_compilation() {
        let cache = KernelCache::new();
        let m = model("BeelerReuter");
        let a = cache.get_or_compile(&m, PipelineKind::Baseline);
        let b = cache.get_or_compile(&m, PipelineKind::Baseline);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be the same entry");
        assert!(a.kernel().shares_compilation(b.kernel()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

        // A different pipeline is a different entry.
        let c = cache.get_or_compile(&m, PipelineKind::LimpetMlir(VectorIsa::Avx2));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn bytecode_opt_toggle_is_part_of_the_key() {
        let cache = KernelCache::new();
        let m = model("Plonsey");
        let optimized = cache.get_or_compile(&m, PipelineKind::Baseline);
        limpet_vm::set_bytecode_opt(false);
        let plain = cache.get_or_compile(&m, PipelineKind::Baseline);
        limpet_vm::set_bytecode_opt(true);
        assert!(
            !Arc::ptr_eq(&optimized, &plain),
            "ablation must not reuse the optimized entry"
        );
        assert_eq!(cache.stats().entries, 2);
        // The optimizer shows up as a synthetic pass in the report, with
        // counters only when it ran.
        let run = |ck: &CompiledKernel| {
            ck.pass_report()
                .passes
                .iter()
                .find(|p| p.name == "bytecode-opt")
                .expect("bytecode-opt pass recorded")
                .clone()
        };
        assert!(!run(&optimized).counters.is_empty());
        assert!(run(&plain).counters.is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_structure_not_identity() {
        let m1 = model("HodgkinHuxley");
        let m2 = model("HodgkinHuxley");
        assert_eq!(model_fingerprint(&m1), model_fingerprint(&m2));
        let other = model("BeelerReuter");
        assert_ne!(model_fingerprint(&m1), model_fingerprint(&other));
    }

    #[test]
    fn cached_and_cold_kernels_produce_identical_trajectories() {
        let m = model("MitchellSchaeffer");
        let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
        let wl = Workload {
            n_cells: 16,
            steps: 0,
            dt: 0.05,
        };
        // Cold: compiled directly, bypassing every cache.
        let mut cold = Simulation::new_uncached(&m, config, &wl);
        // Warm: served from a cache entry.
        let cache = KernelCache::new();
        cache.get_or_compile(&m, config); // populate
        let entry = cache.get_or_compile(&m, config);
        let mut warm = Simulation::with_kernel(entry.kernel().clone(), entry.layout(), &wl);
        assert_eq!(cache.stats().hits, 1);

        for _ in 0..500 {
            cold.step();
            warm.step();
        }
        for cell in 0..wl.n_cells {
            // Bit-identical, not approximately equal: the cached kernel is
            // the same compilation, so the arithmetic is the same.
            assert_eq!(
                cold.vm(cell).to_bits(),
                warm.vm(cell).to_bits(),
                "cell {cell} diverged"
            );
        }
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        let cache = KernelCache::new();
        let m = model("HodgkinHuxley");
        cache.poison();
        // The next lookup recovers the lock, records the incident, and
        // serves the compilation as if nothing happened.
        let entry = cache.get_or_compile(&m, PipelineKind::Baseline);
        assert!(!entry.kernel().shares_compilation(entry.raw_kernel()));
        let s = cache.stats();
        assert!(s.poison_recoveries >= 1, "recovery must be counted: {s:?}");
        assert_eq!((s.entries, s.quarantined), (1, 0));
        assert!(cache
            .incidents()
            .iter()
            .any(|i| i.kind == crate::IncidentKind::CachePoisonRecovered));
        // The poison flag was cleared: later locks are clean.
        assert_eq!(cache.stats().poison_recoveries, s.poison_recoveries);
    }

    #[test]
    fn resilient_lookup_lands_on_the_optimized_tier_by_default() {
        let cache = KernelCache::new();
        let m = model("Plonsey");
        let rk = cache
            .get_or_compile_resilient(&m, PipelineKind::Baseline)
            .expect("healthy model compiles");
        assert_eq!(rk.tier, crate::Tier::Optimized);
        assert!(rk.incidents.is_empty());
        assert!(rk.kernel().shares_compilation(rk.entry.kernel()));
    }

    #[test]
    fn cache_stats_json_shape_is_pinned() {
        // Telemetry consumers (limpet-serve `stats`, `figures --cache
        // stat --json`) key on these exact field names; this test is the
        // tripwire against silent renames or drops.
        let stats = CacheStats {
            hits: 1,
            misses: 2,
            disk_hits: 3,
            disk_rejects: 4,
            disk_writes: 5,
            entries: 6,
            quarantined: 7,
            poison_recoveries: 8,
            executed_steps: 9,
            native_compiles: 10,
            native_disk_hits: 11,
            native_ready: 12,
            native_quarantined: 13,
            native_cc_timeouts: 14,
            disk_lock_retries: 15,
            disk_stale_locks_broken: 16,
        };
        assert_eq!(
            stats.to_json(),
            concat!(
                "{\"hits\":1,\"misses\":2,\"disk_hits\":3,",
                "\"disk_rejects\":4,\"disk_writes\":5,\"entries\":6,",
                "\"quarantined\":7,\"poison_recoveries\":8,",
                "\"executed_steps\":9,\"native_compiles\":10,",
                "\"native_disk_hits\":11,\"native_ready\":12,",
                "\"native_quarantined\":13,\"native_cc_timeouts\":14,",
                "\"disk_lock_retries\":15,\"disk_stale_locks_broken\":16}"
            )
        );
    }

    #[test]
    fn parallel_precompile_populates_every_pair() {
        let cache = KernelCache::new();
        let models: Vec<_> = ["HodgkinHuxley", "MitchellSchaeffer", "FentonKarma"]
            .iter()
            .map(|n| model(n))
            .collect();
        let kinds = [
            PipelineKind::Baseline,
            PipelineKind::LimpetMlir(VectorIsa::Avx2),
        ];
        let compiled = cache.precompile(&models, &kinds, 4);
        assert_eq!(compiled, 6);
        assert_eq!(cache.stats().entries, 6);
        // Re-running compiles nothing new.
        assert_eq!(cache.precompile(&models, &kinds, 4), 0);
    }
}
