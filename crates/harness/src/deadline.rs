//! Cooperative deadlines, cancellation, and bounded retry.
//!
//! Three survivability primitives shared by every long-running layer of
//! the stack (the guarded simulation loop, the sharded worker pool, the
//! service daemon's job executor):
//!
//! * [`CancelToken`] — a latched cancellation flag plus an optional
//!   wall-clock deadline, modeled on [`crate::shutdown`]'s
//!   one-atomic-flag discipline but *per job* instead of per process.
//!   Work polls the token at its natural step boundaries; cancellation
//!   therefore always lands between steps, never mid-step, so there is
//!   no torn state to repair. The token is cheap to clone (an `Arc`)
//!   and cheap to poll (one atomic load on the live path).
//! * [`CancelCause`] — why the token tripped: an explicit cancel (the
//!   watchdog, a shutdown) or an expired deadline. The cause maps onto
//!   a typed [`crate::Incident`] with kind
//!   [`crate::IncidentKind::DeadlineExceeded`].
//! * [`retry_with_backoff`] / [`backoff_delay`] — bounded retry with
//!   exponential backoff and *deterministic* jitter from
//!   [`limpet_rng::SmallRng`], for transient failures like disk-cache
//!   lock contention. Deterministic jitter keeps chaos runs
//!   reproducible: the same seed produces the same delay schedule.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use limpet_rng::SmallRng;

/// Why a [`CancelToken`] stopped the work it guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// Explicit cancellation: a watchdog, shutdown, or client abort.
    Cancelled,
    /// The token's wall-clock budget expired.
    DeadlineExceeded,
}

impl CancelCause {
    /// Stable kebab-case name, used in incident details and wire events.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelCause::Cancelled => "cancelled",
            CancelCause::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

impl std::fmt::Display for CancelCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    /// Latched tri-state: live → cancelled | deadline. Transitions happen
    /// at most once (compare-exchange from `LIVE`), so the first cause
    /// wins and every later poll reports the same one.
    state: AtomicU8,
    deadline: Option<Instant>,
}

/// A cooperative, cloneable cancellation token with an optional deadline.
///
/// Latches like [`crate::shutdown::requested`]: once tripped — by
/// [`CancelToken::cancel`] or by the deadline passing during a poll — it
/// stays tripped, and every clone observes the same cause. Polling is one
/// atomic load while live; the deadline is only consulted on the poll
/// path, so an un-polled token costs nothing.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline: trips only on explicit
    /// [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
            }),
        }
    }

    /// A token that trips once `budget` of wall-clock time has elapsed
    /// from now (or earlier, on explicit cancel).
    pub fn with_budget(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// A token that trips once `deadline` passes (or earlier, on explicit
    /// cancel).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Some(deadline),
            }),
        }
    }

    /// Trips the token with [`CancelCause::Cancelled`]. Idempotent; a
    /// token already tripped (by either cause) keeps its original cause.
    pub fn cancel(&self) {
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, CANCELLED, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Polls the token: `None` while live, `Some(cause)` once tripped.
    /// The deadline is checked (and latched) here, so the transition to
    /// [`CancelCause::DeadlineExceeded`] happens at a poll site — a step
    /// boundary — by construction.
    pub fn checked(&self) -> Option<CancelCause> {
        match self.inner.state.load(Ordering::SeqCst) {
            CANCELLED => return Some(CancelCause::Cancelled),
            DEADLINE => return Some(CancelCause::DeadlineExceeded),
            _ => {}
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                // Latch; explicit cancellation may have raced us, in
                // which case its cause wins.
                let _ = self.inner.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                return self.checked();
            }
        }
        None
    }

    /// True once the token has tripped (either cause). Polls the
    /// deadline like [`CancelToken::checked`].
    pub fn is_cancelled(&self) -> bool {
        self.checked().is_some()
    }

    /// The deadline instant, when this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Wall-clock budget left before the deadline trips: `None` when the
    /// token has no deadline, zero once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// The delay before retry `attempt` (0-based) under exponential backoff
/// with deterministic jitter: `base · 2^attempt`, capped at `cap`, then
/// scaled by a jitter factor in `[0.5, 1.5)` drawn from a
/// [`SmallRng`] stream seeded with `seed ^ attempt` — so a fixed seed
/// reproduces the exact delay schedule, attempt by attempt.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cap);
    let mut rng = SmallRng::seed_from_u64(seed ^ u64::from(attempt));
    // gen_range over micros keeps the jitter deterministic and integral.
    let micros = capped.as_micros().min(u128::from(u64::MAX)) as u64;
    if micros == 0 {
        return capped;
    }
    let jittered = micros / 2 + rng.gen_range(0..micros.max(1));
    Duration::from_micros(jittered)
}

/// Runs `op` up to `attempts` times, sleeping [`backoff_delay`] between
/// failures. `op` receives the 0-based attempt number. Returns the first
/// `Ok`, or the last `Err` once the attempt budget is spent. Sleeps also
/// stop early when `token` trips, returning the last error immediately —
/// a cancelled job must not sit out a backoff schedule.
///
/// # Errors
///
/// The final attempt's error, when every attempt fails (or the token
/// trips mid-schedule).
pub fn retry_with_backoff<T, E>(
    attempts: u32,
    base: Duration,
    cap: Duration,
    seed: u64,
    token: Option<&CancelToken>,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let attempts = attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts {
            if token.is_some_and(|t| t.is_cancelled()) {
                break;
            }
            std::thread::sleep(backoff_delay(attempt, base, cap, seed));
        }
    }
    Err(last.expect("at least one attempt runs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_latches_explicit_cancel() {
        let t = CancelToken::new();
        assert_eq!(t.checked(), None);
        assert!(!t.is_cancelled());
        t.cancel();
        assert_eq!(t.checked(), Some(CancelCause::Cancelled));
        // Latched: cancelling again or polling again does not change it.
        t.cancel();
        assert_eq!(t.checked(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn token_trips_on_deadline_and_clones_agree() {
        let t = CancelToken::with_budget(Duration::from_millis(10));
        let clone = t.clone();
        assert_eq!(t.checked(), None);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(t.checked(), Some(CancelCause::DeadlineExceeded));
        assert_eq!(clone.checked(), Some(CancelCause::DeadlineExceeded));
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn first_cause_wins() {
        let t = CancelToken::with_budget(Duration::ZERO);
        // Deadline already passed, but an explicit cancel lands before
        // the first poll: the poll latches whichever got there first and
        // reports it consistently ever after.
        t.cancel();
        let first = t.checked().expect("tripped");
        assert_eq!(t.checked(), Some(first));
    }

    #[test]
    fn deadlineless_token_reports_no_remaining() {
        let t = CancelToken::new();
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(16);
        for attempt in 0..8 {
            assert_eq!(
                backoff_delay(attempt, base, cap, 42),
                backoff_delay(attempt, base, cap, 42),
                "same seed, same delay"
            );
            // Jitter spans [cap/2, 3·cap/2); nothing exceeds that.
            assert!(backoff_delay(attempt, base, cap, 42) < cap * 2);
        }
        // A late attempt sits at the cap's jitter band, above base.
        assert!(backoff_delay(7, base, cap, 1) >= cap / 2);
    }

    #[test]
    fn retry_returns_first_success_and_counts_attempts() {
        let mut tried = Vec::new();
        let r: Result<u32, &str> = retry_with_backoff(
            5,
            Duration::from_micros(10),
            Duration::from_micros(100),
            7,
            None,
            |attempt| {
                tried.push(attempt);
                if attempt == 2 {
                    Ok(99)
                } else {
                    Err("transient")
                }
            },
        );
        assert_eq!(r, Ok(99));
        assert_eq!(tried, vec![0, 1, 2]);
    }

    #[test]
    fn retry_exhausts_and_returns_last_error() {
        let r: Result<(), String> = retry_with_backoff(
            3,
            Duration::from_micros(10),
            Duration::from_micros(50),
            7,
            None,
            |attempt| Err(format!("fail {attempt}")),
        );
        assert_eq!(r, Err("fail 2".to_string()));
    }

    #[test]
    fn retry_stops_early_when_token_trips() {
        let token = CancelToken::new();
        token.cancel();
        let mut attempts = 0;
        let r: Result<(), &str> = retry_with_backoff(
            10,
            Duration::from_millis(50),
            Duration::from_millis(50),
            7,
            Some(&token),
            |_| {
                attempts += 1;
                Err("transient")
            },
        );
        assert!(r.is_err());
        assert_eq!(
            attempts, 1,
            "cancelled token skips the rest of the schedule"
        );
    }
}
