//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§4–§5). Each runner returns plain data structs; the
//! `figures` binary prints them as the paper's rows/series.
//!
//! | runner | paper artifact |
//! |---|---|
//! | [`fig2_single_thread`] | Fig. 2 — 1-thread AVX-512 speedup per model |
//! | [`fig3_threads32`] | Fig. 3 — 32-thread AVX-512 speedup per model |
//! | [`fig4_scaling`] | Fig. 4 — class-average times vs. thread count |
//! | [`fig5_isa_threads`] | Fig. 5 — geomean speedup per ISA × threads |
//! | [`layout_ablation`] | §4.4 — AoS vs. AoSoA |
//! | [`lut_ablation`] | §3.4.2 — LUT on/off, scalar/vector interp |
//! | [`icc_comparison`] | §5 — compiler-simd vs. limpetMLIR geomean |
//! | [`fig6_roofline`] | Fig. 6 — operational intensity vs. GFlops/s |

use crate::cache::KernelCache;
use crate::sim::{PipelineKind, Simulation, Workload};
use crate::threads::{measure_median, measure_median_secs, ShardedSimulation, TimingModel};
use limpet_codegen::pipeline::VectorIsa;
use limpet_models::{model, ModelEntry, SizeClass, ROSTER};

/// Thread counts evaluated by the paper (powers of two, 1..32).
pub const THREAD_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Where a thread-count time came from: real OS threads or the
/// simulated-parallel [`TimingModel`]. Every figure row carries its
/// provenance so mixed (measured-below / modeled-above) sweeps stay
/// honest in the CSVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Wall clock of a [`ShardedSimulation`] worker-pool run.
    Measured,
    /// [`TimingModel::estimate`] from a measured single-thread time.
    Modeled,
}

impl Provenance {
    /// The CSV tag (`measured` / `modeled`).
    pub fn as_str(self) -> &'static str {
        match self {
            Provenance::Measured => "measured",
            Provenance::Modeled => "modeled",
        }
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How the thread-scaling runners obtain t(T): thread counts up to
/// `real_max` are measured on real OS threads (persistent worker pool,
/// median of `repeats` runs), larger ones fall back to the
/// simulated-parallel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadTiming {
    /// The simulated-parallel model used above the measured region (and
    /// exclusively when `real_max == 0`).
    pub tm: TimingModel,
    /// Largest thread count measured with real OS threads; 0 disables
    /// measurement entirely (the pre-real-threads behaviour).
    pub real_max: usize,
}

impl ThreadTiming {
    /// Model-only timing — every row is tagged `modeled`.
    pub fn model_only(tm: TimingModel) -> ThreadTiming {
        ThreadTiming { tm, real_max: 0 }
    }

    /// Real-thread timing: measure every T up to `max_threads` (when
    /// given) or up to the host's available cores, model above. Passing
    /// an explicit `max_threads` beyond the core count opts into
    /// oversubscribed measurement.
    pub fn real_threads(tm: TimingModel, max_threads: Option<usize>) -> ThreadTiming {
        ThreadTiming {
            tm,
            real_max: max_threads.unwrap_or_else(available_cores),
        }
    }

    /// Provenance of a time at `threads` under this policy.
    pub fn provenance(&self, threads: usize) -> Provenance {
        if threads <= self.real_max {
            Provenance::Measured
        } else {
            Provenance::Modeled
        }
    }
}

/// Cores available to this process (1 when undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Measured wall clock of a `steps`-step run at `threads` real OS
/// threads: a [`ShardedSimulation`] worker pool is spawned once, warmed
/// up with two untimed steps, and the median of `opts.repeats` timed
/// step loops is taken — the pool reports its own interval, so spawn and
/// command wake-up cost stay outside the measurement.
pub fn measure_run_threaded(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    opts: &ExperimentOptions,
    threads: usize,
) -> f64 {
    let wl = Workload {
        n_cells: opts.n_cells,
        steps: 0,
        dt: 0.01,
    };
    let mut sharded = ShardedSimulation::new(m, config, &wl, threads);
    sharded.run_threaded(2); // warm-up: caches, LUT pages, park/unpark
    measure_median_secs(opts.repeats, || sharded.run_threaded(opts.steps))
}

/// Single-thread anchor of one configuration — everything the
/// simulated-parallel model needs to extrapolate t(T).
#[derive(Debug, Clone, Copy)]
struct Anchor {
    /// Measured single-thread wall time.
    t1: f64,
    /// Bytes moved per step (for the bandwidth term).
    bytes: u64,
    /// Vector width (for the barrier flush term).
    width: usize,
}

/// t(T) of one configuration: measured on the worker pool inside the
/// timing policy's real region, modeled from the anchor above it.
fn time_at(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    opts: &ExperimentOptions,
    timing: &ThreadTiming,
    threads: usize,
    anchor: Anchor,
) -> (f64, Provenance) {
    match timing.provenance(threads) {
        Provenance::Measured => (
            measure_run_threaded(m, config, opts, threads),
            Provenance::Measured,
        ),
        Provenance::Modeled => (
            timing
                .tm
                .estimate(anchor.t1, anchor.bytes, opts.steps, threads, anchor.width),
            Provenance::Modeled,
        ),
    }
}

/// Global experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Cells per model (paper: 8192).
    pub n_cells: usize,
    /// Steps per measurement (paper: 100 000; scaled down by default so
    /// the suite finishes in minutes on a laptop).
    pub steps: usize,
    /// Timed repetitions per configuration (median taken).
    pub repeats: usize,
    /// Restrict to these model names (empty = full roster).
    pub only: Vec<String>,
}

impl Default for ExperimentOptions {
    fn default() -> ExperimentOptions {
        ExperimentOptions {
            n_cells: 1024,
            steps: 30,
            repeats: 3,
            only: Vec::new(),
        }
    }
}

impl ExperimentOptions {
    /// The roster entries these options select (respecting `only`).
    pub fn roster(&self) -> Vec<&'static ModelEntry> {
        ROSTER
            .iter()
            .filter(|e| self.only.is_empty() || self.only.iter().any(|n| n == e.name))
            .collect()
    }
}

/// Builds the simulation for one measurement. Normal runs take the plain
/// path ([`Simulation::new`], which panics on a broken model — a
/// measurement of a broken kernel is meaningless). Under fault injection
/// ([`crate::faults::injection_active`]) the resilient path is used
/// instead, so a quarantined kernel degrades the run (the `figures`
/// summary reports it) rather than killing the whole roster sweep;
/// `None` means even the reference tier is quarantined.
fn measurement_sim(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    wl: &Workload,
) -> Option<Simulation> {
    if crate::faults::injection_active() {
        Simulation::new_resilient(m, config, wl, crate::HealthPolicy::FallbackRaw).ok()
    } else {
        Some(Simulation::new(m, config, wl))
    }
}

/// Measures the wall time of a full single-thread run of one configuration.
///
/// Under fault injection a fully quarantined configuration yields `NaN`
/// (skipped by [`geomean`]) instead of panicking.
pub fn measure_run(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    opts: &ExperimentOptions,
) -> f64 {
    let wl = Workload {
        n_cells: opts.n_cells,
        steps: opts.steps,
        dt: 0.01,
    };
    let Some(mut sim) = measurement_sim(m, config, &wl) else {
        return f64::NAN;
    };
    // Warm up: tables built in `new`; run a couple of steps for caches.
    // `run_guarded` on an unguarded simulation is plain stepping; under
    // injection it additionally absorbs a seeded mid-run NaN by tier
    // fallback (give-up is recorded as an incident, not a crash).
    let _ = sim.run_guarded(2);
    let t = measure_median(opts.repeats, || {
        let _ = sim.run_guarded(opts.steps);
    });
    // Runtime incidents (NaN clamps, tier fallbacks) otherwise die with
    // the simulation; forward them to the global log so the `figures`
    // summary reports the full degradation story, not just compile-time
    // events. Only injection runs produce them, so the fast path pays
    // nothing.
    if crate::faults::injection_active() {
        for incident in sim.incidents() {
            KernelCache::global().log(incident.clone());
        }
    }
    t
}

/// FNV-1a digest of every cell's membrane-potential bits after a short
/// guarded run — the bit-identity acceptance check: two runs (cold-compiled vs.
/// disk-cached, faulted vs. clean) agree iff their trajectories are
/// bit-identical. Under fault injection the resilient path is used, so
/// an injected fault that degrades gracefully still digests (and must
/// still match the clean run, since every recovery recompiles the same
/// kernel). Returns `None` only when even the reference tier is
/// quarantined.
pub fn trajectory_digest(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    wl: &Workload,
    steps: usize,
) -> Option<u64> {
    trajectory_digest_tiered(m, config, wl, steps).map(|(digest, _)| digest)
}

/// [`trajectory_digest`] plus the [`crate::Tier`] the simulation
/// *finished* on. The digest CSV surfaces this column so a resumed run
/// that lands on a different tier than the uninterrupted one is visible
/// in the artifact itself (the digests still match — tiers are
/// bit-identical — but a tier mismatch is the first thing to check when
/// they do not).
pub fn trajectory_digest_tiered(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    wl: &Workload,
    steps: usize,
) -> Option<(u64, crate::Tier)> {
    let mut sim = measurement_sim(m, config, wl)?;
    let _ = sim.run_guarded(steps);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in 0..wl.n_cells {
        for b in sim.vm(cell).to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    Some((h, sim.tier()))
}

/// Bytes moved per step (for the timing model's memory floor) and the
/// profile of one step.
fn step_profile(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    n_cells: usize,
) -> limpet_vm::Profile {
    let wl = Workload {
        n_cells,
        steps: 0,
        dt: 0.01,
    };
    let Some(mut sim) = measurement_sim(m, config, &wl) else {
        // Only reachable under fault injection: the model is quarantined
        // on every tier. An empty profile keeps the sweep alive — the
        // paired `measure_run` already yields NaN, so the row reads as
        // degraded rather than silently wrong.
        eprintln!(
            "warning: model '{}' is quarantined on every tier; empty profile",
            m.name
        );
        return limpet_vm::Profile::default();
    };
    sim.step_profiled()
}

/// One model's speedup measurement.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Model name.
    pub model: String,
    /// Size class name.
    pub class: String,
    /// Baseline time (s).
    pub baseline: f64,
    /// limpetMLIR time (s).
    pub limpet_mlir: f64,
    /// Speedup (baseline / limpetMLIR).
    pub speedup: f64,
}

/// Figure-2 result: per-model single-thread speedups, plus the geomean.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Per-model rows, roster (small→large) order.
    pub rows: Vec<SpeedupRow>,
    /// Geometric-mean speedup (paper: 5.25x on AVX-512).
    pub geomean: f64,
}

/// Geometric mean helper.
///
/// Only finite, strictly positive values contribute: a zero or negative
/// ratio has no logarithm, and one poisoned row (e.g. a timer returning
/// 0 on a degenerate run) would otherwise drag the whole mean to 0 or
/// NaN. Such values are skipped with a warning on stderr (and trip a
/// debug assertion outside fault-injection runs, where they always
/// indicate a measurement bug; under injection a NaN row just means a
/// quarantined configuration). Returns NaN when no valid value remains.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut logsum, mut n) = (0.0, 0usize);
    for x in xs {
        if !(x.is_finite() && x > 0.0) {
            // Under fault injection a NaN row is a legitimate degraded
            // result (a quarantined configuration), not a measurement bug.
            debug_assert!(
                crate::faults::injection_active(),
                "geomean: non-positive or non-finite value {x}"
            );
            eprintln!("warning: geomean skipping non-positive value {x}");
            continue;
        }
        logsum += x.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (logsum / n as f64).exp()
}

/// Fig. 2: single-thread baseline vs. limpetMLIR AVX-512.
pub fn fig2_single_thread(opts: &ExperimentOptions) -> Fig2 {
    fig2_with_jobs(opts, 1)
}

/// [`fig2_single_thread`] with its measurement loop sharded across
/// `jobs` worker threads: each roster model is one work cell (compile +
/// baseline and limpetMLIR timings), pulled from an atomic cursor so a
/// thread that drew small models keeps working while another chews
/// through a TenTusscher-class one. Rows land in fixed roster slots, so
/// the output order (and the CSV) is identical whatever the completion
/// order; `jobs = 1` is exactly the serial harness.
///
/// Concurrent timing trades some isolation for throughput (worker
/// threads share memory bandwidth), which cancels in the speedup ratio —
/// both configurations of one model are measured on the same thread —
/// but use `jobs = 1` when absolute seconds matter.
pub fn fig2_with_jobs(opts: &ExperimentOptions, jobs: usize) -> Fig2 {
    fig2_checkpointed(opts, jobs, None)
}

/// Encodes measured timing samples into a snapshot's `meta` sidecar as
/// exact f64 bit patterns, so a resumed measurement reports precisely
/// what the interrupted one clocked.
fn encode_samples(samples: &[f64]) -> String {
    let words: Vec<String> = samples
        .iter()
        .map(|s| format!("{:016x}", s.to_bits()))
        .collect();
    format!("fig2-samples {}", words.join(" "))
        .trim_end()
        .to_string()
}

fn decode_samples(meta: Option<&str>) -> Vec<f64> {
    let Some(rest) = meta.and_then(|m| m.strip_prefix("fig2-samples")) else {
        return Vec::new();
    };
    rest.split_whitespace()
        .filter_map(|w| u64::from_str_radix(w, 16).ok().map(f64::from_bits))
        .collect()
}

fn median_of(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    match v.len() {
        0 => f64::NAN,
        n if n % 2 == 1 => v[n / 2],
        n => (v[n / 2 - 1] + v[n / 2]) / 2.0,
    }
}

/// [`measure_run`], interruptible mid-model: polls
/// [`crate::shutdown::requested`] between timed repetitions, and on an
/// interruption snapshots the in-flight simulation state (plus the
/// samples already clocked, in the snapshot's `meta` sidecar) into
/// `store` under `key`. The next sweep restores that state and clocks
/// only the remaining repetitions — continuing the *same* trajectory,
/// since repeated timing runs step one simulation continuously anyway.
///
/// Returns `None` when interrupted (a snapshot has been saved), `NaN`
/// when the model is quarantined on every tier (matching
/// [`measure_run`]), and the median sample otherwise — at which point
/// the store entry for `key` has been removed.
fn measure_run_resumable(
    m: &limpet_easyml::Model,
    config: PipelineKind,
    opts: &ExperimentOptions,
    store: &crate::checkpoint::SnapshotStore,
    key: &str,
) -> Option<f64> {
    let wl = Workload {
        n_cells: opts.n_cells,
        steps: opts.steps,
        dt: 0.01,
    };
    let label = config.label();
    let mut samples: Vec<f64> = Vec::new();
    let mut steps_done: u64 = 0;
    let mut sim: Option<Simulation> = None;
    if let Some(snap) = store.load(key).snapshot {
        if snap.key_matches(&m.name, &label, wl.n_cells, wl.dt).is_ok() {
            samples = decode_samples(snap.meta.as_deref());
            if samples.len() >= opts.repeats {
                // Interrupted after the last sample but before the row
                // was journaled: nothing left to run.
                store.remove(key);
                return Some(median_of(&samples));
            }
            match measurement_sim(m, config, &wl) {
                None => return Some(f64::NAN),
                Some(mut s) => match s.restore(&snap) {
                    Ok(()) => {
                        eprintln!(
                            "checkpoint: resumed {key} mid-model at step {} with {} sample(s)",
                            snap.steps_done,
                            samples.len()
                        );
                        steps_done = snap.steps_done;
                        sim = Some(s);
                    }
                    Err(e) => {
                        eprintln!("warning: mid-model resume failed for {key} ({e}); re-measuring");
                        samples.clear();
                    }
                },
            }
        } else {
            store.remove(key);
        }
    }
    let mut sim = match sim {
        Some(s) => s,
        None => {
            let Some(mut s) = measurement_sim(m, config, &wl) else {
                return Some(f64::NAN);
            };
            // Warm up, exactly as [`measure_run`] does.
            let _ = s.run_guarded(2);
            steps_done = 2;
            s
        }
    };
    while samples.len() < opts.repeats {
        if crate::shutdown::requested() {
            let mut snap = sim.snapshot(&label, steps_done);
            snap.meta = Some(encode_samples(&samples));
            match store.save(key, &snap) {
                Ok(_) => eprintln!(
                    "checkpoint: saved mid-model state for {key} at step {steps_done} \
                     ({} of {} sample(s) clocked)",
                    samples.len(),
                    opts.repeats
                ),
                Err(e) => eprintln!("warning: mid-model checkpoint failed for {key}: {e}"),
            }
            return None;
        }
        let t0 = std::time::Instant::now();
        let _ = sim.run_guarded(opts.steps);
        samples.push(t0.elapsed().as_secs_f64());
        steps_done += opts.steps as u64;
    }
    if crate::faults::injection_active() {
        for incident in sim.incidents() {
            KernelCache::global().log(incident.clone());
        }
    }
    store.remove(key);
    Some(median_of(&samples))
}

/// The checkpoint-journal identity of a fig-2 sweep: a journal written
/// under different measurement options must restart, not resume — a
/// half-sweep at 1024 cells stitched to a half-sweep at 8192 would be a
/// silently corrupt figure.
fn fig2_journal_header(opts: &ExperimentOptions) -> String {
    let roster: Vec<&str> = opts.roster().iter().map(|e| e.name).collect();
    format!(
        "fig2-v1 n_cells={} steps={} repeats={} models={}",
        opts.n_cells,
        opts.steps,
        opts.repeats,
        roster.join("+")
    )
}

/// One journal line per completed row; round-trips through
/// [`parse_fig2_row`]. Times are stored as exact f64 bits — a resumed
/// sweep reports precisely what the interrupted one measured.
fn fig2_journal_line(row: &SpeedupRow) -> String {
    format!(
        "{},{},{:016x},{:016x}",
        row.model,
        row.class,
        row.baseline.to_bits(),
        row.limpet_mlir.to_bits()
    )
}

fn parse_fig2_row(line: &str) -> Option<SpeedupRow> {
    let mut fields = line.split(',');
    let (model, class, tb, tl) = (
        fields.next()?,
        fields.next()?,
        fields.next()?,
        fields.next()?,
    );
    if fields.next().is_some() {
        return None;
    }
    let baseline = f64::from_bits(u64::from_str_radix(tb, 16).ok()?);
    let limpet_mlir = f64::from_bits(u64::from_str_radix(tl, 16).ok()?);
    Some(SpeedupRow {
        model: model.to_owned(),
        class: class.to_owned(),
        baseline,
        limpet_mlir,
        speedup: baseline / limpet_mlir,
    })
}

/// [`fig2_with_jobs`] with an optional checkpoint journal
/// ([`crate::persist::Journal`]) at `journal`: every completed model is
/// recorded as it finishes, a restarted sweep (same options, same path)
/// skips the recorded rows and measures only the remainder, and the
/// journal file is removed once the sweep completes. `figures --fig2
/// --checkpoint PATH` drives this.
pub fn fig2_checkpointed(
    opts: &ExperimentOptions,
    jobs: usize,
    journal: Option<&std::path::Path>,
) -> Fig2 {
    let entries = opts.roster();
    let jobs = jobs.clamp(1, entries.len().max(1));
    let mut slots: Vec<Option<SpeedupRow>> = Vec::new();
    slots.resize_with(entries.len(), || None);
    // Resume: pre-fill slots from the journal's completed rows. Rows for
    // unknown models (stale journal edited by hand) are ignored and
    // simply re-measured.
    // Mid-model state snapshots live in a directory beside the journal:
    // the journal records *finished* rows, the store holds the in-flight
    // model's simulation state when a SIGINT lands mid-measurement.
    let store = journal.map(|path| {
        let dir = path.with_extension("state");
        crate::checkpoint::SnapshotStore::new(&dir)
            .unwrap_or_else(|e| panic!("cannot open mid-model state dir {}: {e}", dir.display()))
    });
    let journal = journal.map(|path| {
        let (journal, done) = crate::persist::Journal::open(path, &fig2_journal_header(opts))
            .unwrap_or_else(|e| panic!("cannot open checkpoint journal {}: {e}", path.display()));
        let mut resumed = 0;
        for row in done.iter().filter_map(|l| parse_fig2_row(l)) {
            if let Some(i) = entries.iter().position(|e| e.name == row.model) {
                slots[i] = Some(row);
                resumed += 1;
            }
        }
        if resumed > 0 {
            eprintln!("checkpoint: resuming fig2 sweep, {resumed} row(s) already measured");
        }
        journal
    });
    let slots = std::sync::Mutex::new(slots);
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // Graceful interruption (SIGINT/SIGTERM): stop picking up
                // work at the row boundary. Completed rows are already in
                // the journal, which is kept for the resumed run.
                if crate::shutdown::requested() {
                    break;
                }
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(e) = entries.get(i) else {
                    break;
                };
                if slots.lock().unwrap()[i].is_some() {
                    continue; // resumed from the journal
                }
                let m = model(e.name);
                let (tb, tl) = if let Some(store) = &store {
                    // Store keys carry the measurement shape not already
                    // covered by the snapshot's own key echo (steps,
                    // repeats), so a sweep re-run with different options
                    // never stitches half-measurements together.
                    let key = |cfg: &str| {
                        format!("fig2/{}/{cfg}/s{}r{}", e.name, opts.steps, opts.repeats)
                    };
                    let Some(tb) = measure_run_resumable(
                        &m,
                        PipelineKind::Baseline,
                        opts,
                        store,
                        &key("baseline"),
                    ) else {
                        break; // interrupted; state snapshot saved
                    };
                    let Some(tl) = measure_run_resumable(
                        &m,
                        PipelineKind::LimpetMlir(VectorIsa::Avx512),
                        opts,
                        store,
                        &key("limpetMLIR-avx512"),
                    ) else {
                        break;
                    };
                    (tb, tl)
                } else {
                    (
                        measure_run(&m, PipelineKind::Baseline, opts),
                        measure_run(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), opts),
                    )
                };
                let row = SpeedupRow {
                    model: e.name.to_owned(),
                    class: e.class.name().to_owned(),
                    baseline: tb,
                    limpet_mlir: tl,
                    speedup: tb / tl,
                };
                let mut slots = slots.lock().unwrap();
                // Journal under the slots lock so lines are whole and the
                // journal order matches completion order.
                if let Some(j) = &journal {
                    if let Err(e) = j.record(&fig2_journal_line(&row)) {
                        eprintln!("warning: checkpoint append failed: {e}");
                    }
                }
                slots[i] = Some(row);
            });
        }
    });
    if crate::shutdown::requested() {
        // Interrupted: keep the journal (the next run resumes from it)
        // and return the rows measured so far.
        let done: Vec<SpeedupRow> = slots.into_inner().unwrap().into_iter().flatten().collect();
        eprintln!(
            "interrupted: fig2 sweep stopped after {} of {} row(s); checkpoint kept",
            done.len(),
            entries.len()
        );
        let geomean = geomean(done.iter().map(|r| r.speedup));
        return Fig2 {
            rows: done,
            geomean,
        };
    }
    if let Some(j) = journal {
        if let Err(e) = j.finish() {
            eprintln!("warning: could not remove completed checkpoint journal: {e}");
        }
    }
    if let Some(store) = &store {
        // A completed sweep consumed every mid-model snapshot; drop the
        // (now empty) state directory beside the journal.
        let _ = std::fs::remove_dir_all(store.dir());
    }
    let rows: Vec<SpeedupRow> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every roster slot measured"))
        .collect();
    let geomean = geomean(rows.iter().map(|r| r.speedup));
    Fig2 { rows, geomean }
}

/// One model's speedup at a thread count, tagged with how its times were
/// obtained.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Model name.
    pub model: String,
    /// Size class name.
    pub class: String,
    /// Baseline time (s) at the figure's thread count.
    pub baseline: f64,
    /// limpetMLIR time (s) at the figure's thread count.
    pub limpet_mlir: f64,
    /// Speedup (baseline / limpetMLIR).
    pub speedup: f64,
    /// Whether the times were measured on real threads or modeled.
    pub provenance: Provenance,
}

/// Fig. 3 result: 32-thread per-model speedups with class geomeans.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Per-model rows.
    pub rows: Vec<Fig3Row>,
    /// Overall geomean (paper: 1.93x).
    pub geomean: f64,
    /// Per-class geomeans (paper: small 0.83x, medium 1.34x, large 6.03x).
    pub class_geomeans: Vec<(String, f64)>,
}

/// Fig. 3: both versions at 32 threads — measured on real threads when
/// the timing policy's real region reaches 32, simulated-parallel
/// otherwise (each row says which).
pub fn fig3_threads32(opts: &ExperimentOptions, timing: &ThreadTiming) -> Fig3 {
    let mut rows = Vec::new();
    for e in opts.roster() {
        let m = model(e.name);
        let (tb, tl, provenance) = time_pair(&m, opts, timing, 32);
        rows.push(Fig3Row {
            model: e.name.to_owned(),
            class: e.class.name().to_owned(),
            baseline: tb,
            limpet_mlir: tl,
            speedup: tb / tl,
            provenance,
        });
    }
    let geomean_all = geomean(rows.iter().map(|r| r.speedup));
    let class_geomeans = SizeClass::ALL
        .iter()
        .map(|c| {
            (
                c.name().to_owned(),
                geomean(
                    rows.iter()
                        .filter(|r| r.class == c.name())
                        .map(|r| r.speedup),
                ),
            )
        })
        .collect();
    Fig3 {
        rows,
        geomean: geomean_all,
        class_geomeans,
    }
}

/// t(T) for baseline and limpetMLIR AVX-512: pool-measured inside the
/// real region, measured-t1 + model above it.
fn time_pair(
    m: &limpet_easyml::Model,
    opts: &ExperimentOptions,
    timing: &ThreadTiming,
    threads: usize,
) -> (f64, f64, Provenance) {
    match timing.provenance(threads) {
        Provenance::Measured => {
            let tb = measure_run_threaded(m, PipelineKind::Baseline, opts, threads);
            let tl = measure_run_threaded(
                m,
                PipelineKind::LimpetMlir(VectorIsa::Avx512),
                opts,
                threads,
            );
            (tb, tl, Provenance::Measured)
        }
        Provenance::Modeled => {
            let tb1 = measure_run(m, PipelineKind::Baseline, opts);
            let tl1 = measure_run(m, PipelineKind::LimpetMlir(VectorIsa::Avx512), opts);
            let pb = step_profile(m, PipelineKind::Baseline, opts.n_cells);
            let pl = step_profile(m, PipelineKind::LimpetMlir(VectorIsa::Avx512), opts.n_cells);
            let tb = timing.tm.estimate(
                tb1,
                pb.bytes_read + pb.bytes_written,
                opts.steps,
                threads,
                1,
            );
            let tl = timing.tm.estimate(
                tl1,
                pl.bytes_read + pl.bytes_written,
                opts.steps,
                threads,
                8,
            );
            (tb, tl, Provenance::Modeled)
        }
    }
}

/// One Fig. 4 point: class-average times at a thread count.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Size class name.
    pub class: String,
    /// Thread count.
    pub threads: usize,
    /// Class-average baseline time (s).
    pub baseline_s: f64,
    /// Class-average limpetMLIR time (s).
    pub limpet_mlir_s: f64,
    /// Whether the times were measured on real threads or modeled.
    pub provenance: Provenance,
}

/// Fig. 4: class-average execution times across thread counts.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One point per (class, thread count).
    pub series: Vec<Fig4Point>,
}

/// Fig. 4 runner (AVX-512): thread counts inside the timing policy's
/// real region are measured per model on the worker pool, the rest come
/// from the simulated-parallel model.
pub fn fig4_scaling(opts: &ExperimentOptions, timing: &ThreadTiming) -> Fig4 {
    // Measure each model's single-thread time and byte profile once;
    // per-T times are then measured or modeled per the policy.
    struct M {
        m: limpet_easyml::Model,
        class: SizeClass,
        tb1: f64,
        tl1: f64,
        bb: u64,
        bl: u64,
    }
    let measured: Vec<M> = opts
        .roster()
        .iter()
        .map(|e| {
            let m = model(e.name);
            let tb1 = measure_run(&m, PipelineKind::Baseline, opts);
            let tl1 = measure_run(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), opts);
            let pb = step_profile(&m, PipelineKind::Baseline, opts.n_cells);
            let pl = step_profile(
                &m,
                PipelineKind::LimpetMlir(VectorIsa::Avx512),
                opts.n_cells,
            );
            M {
                class: e.class,
                tb1,
                tl1,
                bb: pb.bytes_read + pb.bytes_written,
                bl: pl.bytes_read + pl.bytes_written,
                m,
            }
        })
        .collect();
    let mut series = Vec::new();
    for class in SizeClass::ALL {
        let of_class: Vec<&M> = measured.iter().filter(|m| m.class == class).collect();
        if of_class.is_empty() {
            continue;
        }
        for &t in &THREAD_COUNTS {
            let avg_b = of_class
                .iter()
                .map(|m| {
                    let anchor = Anchor {
                        t1: m.tb1,
                        bytes: m.bb,
                        width: 1,
                    };
                    time_at(&m.m, PipelineKind::Baseline, opts, timing, t, anchor).0
                })
                .sum::<f64>()
                / of_class.len() as f64;
            let avg_l = of_class
                .iter()
                .map(|m| {
                    let anchor = Anchor {
                        t1: m.tl1,
                        bytes: m.bl,
                        width: 8,
                    };
                    time_at(
                        &m.m,
                        PipelineKind::LimpetMlir(VectorIsa::Avx512),
                        opts,
                        timing,
                        t,
                        anchor,
                    )
                    .0
                })
                .sum::<f64>()
                / of_class.len() as f64;
            series.push(Fig4Point {
                class: class.name().to_owned(),
                threads: t,
                baseline_s: avg_b,
                limpet_mlir_s: avg_l,
                provenance: timing.provenance(t),
            });
        }
    }
    Fig4 { series }
}

/// One Fig. 5 point: geomean speedup of an ISA at a thread count.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// ISA name.
    pub isa: String,
    /// Thread count.
    pub threads: usize,
    /// Geomean speedup over the roster.
    pub geomean: f64,
    /// Whether the times were measured on real threads or modeled.
    pub provenance: Provenance,
}

/// Fig. 5: geomean speedups per ISA per thread count.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One point per (ISA, thread count).
    pub series: Vec<Fig5Point>,
    /// Overall geomean over all models, ISAs, and thread counts
    /// (paper: 2.90x).
    pub overall_geomean: f64,
}

/// Fig. 5 runner: measured inside the timing policy's real region,
/// modeled above it.
pub fn fig5_isa_threads(opts: &ExperimentOptions, timing: &ThreadTiming) -> Fig5 {
    struct M {
        m: limpet_easyml::Model,
        tb1: f64,
        bb: u64,
        per_isa: Vec<(f64, u64)>, // (t1, bytes) per ISA
    }
    let measured: Vec<M> = opts
        .roster()
        .iter()
        .map(|e| {
            let m = model(e.name);
            let tb1 = measure_run(&m, PipelineKind::Baseline, opts);
            let pb = step_profile(&m, PipelineKind::Baseline, opts.n_cells);
            let per_isa = VectorIsa::ALL
                .iter()
                .map(|&isa| {
                    let t = measure_run(&m, PipelineKind::LimpetMlir(isa), opts);
                    let p = step_profile(&m, PipelineKind::LimpetMlir(isa), opts.n_cells);
                    (t, p.bytes_read + p.bytes_written)
                })
                .collect();
            M {
                tb1,
                bb: pb.bytes_read + pb.bytes_written,
                per_isa,
                m,
            }
        })
        .collect();

    let mut series = Vec::new();
    let mut all_speedups = Vec::new();
    for (i, isa) in VectorIsa::ALL.iter().enumerate() {
        for &t in &THREAD_COUNTS {
            let speedups: Vec<f64> = measured
                .iter()
                .map(|m| {
                    let base = Anchor {
                        t1: m.tb1,
                        bytes: m.bb,
                        width: 1,
                    };
                    let tb = time_at(&m.m, PipelineKind::Baseline, opts, timing, t, base).0;
                    let (tl1, bl) = m.per_isa[i];
                    let anchor = Anchor {
                        t1: tl1,
                        bytes: bl,
                        width: isa.lanes() as usize,
                    };
                    let tl = time_at(
                        &m.m,
                        PipelineKind::LimpetMlir(*isa),
                        opts,
                        timing,
                        t,
                        anchor,
                    )
                    .0;
                    tb / tl
                })
                .collect();
            let g = geomean(speedups.iter().copied());
            all_speedups.extend(speedups);
            series.push(Fig5Point {
                isa: isa.name().to_owned(),
                threads: t,
                geomean: g,
                provenance: timing.provenance(t),
            });
        }
    }
    Fig5 {
        series,
        overall_geomean: geomean(all_speedups),
    }
}

/// One cross-validation sample: the model's estimate vs. a real-thread
/// measurement of the same configuration.
#[derive(Debug, Clone)]
pub struct TmValidationRow {
    /// Model name.
    pub model: String,
    /// Size class name.
    pub class: String,
    /// Pipeline label (`baseline` / `limpetMLIR-AVX-512`).
    pub config: String,
    /// Thread count of the sample.
    pub threads: usize,
    /// Real-thread wall clock (s).
    pub measured_s: f64,
    /// [`TimingModel::estimate`] from the measured single-thread time (s).
    pub modeled_s: f64,
    /// Signed relative error `(modeled - measured) / measured`.
    pub rel_err: f64,
}

/// `figures --validate-tm` result: the simulated-parallel model
/// cross-validated against real threads on the overlap region.
#[derive(Debug, Clone)]
pub struct TmValidation {
    /// Per-sample rows.
    pub rows: Vec<TmValidationRow>,
    /// Mean absolute relative error per size class.
    pub per_class: Vec<(String, f64)>,
    /// Mean absolute relative error over all samples.
    pub overall: f64,
    /// The thread counts of the overlap region actually validated.
    pub threads: Vec<usize>,
}

/// Cross-validates the simulated-parallel model against real-thread
/// measurements on the overlap region: every paper thread count `T` with
/// `2 ≤ T ≤ timing.real_max` is both measured (worker pool) and modeled
/// (from the measured single-thread time), per model and per pipeline.
/// Returns per-class and overall mean absolute relative error; an empty
/// overlap (host with one core and no `--max-threads` override) yields
/// empty results.
pub fn validate_timing_model(opts: &ExperimentOptions, timing: &ThreadTiming) -> TmValidation {
    let threads: Vec<usize> = THREAD_COUNTS
        .iter()
        .copied()
        .filter(|&t| t > 1 && t <= timing.real_max)
        .collect();
    let mut rows = Vec::new();
    for e in opts.roster() {
        let m = model(e.name);
        for (config, width) in [
            (PipelineKind::Baseline, 1usize),
            (PipelineKind::LimpetMlir(VectorIsa::Avx512), 8),
        ] {
            let t1 = measure_run(&m, config, opts);
            let p = step_profile(&m, config, opts.n_cells);
            let bytes = p.bytes_read + p.bytes_written;
            for &t in &threads {
                let measured_s = measure_run_threaded(&m, config, opts, t);
                let modeled_s = timing.tm.estimate(t1, bytes, opts.steps, t, width);
                rows.push(TmValidationRow {
                    model: e.name.to_owned(),
                    class: e.class.name().to_owned(),
                    config: config.label(),
                    threads: t,
                    measured_s,
                    modeled_s,
                    rel_err: (modeled_s - measured_s) / measured_s,
                });
            }
        }
    }
    let mean_abs = |rows: &[&TmValidationRow]| -> f64 {
        if rows.is_empty() {
            return f64::NAN;
        }
        rows.iter().map(|r| r.rel_err.abs()).sum::<f64>() / rows.len() as f64
    };
    let per_class = SizeClass::ALL
        .iter()
        .map(|c| {
            let of_class: Vec<&TmValidationRow> =
                rows.iter().filter(|r| r.class == c.name()).collect();
            (c.name().to_owned(), mean_abs(&of_class))
        })
        .collect();
    let overall = mean_abs(&rows.iter().collect::<Vec<_>>());
    TmValidation {
        rows,
        per_class,
        overall,
        threads,
    }
}

/// §4.4 layout ablation result.
#[derive(Debug, Clone)]
pub struct LayoutAblation {
    /// `(model, speedup with AoS, speedup with AoSoA)` at one thread.
    pub rows: Vec<(String, f64, f64)>,
    /// Geomeans `(AoS, AoSoA)` — the paper reports 3.12x → 3.37x.
    pub geomeans: (f64, f64),
}

/// §4.4: the data-layout transformation's contribution.
pub fn layout_ablation(opts: &ExperimentOptions) -> LayoutAblation {
    let mut rows = Vec::new();
    for e in opts.roster() {
        let m = model(e.name);
        let tb = measure_run(&m, PipelineKind::Baseline, opts);
        let t_aos = measure_run(&m, PipelineKind::LimpetMlirAos(VectorIsa::Avx512), opts);
        let t_aosoa = measure_run(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), opts);
        rows.push((e.name.to_owned(), tb / t_aos, tb / t_aosoa));
    }
    let geomeans = (
        geomean(rows.iter().map(|r| r.1)),
        geomean(rows.iter().map(|r| r.2)),
    );
    LayoutAblation { rows, geomeans }
}

/// §3.4.2 LUT ablation result.
#[derive(Debug, Clone)]
pub struct LutAblation {
    /// `(model, speedup without LUT, speedup with scalar-interp LUT,
    /// speedup with vectorized LUT)` relative to baseline.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// §3.4.2: LUTs off / scalar interpolation / vectorized interpolation.
pub fn lut_ablation(opts: &ExperimentOptions) -> LutAblation {
    let mut rows = Vec::new();
    for e in opts.roster() {
        let m = model(e.name);
        if m.lookups.is_empty() {
            continue;
        }
        let tb = measure_run(&m, PipelineKind::Baseline, opts);
        let t_none = measure_run(&m, PipelineKind::LimpetMlirNoLut(VectorIsa::Avx512), opts);
        let t_scalar = measure_run(&m, PipelineKind::CompilerSimd(VectorIsa::Avx512), opts);
        let t_vec = measure_run(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), opts);
        rows.push((e.name.to_owned(), tb / t_none, tb / t_scalar, tb / t_vec));
    }
    LutAblation { rows }
}

/// §5 comparison result.
#[derive(Debug, Clone)]
pub struct IccComparison {
    /// Geomean speedup of compiler-simd (paper: icc 2.19x).
    pub compiler_simd: f64,
    /// Geomean speedup of limpetMLIR (paper: 3.37x).
    pub limpet_mlir: f64,
}

/// §5: auto-vectorizing-compiler configuration vs. limpetMLIR, geomean
/// over models and thread counts at AVX-512.
pub fn icc_comparison(opts: &ExperimentOptions, tm: &TimingModel) -> IccComparison {
    let mut s_icc = Vec::new();
    let mut s_mlir = Vec::new();
    for e in opts.roster() {
        let m = model(e.name);
        let tb1 = measure_run(&m, PipelineKind::Baseline, opts);
        let ti1 = measure_run(&m, PipelineKind::CompilerSimd(VectorIsa::Avx512), opts);
        let tl1 = measure_run(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), opts);
        let pb = step_profile(&m, PipelineKind::Baseline, opts.n_cells);
        let pi = step_profile(
            &m,
            PipelineKind::CompilerSimd(VectorIsa::Avx512),
            opts.n_cells,
        );
        let pl = step_profile(
            &m,
            PipelineKind::LimpetMlir(VectorIsa::Avx512),
            opts.n_cells,
        );
        for &t in &THREAD_COUNTS {
            let tb = tm.estimate(tb1, pb.bytes_read + pb.bytes_written, opts.steps, t, 1);
            let ti = tm.estimate(ti1, pi.bytes_read + pi.bytes_written, opts.steps, t, 8);
            let tl = tm.estimate(tl1, pl.bytes_read + pl.bytes_written, opts.steps, t, 8);
            s_icc.push(tb / ti);
            s_mlir.push(tb / tl);
        }
    }
    IccComparison {
        compiler_simd: geomean(s_icc),
        limpet_mlir: geomean(s_mlir),
    }
}

/// One roofline point (Fig. 6).
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    /// Model name.
    pub model: String,
    /// Size class.
    pub class: String,
    /// Operational intensity (Flops/Byte).
    pub intensity: f64,
    /// Achieved GFlops/s (32-thread modeled time).
    pub gflops: f64,
}

/// Fig. 6 result: points plus machine ceilings.
#[derive(Debug, Clone)]
pub struct Roofline {
    /// One point per model (limpetMLIR AVX-512, 32 threads).
    pub points: Vec<RooflinePoint>,
    /// Peak compute ceiling (GFlops/s), ERT-style measured then scaled to
    /// the modeled 32-core socket.
    pub peak_gflops: f64,
    /// DRAM bandwidth ceiling (GB/s) under the same scaling.
    pub dram_gbps: f64,
}

/// Fig. 6: roofline points from instruction-level flop/byte counts
/// (the paper instruments generated MLIR for memory operations and reads
/// HW counters for flops; we count both in the executing kernel).
pub fn fig6_roofline(opts: &ExperimentOptions, tm: &TimingModel) -> Roofline {
    let threads = 32;
    let mut points = Vec::new();
    for e in opts.roster() {
        let m = model(e.name);
        let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
        let p = step_profile(&m, config, opts.n_cells);
        let t1 = measure_run(&m, config, opts);
        let bytes = p.bytes_read + p.bytes_written;
        let t32 = tm.estimate(t1, bytes, opts.steps, threads, 8);
        let flops_total = p.flops as f64 * opts.steps as f64;
        points.push(RooflinePoint {
            model: e.name.to_owned(),
            class: e.class.name().to_owned(),
            intensity: p.intensity(),
            gflops: flops_total / t32 / 1e9,
        });
    }
    // ERT-style ceilings: measure single-thread FMA throughput & stream
    // bandwidth, scale to the modeled socket (32 cores, saturating DRAM).
    let peak1 = measure_peak_flops();
    Roofline {
        points,
        peak_gflops: peak1 * threads as f64 / 1e9,
        dram_gbps: tm.stream_bandwidth * tm.bandwidth_saturation / 1e9,
    }
}

/// Measures single-thread peak flops with an unrolled FMA loop.
pub fn measure_peak_flops() -> f64 {
    let mut acc = [1.0f64, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
    let (a, b) = (1.000_000_1f64, 1e-9f64);
    let iters = 4_000_000u64;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        for v in acc.iter_mut() {
            *v = v.mul_add(a, b);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&acc);
    (iters * 8 * 2) as f64 / secs
}

/// Extracts instruction statistics of both kernels for one model
/// (supplementary table: static op mix).
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Model name.
    pub model: String,
    /// Static instruction count, baseline kernel.
    pub baseline_instrs: usize,
    /// Static instruction count, limpetMLIR kernel.
    pub mlir_instrs: usize,
    /// LUT memory in bytes.
    pub lut_bytes: usize,
    /// IR operation count per dialect in the optimized module, e.g.
    /// `[("arith", 120), ("math", 14), ...]`.
    pub dialect_mix: Vec<(String, usize)>,
}

/// Collects kernel statistics over the roster.
pub fn kernel_stats(opts: &ExperimentOptions) -> Vec<KernelStats> {
    let cache = KernelCache::global();
    opts.roster()
        .iter()
        .map(|e| {
            let m = model(e.name);
            let kb = cache.get_or_compile(&m, PipelineKind::Baseline);
            let opt = cache.get_or_compile(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512));
            let (kb, kl, opt_module) = (kb.kernel(), opt.kernel(), opt.module());
            let mut by_dialect: std::collections::BTreeMap<String, usize> =
                std::collections::BTreeMap::new();
            for (op, n) in opt_module.op_histogram() {
                let dialect = op.split('.').next().unwrap_or("?").to_owned();
                *by_dialect.entry(dialect).or_insert(0) += n;
            }
            KernelStats {
                model: e.name.to_owned(),
                baseline_instrs: kb.program().instrs.len(),
                mlir_instrs: kl.program().instrs.len(),
                lut_bytes: kl.lut_bytes(),
                dialect_mix: by_dialect.into_iter().collect(),
            }
        })
        .collect()
}

/// One row of the native-tier benchmark: per-step wall-clock of the
/// optimized bytecode tier vs. the promoted native tier at width 1.
#[derive(Debug, Clone)]
pub struct NativeBenchRow {
    /// Model name.
    pub model: String,
    /// Size class (`small` / `medium` / `large`).
    pub class: String,
    /// Optimized bytecode tier, µs per step (min over repeats).
    pub bytecode_us: f64,
    /// Native tier, µs per step (min over repeats; NaN when native was
    /// unavailable and the row degraded to bytecode).
    pub native_us: f64,
    /// `bytecode_us / native_us` (NaN when native was unavailable).
    pub speedup: f64,
    /// Whether a fresh native run's full state (every state variable and
    /// external of every cell) matched a fresh bytecode run bit for bit.
    pub bit_identical: bool,
    /// Empty on success; the quarantine/eligibility reason otherwise.
    pub note: String,
}

/// The native-tier benchmark result (`BENCH_native_tier.json`).
#[derive(Debug, Clone)]
pub struct NativeBench {
    /// Per-model rows in roster order.
    pub rows: Vec<NativeBenchRow>,
    /// Geomean speedup over the rows where native ran.
    pub geomean: f64,
    /// Cells per simulation.
    pub n_cells: usize,
    /// Timed steps per repeat.
    pub steps: usize,
}

impl NativeBench {
    /// Machine-readable form (NaN prints as `null`).
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_owned()
            }
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"model\":\"{}\",\"class\":\"{}\",\"bytecode_us_per_step\":{},\
                     \"native_us_per_step\":{},\"speedup\":{},\"bit_identical\":{},\
                     \"note\":\"{}\"}}",
                    r.model,
                    r.class,
                    num(r.bytecode_us),
                    num(r.native_us),
                    num(r.speedup),
                    r.bit_identical,
                    r.note.replace('\\', "\\\\").replace('"', "\\\"")
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"native_tier\",\"n_cells\":{},\"steps\":{},\
             \"geomean_speedup\":{},\"rows\":[{}]}}",
            self.n_cells,
            self.steps,
            num(self.geomean),
            rows.join(",")
        )
    }
}

/// Benchmarks the native tier against the optimized bytecode tier over
/// the roster at width 1 (the scalar baseline pipeline, the only config
/// eligible for promotion): per model, promotes one simulation through
/// [`Simulation::promote_native_blocking`], proves full-state
/// bit-identity against a bytecode twin over `opts.steps` steps, then
/// times both tiers (min over `opts.repeats`). Rows where promotion
/// fails (toolchain missing, quarantine) degrade to bytecode and carry
/// the reason in [`NativeBenchRow::note`]; they are excluded from the
/// geomean.
pub fn native_tier_bench(opts: &ExperimentOptions) -> NativeBench {
    let cache = KernelCache::global();
    let wl = Workload {
        n_cells: opts.n_cells,
        steps: 0,
        dt: 0.01,
    };
    let mut rows = Vec::new();
    for e in opts.roster() {
        let m = model(e.name);
        let mut bytecode = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let mut native = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let note = match native.promote_native_blocking(cache) {
            Ok(()) => String::new(),
            Err(reason) => reason,
        };
        let promoted = note.is_empty();
        // Differential first, from matched fresh states: after the same
        // number of steps both tiers must agree on every bit.
        bytecode.run(opts.steps);
        native.run(opts.steps);
        let bit_identical = bytecode.state_bits() == native.state_bits();
        let time_us = |sim: &mut Simulation| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..opts.repeats.max(1) {
                let t0 = std::time::Instant::now();
                sim.run(opts.steps);
                let secs = t0.elapsed().as_secs_f64();
                best = best.min(secs / opts.steps.max(1) as f64 * 1e6);
            }
            best
        };
        let bytecode_us = time_us(&mut bytecode);
        let native_us = if promoted {
            time_us(&mut native)
        } else {
            f64::NAN
        };
        rows.push(NativeBenchRow {
            model: e.name.to_owned(),
            class: e.class.name().to_owned(),
            bytecode_us,
            native_us,
            speedup: bytecode_us / native_us,
            bit_identical,
            note,
        });
    }
    let promoted: Vec<f64> = rows
        .iter()
        .filter(|r| r.speedup.is_finite())
        .map(|r| r.speedup)
        .collect();
    let gm = if promoted.is_empty() {
        f64::NAN
    } else {
        geomean(promoted)
    };
    NativeBench {
        rows,
        geomean: gm,
        n_cells: opts.n_cells,
        steps: opts.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts(names: &[&str]) -> ExperimentOptions {
        ExperimentOptions {
            n_cells: 64,
            steps: 4,
            repeats: 1,
            only: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([8.0]) - 8.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn geomean_guards_non_positive_rows() {
        // A zero/negative/NaN row trips a debug assertion (outside fault
        // injection it always means a measurement bug); in release it is
        // skipped with a warning instead of zeroing or NaN-ing the whole
        // mean. Serialized against tests that arm fault plans — the
        // assertion is relaxed while injection is active.
        let _g = crate::faults::TEST_SERIAL
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        crate::faults::disarm_all();
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let r = std::panic::catch_unwind(|| geomean([4.0, bad, 1.0]));
            if cfg!(debug_assertions) {
                assert!(r.is_err(), "debug build must trip the assertion for {bad}");
            } else {
                let g = r.expect("release build must skip the bad row");
                assert!((g - 2.0).abs() < 1e-12, "bad={bad} g={g}");
            }
        }
    }

    #[test]
    fn fig2_runs_on_subset() {
        let f = fig2_single_thread(&tiny_opts(&["Plonsey", "BeelerReuter"]));
        assert_eq!(f.rows.len(), 2);
        for r in &f.rows {
            assert!(r.baseline > 0.0 && r.limpet_mlir > 0.0);
            assert!(r.speedup.is_finite());
        }
        assert!(f.geomean.is_finite());
    }

    #[test]
    fn fig2_parallel_keeps_roster_row_order() {
        // Three models across three workers: whatever order the threads
        // finish in, rows come back in roster (small -> large) order with
        // every slot filled.
        let opts = tiny_opts(&["Plonsey", "BeelerReuter", "OHara"]);
        let serial = fig2_with_jobs(&opts, 1);
        let parallel = fig2_with_jobs(&opts, 3);
        let expected: Vec<&str> = opts.roster().iter().map(|e| e.name).collect();
        let got: Vec<&str> = parallel.rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(got, expected);
        assert_eq!(
            serial
                .rows
                .iter()
                .map(|r| r.model.as_str())
                .collect::<Vec<_>>(),
            expected
        );
        for r in &parallel.rows {
            assert!(r.baseline > 0.0 && r.limpet_mlir > 0.0);
            assert!(r.speedup.is_finite());
        }
        assert!(parallel.geomean.is_finite());
    }

    #[test]
    fn fig2_checkpoint_resumes_completed_rows_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("limpet-fig2-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("fig2.journal");
        let opts = tiny_opts(&["Plonsey", "BeelerReuter"]);
        // Simulate an interrupted sweep: a journal holding one completed
        // row with sentinel times no real measurement would produce.
        let sentinel = SpeedupRow {
            model: "Plonsey".to_owned(),
            class: "small".to_owned(),
            baseline: 4.0,
            limpet_mlir: 2.0,
            speedup: 2.0,
        };
        let (j, done) = crate::persist::Journal::open(&path, &fig2_journal_header(&opts)).unwrap();
        assert!(done.is_empty());
        j.record(&fig2_journal_line(&sentinel)).unwrap();
        drop(j);
        // The resumed sweep must keep the journaled row bit-exactly (it
        // was not re-measured) and measure only the remaining model.
        let f = fig2_checkpointed(&opts, 1, Some(&path));
        assert_eq!(f.rows.len(), 2);
        let plonsey = f.rows.iter().find(|r| r.model == "Plonsey").unwrap();
        assert_eq!((plonsey.baseline, plonsey.limpet_mlir), (4.0, 2.0));
        let br = f.rows.iter().find(|r| r.model == "BeelerReuter").unwrap();
        assert!(br.baseline > 0.0 && br.limpet_mlir > 0.0);
        assert!(!path.exists(), "completed sweep removes its journal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig2_journal_rows_round_trip_times_bit_exactly() {
        let row = SpeedupRow {
            model: "M".to_owned(),
            class: "large".to_owned(),
            baseline: 0.123_456_789_e-3,
            limpet_mlir: 7.654_321e-5,
            speedup: 0.0,
        };
        let parsed = parse_fig2_row(&fig2_journal_line(&row)).unwrap();
        assert_eq!(parsed.baseline.to_bits(), row.baseline.to_bits());
        assert_eq!(parsed.limpet_mlir.to_bits(), row.limpet_mlir.to_bits());
        assert!(parse_fig2_row("garbage").is_none());
        assert!(parse_fig2_row("a,b,zz,00").is_none());
    }

    #[test]
    fn trajectory_digest_is_deterministic_and_model_sensitive() {
        let wl = Workload {
            n_cells: 8,
            steps: 0,
            dt: 0.01,
        };
        let m = model("HodgkinHuxley");
        let a = trajectory_digest(&m, PipelineKind::Baseline, &wl, 50).unwrap();
        let b = trajectory_digest(&m, PipelineKind::Baseline, &wl, 50).unwrap();
        assert_eq!(a, b);
        let other = model("BeelerReuter");
        let c = trajectory_digest(&other, PipelineKind::Baseline, &wl, 50).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fig3_class_geomeans_present() {
        let timing = ThreadTiming::model_only(TimingModel::default());
        let f = fig3_threads32(&tiny_opts(&["Plonsey", "OHara"]), &timing);
        assert_eq!(f.rows.len(), 2);
        assert_eq!(f.class_geomeans.len(), 3);
        // Model-only policy: every row is tagged modeled.
        assert!(f.rows.iter().all(|r| r.provenance == Provenance::Modeled));
    }

    #[test]
    fn fig3_real_threads_tags_measured_rows() {
        // A real region reaching 32 makes every fig-3 row measured (the
        // host oversubscribes, which is fine for a provenance test).
        let timing = ThreadTiming::real_threads(TimingModel::default(), Some(32));
        let f = fig3_threads32(&tiny_opts(&["Plonsey"]), &timing);
        assert!(f.rows.iter().all(|r| r.provenance == Provenance::Measured));
        assert!(f.rows[0].baseline > 0.0 && f.rows[0].limpet_mlir > 0.0);
        // A region capped below 32 models the same figure.
        let timing = ThreadTiming::real_threads(TimingModel::default(), Some(2));
        let f = fig3_threads32(&tiny_opts(&["Plonsey"]), &timing);
        assert!(f.rows.iter().all(|r| r.provenance == Provenance::Modeled));
    }

    #[test]
    fn fig5_produces_all_series() {
        let timing = ThreadTiming::model_only(TimingModel::default());
        let f = fig5_isa_threads(&tiny_opts(&["Pathmanathan"]), &timing);
        assert_eq!(f.series.len(), 3 * THREAD_COUNTS.len());
        assert!(f.overall_geomean.is_finite());
    }

    #[test]
    fn validate_tm_reports_overlap_region() {
        let timing = ThreadTiming::real_threads(TimingModel::default(), Some(4));
        let v = validate_timing_model(&tiny_opts(&["Plonsey"]), &timing);
        assert_eq!(v.threads, vec![2, 4]);
        // 1 model x 2 configs x 2 thread counts.
        assert_eq!(v.rows.len(), 4);
        for r in &v.rows {
            assert!(r.measured_s > 0.0 && r.modeled_s > 0.0);
            assert!(r.rel_err.is_finite());
        }
        assert!(v.overall.is_finite());
        assert_eq!(v.per_class.len(), 3);
        // An empty overlap must come back empty, not panic.
        let none = validate_timing_model(
            &tiny_opts(&["Plonsey"]),
            &ThreadTiming::model_only(TimingModel::default()),
        );
        assert!(none.rows.is_empty() && none.threads.is_empty());
        assert!(none.overall.is_nan());
    }

    #[test]
    fn layout_ablation_runner_produces_both_columns() {
        let f = layout_ablation(&tiny_opts(&["Stress_Niederer"]));
        assert_eq!(f.rows.len(), 1);
        let (_, aos, aosoa) = &f.rows[0];
        assert!(*aos > 0.0 && *aosoa > 0.0);
        assert!(f.geomeans.0.is_finite() && f.geomeans.1.is_finite());
    }

    #[test]
    fn lut_ablation_runner_skips_lut_free_models() {
        // ISAC_Hu has no lookup markup; it must not appear in the table.
        let f = lut_ablation(&tiny_opts(&["ISAC_Hu", "HodgkinHuxley"]));
        assert_eq!(f.rows.len(), 1);
        assert_eq!(f.rows[0].0, "HodgkinHuxley");
    }

    #[test]
    fn fig4_covers_every_class_and_thread_count() {
        let timing = ThreadTiming::model_only(TimingModel::default());
        let f = fig4_scaling(&tiny_opts(&["Plonsey", "BeelerReuter", "OHara"]), &timing);
        assert_eq!(f.series.len(), 3 * THREAD_COUNTS.len());
        // At this deliberately tiny test workload every class is
        // barrier-dominated, so no monotonicity is asserted — only
        // structure: positive times and limpetMLIR <= baseline at T=1.
        for p in &f.series {
            assert!(
                p.baseline_s > 0.0 && p.limpet_mlir_s > 0.0,
                "{} T={}",
                p.class,
                p.threads
            );
            assert_eq!(p.provenance, Provenance::Modeled);
            if p.threads == 1 {
                assert!(
                    p.limpet_mlir_s <= p.baseline_s,
                    "{}: limpetMLIR slower at T=1",
                    p.class
                );
            }
        }
    }

    #[test]
    fn fig4_real_threads_measures_below_and_models_above() {
        let timing = ThreadTiming::real_threads(TimingModel::default(), Some(2));
        let f = fig4_scaling(&tiny_opts(&["Plonsey"]), &timing);
        for p in &f.series {
            let expected = if p.threads <= 2 {
                Provenance::Measured
            } else {
                Provenance::Modeled
            };
            assert_eq!(p.provenance, expected, "T={}", p.threads);
            assert!(p.baseline_s > 0.0 && p.limpet_mlir_s > 0.0);
        }
    }

    #[test]
    fn roofline_points_have_positive_intensity() {
        let tm = TimingModel::default();
        let r = fig6_roofline(&tiny_opts(&["BeelerReuter"]), &tm);
        assert_eq!(r.points.len(), 1);
        assert!(r.points[0].intensity > 0.0);
        assert!(r.points[0].gflops > 0.0);
        assert!(r.peak_gflops > r.dram_gbps / 100.0);
    }

    #[test]
    fn kernel_stats_show_vector_kernel_is_smaller_or_equal() {
        let stats = kernel_stats(&tiny_opts(&["HodgkinHuxley"]));
        // CSE/const-prop should not make the optimized kernel larger.
        assert!(stats[0].mlir_instrs <= stats[0].baseline_instrs * 2);
        assert!(stats[0].lut_bytes > 0);
    }
}
