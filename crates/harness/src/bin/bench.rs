//! The `bench` binary — the counterpart of openCARP's `./bin/bench`
//! (paper §4 and appendix A.7): runs one ionic model over a cell
//! population for a simulated duration and reports the execution time.
//!
//! ```text
//! bench <model> [--duration MS] [--dt MS] [--cells N]
//!       [--config baseline|sse|avx2|avx512|icc|aos|nolut|spline]
//!       [--bcl MS] [--list] [--emit-ir] [--emit-c] [--validate]
//!       [--no-bytecode-opt]
//! ```
//!
//! `--no-bytecode-opt` disables the VM's post-compile bytecode optimizer
//! (copy coalescing, superinstruction fusion, register compaction) — the
//! ablation switch for measuring the optimizer's dispatch-overhead win.

use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::{KernelCache, PipelineKind, Simulation, Stimulus, Workload};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: bench <model|--model-file F> [--duration MS] [--dt MS] [--cells N] [--threads T]\n\
         \x20             [--config baseline|sse|avx2|avx512|icc|aos|nolut|spline]\n\
         \x20             [--bcl MS] [--emit-ir] [--emit-c] [--validate] [--no-bytecode-opt]\n\
         \x20      bench --list"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("43 ionic models (roster order, small -> large):");
        for e in &limpet_models::ROSTER {
            println!("  {:24} {:7} {:?}", e.name, e.class.name(), e.kind);
        }
        return;
    }
    // `--model-file path.model` loads a user model instead of a roster name.
    let file_model = args
        .iter()
        .position(|a| a == "--model-file")
        .and_then(|i| args.get(i + 1))
        .map(|p| match limpet_models::load_file(p) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("failed to load {p}: {e}");
                std::process::exit(2);
            }
        });
    let model_name: &str = match (&file_model, args.first()) {
        (Some(m), _) => &m.name,
        (None, Some(a)) if !a.starts_with("--") => {
            if limpet_models::entry(a).is_none() {
                eprintln!("unknown model {a}; try --list");
                std::process::exit(2);
            }
            a
        }
        _ => usage(),
    };
    let model_name = model_name.to_owned();
    let model_name = model_name.as_str();

    let mut duration: f64 = 100.0; // ms of simulated time
    let mut dt: f64 = 0.01;
    let mut cells = 8192usize;
    let mut config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
    let mut bcl: f64 = 500.0;
    let mut threads = 1usize;
    let mut emit_ir = false;
    let mut emit_c = false;
    let mut validate = false;

    let mut it = args.iter().skip(if file_model.is_some() { 0 } else { 1 });
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model-file" => {
                let _ = it.next();
            }
            "--duration" => {
                duration = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dt" => {
                dt = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cells" => {
                cells = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bcl" => {
                bcl = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--emit-ir" => emit_ir = true,
            "--emit-c" => emit_c = true,
            "--validate" => validate = true,
            "--no-bytecode-opt" => limpet_vm::set_bytecode_opt(false),
            "--config" => {
                config = match it.next().map(String::as_str) {
                    Some("baseline") => PipelineKind::Baseline,
                    Some("sse") => PipelineKind::LimpetMlir(VectorIsa::Sse),
                    Some("avx2") => PipelineKind::LimpetMlir(VectorIsa::Avx2),
                    Some("avx512") => PipelineKind::LimpetMlir(VectorIsa::Avx512),
                    Some("icc") => PipelineKind::CompilerSimd(VectorIsa::Avx512),
                    Some("aos") => PipelineKind::LimpetMlirAos(VectorIsa::Avx512),
                    Some("nolut") => PipelineKind::LimpetMlirNoLut(VectorIsa::Avx512),
                    Some("spline") => PipelineKind::LimpetMlirSpline(VectorIsa::Avx512),
                    _ => usage(),
                };
            }
            _ => usage(),
        }
    }

    let model = match &file_model {
        Some(m) => m.clone(),
        None => limpet_models::model(model_name),
    };

    if emit_ir {
        println!("{}", limpet_ir::print_module(&config.build(&model)));
        return;
    }
    if emit_c {
        let scalar = PipelineKind::Baseline.build(&model);
        match limpet_codegen::emit_c(&scalar) {
            Ok(c) => println!("{c}"),
            Err(e) => eprintln!("emit-c failed: {e}"),
        }
        return;
    }

    let steps = (duration / dt).round() as usize;
    let class = limpet_models::entry(model_name)
        .map(|e| e.class.name())
        .unwrap_or("custom");
    println!(
        "bench: {model_name} ({class}), {} cells, {steps} steps of {dt} ms ({duration} ms), config {}",
        cells,
        config.label(),
    );

    // Compile once through the shared cache: the sharded path below and
    // any --validate re-run reuse this kernel instead of re-lowering.
    let t0 = Instant::now();
    KernelCache::global().get_or_compile(&model, config);
    println!("compile: {:?} (cached for reuse)", t0.elapsed());

    let wl = Workload {
        n_cells: cells,
        steps: 0,
        dt,
    };
    if threads > 1 {
        // Real-thread sharded execution (one OS thread per shard).
        let mut sharded = limpet_harness::ShardedSimulation::new(&model, config, &wl, threads);
        let secs = sharded.run_threaded(steps);
        println!(
            "threads={threads}: {secs:.4}s wall ({:.3} us/step)",
            secs / steps as f64 * 1e6
        );
        println!("final: Vm = {:.4} mV", sharded.vm(0));
        return;
    }
    let mut sim = Simulation::new(&model, config, &wl);
    sim.set_stimulus(Stimulus {
        period: bcl,
        duration: 2.0,
        amplitude: 60.0,
    });

    let t0 = Instant::now();
    sim.run(steps);
    let elapsed = t0.elapsed();
    let per_step = elapsed.as_secs_f64() / steps as f64;
    println!(
        "run: {elapsed:?}  ({:.3} us/step, {:.1} Mcell-steps/s)",
        per_step * 1e6,
        (cells as f64 * steps as f64) / elapsed.as_secs_f64() / 1e6
    );
    println!("final: Vm = {:.4} mV, Iion = {:.6}", sim.vm(0), sim.iion(0));

    if validate {
        // Re-run under the baseline pipeline and compare end states.
        let mut reference = Simulation::new(&model, PipelineKind::Baseline, &wl);
        reference.set_stimulus(Stimulus {
            period: bcl,
            duration: 2.0,
            amplitude: 60.0,
        });
        reference.run(steps);
        let dv = (reference.vm(0) - sim.vm(0)).abs();
        let tol = if matches!(config, PipelineKind::LimpetMlirSpline(_))
            || matches!(config, PipelineKind::LimpetMlirNoLut(_))
        {
            1.0 // different interpolation/tabulation: loose bound
        } else {
            1e-4
        };
        if dv < tol {
            println!("validate: OK (|dVm| = {dv:.2e} vs baseline)");
        } else {
            println!("validate: FAILED (|dVm| = {dv:.2e} vs baseline)");
            std::process::exit(1);
        }
    }
}
