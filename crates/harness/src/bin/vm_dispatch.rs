//! Dispatch-overhead microbenchmark of the W-lane VM: per-model executed
//! instructions per step and wall-clock ns per step, with the bytecode
//! optimizer on vs. off, over the baseline width-1 configuration (where
//! dispatch overhead dominates — every saved instruction is a saved
//! `match` round-trip).
//!
//! ```text
//! vm_dispatch [--models a,b,c] [--cells N] [--steps N] [--repeats N]
//!             [--out FILE] [--check [FILE]]
//! ```
//!
//! Default run regenerates `BENCH_vm_dispatch.json` (hand-written JSON —
//! the workspace has no serializer dependency). `--check` recomputes the
//! *deterministic* half of the benchmark — optimized executed
//! instructions per step, which depend only on the compiler, never on
//! machine load — and fails (exit 1) if any selected model regressed
//! above the committed file. CI runs the check on a 3-model subset.
//!
//! Executed-instruction counts come from the profiled interpreter loop on
//! a fresh initial state (branches are trajectory-dependent, and both
//! kernels follow bit-identical trajectories, so the counts are exact).
//! Times are the median of `--repeats` timed runs.

use limpet_harness::{geomean, measure_median, model_info, storage_layout, PipelineKind};
use limpet_models::{ModelEntry, ROSTER};
use limpet_vm::{Kernel, SimContext, StateLayout};

/// Steps summed for the deterministic instruction profile.
const PROFILE_STEPS: usize = 8;

#[derive(Debug)]
struct Args {
    models: Vec<String>,
    cells: usize,
    steps: usize,
    repeats: usize,
    out: String,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: vm_dispatch [--models a,b,c] [--cells N] [--steps N] [--repeats N]\n\
         \x20                  [--out FILE] [--check [FILE]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        models: Vec::new(),
        cells: 256,
        steps: 200,
        repeats: 5,
        out: "BENCH_vm_dispatch.json".to_owned(),
        check: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--models" => {
                args.models = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--cells" => {
                args.cells = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--steps" => {
                args.steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--repeats" => {
                args.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--check" => {
                args.check = true;
                if let Some(path) = it.peek() {
                    if !path.starts_with("--") {
                        args.out = it.next().unwrap();
                    }
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// One model's measurement, optimizer on and off.
#[derive(Debug)]
struct Row {
    model: &'static str,
    class: &'static str,
    static_raw: usize,
    static_opt: usize,
    instrs_raw: f64,
    instrs_opt: f64,
    ns_raw: f64,
    ns_opt: f64,
}

/// Sum of executed instructions over [`PROFILE_STEPS`] steps from a fresh
/// initial state, divided back to per-step (deterministic).
fn instrs_per_step(kernel: &Kernel, layout: StateLayout, cells: usize, dt: f64) -> f64 {
    let mut state = kernel.new_states(cells, layout);
    let mut ext = kernel.new_ext(cells);
    let mut total = 0u64;
    for s in 0..PROFILE_STEPS {
        let ctx = SimContext {
            dt,
            t: s as f64 * dt,
        };
        total += kernel
            .run_step_profiled(&mut state, &mut ext, None, ctx)
            .instrs;
    }
    total as f64 / PROFILE_STEPS as f64
}

/// Median wall time of `steps` un-profiled steps, in ns per step.
fn ns_per_step(
    kernel: &Kernel,
    layout: StateLayout,
    cells: usize,
    steps: usize,
    repeats: usize,
    dt: f64,
) -> f64 {
    let mut state = kernel.new_states(cells, layout);
    let mut ext = kernel.new_ext(cells);
    let mut t = 0.0;
    for _ in 0..2 {
        kernel.run_step(&mut state, &mut ext, None, SimContext { dt, t });
        t += dt;
    }
    let median = measure_median(repeats, || {
        for _ in 0..steps {
            kernel.run_step(&mut state, &mut ext, None, SimContext { dt, t });
            t += dt;
        }
    });
    median * 1e9 / steps as f64
}

fn measure(entry: &ModelEntry, args: &Args) -> Row {
    let dt = 0.01;
    let m = limpet_models::model(entry.name);
    let module = PipelineKind::Baseline.build(&m);
    let info = model_info(&m);
    let layout = storage_layout(&module);
    let (k_opt, _, k_raw) = Kernel::from_module_both(&module, &info)
        .unwrap_or_else(|e| panic!("compiling {}: {e}", entry.name));
    Row {
        model: entry.name,
        class: entry.class.name(),
        static_raw: k_raw.program().instrs.len(),
        static_opt: k_opt.program().instrs.len(),
        instrs_raw: instrs_per_step(&k_raw, layout, args.cells, dt),
        instrs_opt: instrs_per_step(&k_opt, layout, args.cells, dt),
        ns_raw: ns_per_step(&k_raw, layout, args.cells, args.steps, args.repeats, dt),
        ns_opt: ns_per_step(&k_opt, layout, args.cells, args.steps, args.repeats, dt),
    }
}

fn selected(args: &Args) -> Vec<&'static ModelEntry> {
    let sel: Vec<&ModelEntry> = ROSTER
        .iter()
        .filter(|e| args.models.is_empty() || args.models.iter().any(|n| n == e.name))
        .collect();
    if sel.is_empty() {
        eprintln!("no roster model matches --models {}", args.models.join(","));
        std::process::exit(2);
    }
    sel
}

/// Extracts the committed `instrs_per_step_opt` of one model by string
/// scanning (the workspace has no JSON parser dependency).
fn committed_instrs_opt(json: &str, model: &str) -> Option<f64> {
    let at = json.find(&format!("\"model\": \"{model}\""))?;
    let tail = &json[at..];
    let key = "\"instrs_per_step_opt\": ";
    let rest = &tail[tail.find(key)? + key.len()..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// `--check`: recompute the deterministic instruction counts and compare
/// against the committed file. Timing is not checked (machine-dependent).
fn run_check(args: &Args) -> i32 {
    let json = match std::fs::read_to_string(&args.out) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vm_dispatch --check: cannot read {}: {e}", args.out);
            return 1;
        }
    };
    let dt = 0.01;
    let mut failed = false;
    for entry in selected(args) {
        let m = limpet_models::model(entry.name);
        let module = PipelineKind::Baseline.build(&m);
        let info = model_info(&m);
        let layout = storage_layout(&module);
        let kernel = Kernel::from_module_opt(&module, &info, true)
            .unwrap_or_else(|e| panic!("compiling {}: {e}", entry.name))
            .0;
        let now = instrs_per_step(&kernel, layout, args.cells, dt);
        match committed_instrs_opt(&json, entry.name) {
            None => {
                println!("  {:24} not in {} — skipped", entry.name, args.out);
            }
            // Epsilon absorbs decimal formatting, not real regressions.
            Some(committed) if now > committed + 0.51 => {
                println!(
                    "  {:24} REGRESSED: {now:.1} instrs/step vs committed {committed:.1}",
                    entry.name
                );
                failed = true;
            }
            Some(committed) => {
                println!(
                    "  {:24} ok: {now:.1} instrs/step (committed {committed:.1})",
                    entry.name
                );
            }
        }
    }
    if failed {
        eprintln!("vm_dispatch --check: optimized instrs/step regressed (see above)");
        1
    } else {
        println!("vm_dispatch --check: no instruction-count regression");
        0
    }
}

fn write_json(rows: &[Row], args: &Args, path: &str) {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"vm_dispatch\",");
    let _ = writeln!(
        s,
        "  \"config\": \"baseline pipeline, width 1 (interpreter dispatch overhead)\","
    );
    let _ = writeln!(s, "  \"cells\": {},", args.cells);
    let _ = writeln!(s, "  \"profile_steps\": {PROFILE_STEPS},");
    let _ = writeln!(s, "  \"timed_steps\": {},", args.steps);
    let _ = writeln!(s, "  \"repeats\": {},", args.repeats);
    let _ = writeln!(s, "  \"models\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"model\": \"{}\",", r.model);
        let _ = writeln!(s, "      \"class\": \"{}\",", r.class);
        let _ = writeln!(s, "      \"static_instrs_raw\": {},", r.static_raw);
        let _ = writeln!(s, "      \"static_instrs_opt\": {},", r.static_opt);
        let _ = writeln!(s, "      \"instrs_per_step_raw\": {:.1},", r.instrs_raw);
        let _ = writeln!(s, "      \"instrs_per_step_opt\": {:.1},", r.instrs_opt);
        let _ = writeln!(
            s,
            "      \"instr_ratio\": {:.4},",
            r.instrs_opt / r.instrs_raw
        );
        let _ = writeln!(s, "      \"ns_per_step_raw\": {:.1},", r.ns_raw);
        let _ = writeln!(s, "      \"ns_per_step_opt\": {:.1},", r.ns_opt);
        let _ = writeln!(s, "      \"time_speedup\": {:.4}", r.ns_raw / r.ns_opt);
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let instr_ratio = geomean(rows.iter().map(|r| r.instrs_opt / r.instrs_raw));
    let speedup = geomean(rows.iter().map(|r| r.ns_raw / r.ns_opt));
    let _ = writeln!(
        s,
        "  \"geomean_instr_reduction\": {:.4},",
        1.0 - instr_ratio
    );
    let _ = writeln!(s, "  \"geomean_time_speedup\": {speedup:.4}");
    let _ = writeln!(s, "}}");
    match std::fs::write(path, s) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.check {
        std::process::exit(run_check(&args));
    }
    println!(
        "vm_dispatch: baseline width-1 VM, {} cells, {} timed steps x{} repeats",
        args.cells, args.steps, args.repeats
    );
    let mut rows = Vec::new();
    for entry in selected(&args) {
        let r = measure(entry, &args);
        println!(
            "  {:24} {:7} instrs/step {:9.0} -> {:9.0} ({:5.1}% fewer)   ns/step {:10.0} -> {:10.0} ({:4.2}x)",
            r.model,
            r.class,
            r.instrs_raw,
            r.instrs_opt,
            (1.0 - r.instrs_opt / r.instrs_raw) * 100.0,
            r.ns_raw,
            r.ns_opt,
            r.ns_raw / r.ns_opt,
        );
        rows.push(r);
    }
    let instr_ratio = geomean(rows.iter().map(|r| r.instrs_opt / r.instrs_raw));
    let speedup = geomean(rows.iter().map(|r| r.ns_raw / r.ns_opt));
    println!(
        "geomean: {:.1}% fewer executed instrs/step, {speedup:.2}x wall-clock",
        (1.0 - instr_ratio) * 100.0
    );
    write_json(&rows, &args, &args.out);
}
