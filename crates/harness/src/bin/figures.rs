//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [--fig2] [--fig3] [--fig4] [--fig5] [--layout] [--lut]
//!         [--icc] [--roofline] [--stats] [--digest] [--all]
//!         [--real-threads] [--max-threads N] [--validate-tm]
//!         [--cells N] [--steps N] [--repeats N] [--models a,b,c]
//!         [--jobs N] [--no-cache] [--no-bytecode-opt]
//!         [--native] [--no-native] [--native-threshold N] [--native-bench]
//!         [--cache-dir PATH] [--no-disk-cache] [--cache clear|stat]
//!         [--json] [--cache-cap-mb N] [--checkpoint PATH]
//!         [--inject fault@seed[,fault@seed...]]
//! ```
//!
//! With no figure flag, `--fig2` runs (cheapest headline artifact).
//! Results print as aligned text tables and are also written as CSV files
//! under `output/`.
//!
//! `--real-threads` runs the thread-count figures (fig3/fig4/fig5) on the
//! persistent worker pool for every thread count the host can actually
//! provide, falling back to the calibrated simulated-parallel model
//! above that; every row carries a `measured|modeled` provenance tag.
//! `--max-threads N` widens (oversubscription) or narrows the measured
//! region. `--validate-tm` recalibrates the timing model, cross-validates
//! it against real-thread measurements on the overlap region, and
//! persists the calibrated constants next to the kernel disk cache.
//!
//! `--jobs N` precompiles the selected roster across every pipeline
//! configuration on N worker threads before any experiment runs, and
//! additionally shards the Fig. 2 measurement loop itself across those
//! workers (one model per work cell, rows kept in roster order; the
//! other figures still measure serially from the warm cache).
//! `--no-cache` disables the cache entirely — every simulation compiles
//! from scratch, as the harness did before the compilation service
//! existed — which is useful for validating that cached runs produce
//! identical results. `--no-bytecode-opt` disables the VM's post-compile
//! bytecode optimizer, the ablation switch for its dispatch-overhead win.
//! `--inject` arms the deterministic fault-injection framework (see
//! `limpet_harness::faults`) — e.g. `--inject verify-fail@42` — which is
//! also reachable through the `LIMPET_INJECT` environment variable; any
//! recorded incidents and quarantined models print in the final summary.
//!
//! Compiled kernels persist across processes in an on-disk cache
//! (default `~/.cache/limpet-rs`, overridable via `--cache-dir` or
//! `LIMPET_CACHE_DIR`; `--no-disk-cache` keeps a run in-memory only).
//! `--cache stat` and `--cache clear` are maintenance verbs that run and
//! exit. `--checkpoint PATH` journals completed Fig. 2 rows so an
//! interrupted sweep resumes instead of restarting, and `--digest`
//! prints per-model trajectory digests for bit-identity acceptance
//! checks (CI compares them across cold, warm, and fault-injected runs).

use limpet_harness::{
    all_pipeline_kinds, available_cores, default_cache_dir, fig2_checkpointed, fig3_threads32,
    fig4_scaling, fig5_isa_threads, fig6_roofline, icc_comparison, kernel_stats, layout_ablation,
    lut_ablation, native_tier_bench, summarize_incidents, trajectory_digest_tiered,
    validate_timing_model, DiskCache, ExperimentOptions, KernelCache, PipelineKind, ThreadTiming,
    TimingModel, Workload,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Args {
    fig2: bool,
    fig3: bool,
    fig4: bool,
    fig5: bool,
    layout: bool,
    lut: bool,
    icc: bool,
    roofline: bool,
    stats: bool,
    digest: bool,
    native_bench: bool,
    validate_tm: bool,
    real_threads: bool,
    max_threads: Option<usize>,
    jobs: usize,
    no_cache: bool,
    no_disk_cache: bool,
    cache_dir: Option<PathBuf>,
    cache_verb: Option<String>,
    cache_cap_mb: Option<u64>,
    checkpoint: Option<PathBuf>,
    json: bool,
    opts: ExperimentOptions,
}

fn parse_args() -> Args {
    let mut args = Args {
        opts: ExperimentOptions::default(),
        fig2: false,
        fig3: false,
        fig4: false,
        fig5: false,
        layout: false,
        lut: false,
        icc: false,
        roofline: false,
        stats: false,
        digest: false,
        native_bench: false,
        validate_tm: false,
        real_threads: false,
        max_threads: None,
        jobs: 0,
        no_cache: false,
        no_disk_cache: false,
        cache_dir: None,
        cache_verb: None,
        cache_cap_mb: None,
        checkpoint: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig2" => args.fig2 = true,
            "--fig3" => args.fig3 = true,
            "--fig4" => args.fig4 = true,
            "--fig5" => args.fig5 = true,
            "--layout" => args.layout = true,
            "--lut" => args.lut = true,
            "--icc" => args.icc = true,
            "--roofline" => args.roofline = true,
            "--stats" => args.stats = true,
            "--all" => {
                args.fig2 = true;
                args.fig3 = true;
                args.fig4 = true;
                args.fig5 = true;
                args.layout = true;
                args.lut = true;
                args.icc = true;
                args.roofline = true;
                args.stats = true;
            }
            "--cells" => {
                args.opts.n_cells = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cells needs a number");
            }
            "--steps" => {
                args.opts.steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--steps needs a number");
            }
            "--repeats" => {
                args.opts.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats needs a number");
            }
            "--models" => {
                args.opts.only = it
                    .next()
                    .expect("--models needs a comma list")
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number");
            }
            "--no-cache" => args.no_cache = true,
            "--no-disk-cache" => args.no_disk_cache = true,
            "--digest" => args.digest = true,
            "--native" => limpet_harness::set_promotion(true),
            "--no-native" => limpet_harness::set_promotion(false),
            "--native-threshold" => {
                limpet_harness::set_promotion_threshold(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--native-threshold needs a number >= 1"),
                );
            }
            "--native-bench" => args.native_bench = true,
            "--json" => args.json = true,
            "--validate-tm" => args.validate_tm = true,
            "--real-threads" => args.real_threads = true,
            "--max-threads" => {
                args.max_threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .expect("--max-threads needs a number >= 1"),
                );
            }
            "--cache-dir" => {
                args.cache_dir = Some(PathBuf::from(it.next().expect("--cache-dir needs a path")));
            }
            "--cache" => {
                let verb = it.next().unwrap_or_default();
                if verb != "clear" && verb != "stat" {
                    eprintln!("--cache needs a verb: clear or stat");
                    std::process::exit(2);
                }
                args.cache_verb = Some(verb);
            }
            "--cache-cap-mb" => {
                args.cache_cap_mb = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cache-cap-mb needs a number"),
                );
            }
            "--checkpoint" => {
                args.checkpoint =
                    Some(PathBuf::from(it.next().expect("--checkpoint needs a path")));
            }
            "--inject" => {
                let spec = it.next().unwrap_or_default();
                if let Err(e) = limpet_harness::faults::arm(&spec) {
                    eprintln!("--inject: {e}");
                    std::process::exit(2);
                }
            }
            "--no-bytecode-opt" => limpet_vm::set_bytecode_opt(false),
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig2|--fig3|--fig4|--fig5|--layout|--lut|--icc|--roofline|--stats|--digest|--all]\n\
                     \x20              [--real-threads] [--max-threads N] [--validate-tm]\n\
                     \x20              [--cells N] [--steps N] [--repeats N] [--models a,b,c]\n\
                     \x20              [--jobs N] [--no-cache] [--no-bytecode-opt]\n\
                     \x20              [--native] [--no-native] [--native-threshold N] [--native-bench]\n\
                     \x20              [--cache-dir PATH] [--no-disk-cache] [--cache clear|stat]\n\
                     \x20              [--json] [--cache-cap-mb N] [--checkpoint PATH]\n\
                     \x20              [--inject fault@seed[,fault@seed...]]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if !(args.fig2
        || args.fig3
        || args.fig4
        || args.fig5
        || args.layout
        || args.lut
        || args.icc
        || args.roofline
        || args.stats
        || args.digest
        || args.native_bench
        || args.validate_tm
        || args.cache_verb.is_some())
    {
        args.fig2 = true;
    }
    args
}

fn save_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("output");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut s = String::from(header);
    s.push('\n');
    for r in rows {
        s.push_str(r);
        s.push('\n');
    }
    let path = dir.join(name);
    if fs::write(&path, s).is_ok() {
        println!("  [saved {}]", path.display());
    }
}

/// Header tag describing where thread-count timings come from.
fn region_label(timing: &ThreadTiming) -> String {
    if timing.real_max == 0 {
        "simulated-parallel model".to_owned()
    } else {
        format!(
            "measured T <= {}, simulated-parallel above",
            timing.real_max
        )
    }
}

fn main() {
    if let Err(e) = limpet_harness::faults::arm_from_env() {
        eprintln!("LIMPET_INJECT: {e}");
        std::process::exit(2);
    }
    // LIMPET_NATIVE / LIMPET_NATIVE_THRESHOLD seed the native-promotion
    // config; --native / --no-native / --native-threshold override.
    limpet_harness::promotion_from_env();
    // Ctrl-C / SIGTERM stop long sweeps at a row boundary: journals are
    // kept for resume and the disk-cache lock is never left stale.
    limpet_harness::shutdown::install();
    let args = parse_args();
    let cache_dir = args.cache_dir.clone().unwrap_or_else(default_cache_dir);
    // Maintenance verbs run and exit before any measurement machinery.
    if let Some(verb) = &args.cache_verb {
        let disk = DiskCache::open(&cache_dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache dir {}: {e}", cache_dir.display());
            std::process::exit(1);
        });
        if let Some(mb) = args.cache_cap_mb {
            disk.set_cap_bytes(mb * 1024 * 1024);
        }
        match verb.as_str() {
            "stat" => match disk.status() {
                Ok(s) if args.json => {
                    // Machine-readable form: the same fragments the
                    // limpet-serve `stats` verb composes, so telemetry
                    // consumers never parse the pretty-printer.
                    let mem = KernelCache::global().stats();
                    let incidents =
                        limpet_harness::incidents_json(&KernelCache::global().incidents());
                    println!(
                        "{{\"dir\":\"{}\",\"disk\":{},\"memory\":{},\"incidents\":{}}}",
                        cache_dir
                            .display()
                            .to_string()
                            .replace('\\', "\\\\")
                            .replace('"', "\\\""),
                        s.to_json(),
                        mem.to_json(),
                        incidents
                    );
                }
                Ok(s) => println!(
                    "disk cache {}: {} entr{}, {:.1} KiB used, cap {} MiB",
                    cache_dir.display(),
                    s.entries,
                    if s.entries == 1 { "y" } else { "ies" },
                    s.bytes as f64 / 1024.0,
                    s.cap_bytes / (1024 * 1024)
                ),
                Err(e) => {
                    eprintln!("cannot stat cache dir {}: {e}", cache_dir.display());
                    std::process::exit(1);
                }
            },
            _ => match disk.clear() {
                Ok(n) => println!(
                    "disk cache {}: cleared {n} entr{}",
                    cache_dir.display(),
                    if n == 1 { "y" } else { "ies" }
                ),
                Err(e) => {
                    eprintln!("cannot clear cache dir {}: {e}", cache_dir.display());
                    std::process::exit(1);
                }
            },
        }
        return;
    }
    println!(
        "limpet-rs figure runner: {} cells, {} steps, {} repeats{}",
        args.opts.n_cells,
        args.opts.steps,
        args.opts.repeats,
        if args.opts.only.is_empty() {
            ", full 43-model roster".to_owned()
        } else {
            format!(", models: {}", args.opts.only.join(","))
        }
    );
    // Timing model: calibrated constants persist next to the kernel disk
    // cache (`--validate-tm` writes them). A valid persisted file skips
    // recalibration; `--validate-tm` always recalibrates fresh.
    let (tm, tm_source) = if args.validate_tm || args.no_disk_cache || args.no_cache {
        (TimingModel::calibrate(), "calibrated")
    } else {
        let (tm, loaded) = TimingModel::load_or_calibrate(&cache_dir);
        (tm, if loaded { "persisted" } else { "calibrated" })
    };
    println!(
        "{tm_source} timing model: stream bandwidth {:.2} GB/s (x{} socket saturation)",
        tm.stream_bandwidth / 1e9,
        tm.bandwidth_saturation
    );
    let cores = available_cores();
    let timing = if args.real_threads {
        let t = ThreadTiming::real_threads(tm, args.max_threads);
        println!(
            "real threads: measuring T <= {} on {} core(s){}; modeling above",
            t.real_max,
            cores,
            if t.real_max > cores {
                " (oversubscribed)"
            } else {
                ""
            }
        );
        t
    } else {
        ThreadTiming::model_only(tm)
    };

    if args.no_cache {
        KernelCache::global().set_enabled(false);
        println!("kernel cache disabled (--no-cache): every run compiles from scratch\n");
    } else if args.no_disk_cache {
        println!("disk cache disabled (--no-disk-cache): kernels persist for this process only");
    } else {
        match DiskCache::open(&cache_dir) {
            Ok(disk) => {
                if let Some(mb) = args.cache_cap_mb {
                    disk.set_cap_bytes(mb * 1024 * 1024);
                }
                println!("disk cache: {}", cache_dir.display());
                KernelCache::global().set_disk_cache(Some(Arc::new(disk)));
            }
            Err(e) => eprintln!("warning: disk cache unavailable ({e}); continuing in-memory only"),
        }
    }
    if args.no_cache {
        // Nothing to precompile: the cache is bypassed entirely.
    } else if args.jobs > 0 {
        let models: Vec<_> = args
            .opts
            .roster()
            .iter()
            .map(|e| limpet_models::model(e.name))
            .collect();
        let kinds = all_pipeline_kinds();
        let t0 = Instant::now();
        let compiled = KernelCache::global().precompile(&models, &kinds, args.jobs);
        println!(
            "precompiled {compiled} kernels ({} models x {} configs) on {} threads in {:.2}s\n",
            models.len(),
            kinds.len(),
            args.jobs,
            t0.elapsed().as_secs_f64()
        );
    } else {
        println!();
    }

    if args.digest {
        println!("== Trajectory digests (bit-identity acceptance) ==");
        let wl = Workload {
            n_cells: args.opts.n_cells,
            steps: 0,
            dt: 0.01,
        };
        let mut rows = Vec::new();
        for e in args.opts.roster() {
            let m = limpet_models::model(e.name);
            for config in [
                PipelineKind::Baseline,
                PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512),
            ] {
                match trajectory_digest_tiered(&m, config, &wl, args.opts.steps) {
                    Some((d, tier)) => {
                        println!(
                            "  digest {:24} {:20} {d:016x}  {tier}",
                            e.name,
                            config.label()
                        );
                        rows.push(format!("{},{},{d:016x},{tier}", e.name, config.label()));
                    }
                    None => {
                        println!("  digest {:24} {:20} quarantined", e.name, config.label());
                        rows.push(format!(
                            "{},{},quarantined,quarantined",
                            e.name,
                            config.label()
                        ));
                    }
                }
            }
        }
        println!();
        save_csv("digests.csv", "model,config,digest,tier", &rows);
    }

    if args.native_bench {
        println!("== Native tier vs optimized bytecode (width 1, per-step wall-clock) ==");
        if !limpet_harness::toolchain_available() {
            println!("  note: no C toolchain on this host; rows degrade to bytecode");
        }
        let f = native_tier_bench(&args.opts);
        let mut rows = Vec::new();
        for r in &f.rows {
            if r.note.is_empty() {
                println!(
                    "  {:24} {:7} bytecode {:9.3} us/step  native {:9.3} us/step  {:5.2}x  bits {}",
                    r.model,
                    r.class,
                    r.bytecode_us,
                    r.native_us,
                    r.speedup,
                    if r.bit_identical { "OK" } else { "DIFF" }
                );
            } else {
                println!(
                    "  {:24} {:7} bytecode {:9.3} us/step  native unavailable ({})",
                    r.model, r.class, r.bytecode_us, r.note
                );
            }
            rows.push(format!(
                "{},{},{},{},{},{}",
                r.model, r.class, r.bytecode_us, r.native_us, r.speedup, r.bit_identical
            ));
        }
        if f.geomean.is_finite() {
            println!(
                "  geomean speedup (native over bytecode): {:.2}x\n",
                f.geomean
            );
        } else {
            println!("  no model promoted; geomean unavailable\n");
        }
        save_csv(
            "native_tier.csv",
            "model,class,bytecode_us_per_step,native_us_per_step,speedup,bit_identical",
            &rows,
        );
        let json = f.to_json();
        if fs::write("BENCH_native_tier.json", &json).is_ok() {
            println!("  [saved BENCH_native_tier.json]");
        }
        if args.json {
            println!("{json}");
        }
        println!();
    }

    if args.fig2 {
        println!("== Figure 2: single-thread speedup, limpetMLIR AVX-512 vs baseline ==");
        let f = fig2_checkpointed(&args.opts, args.jobs.max(1), args.checkpoint.as_deref());
        let mut rows = Vec::new();
        for r in &f.rows {
            println!(
                "  {:24} {:7} baseline {:9.4}s  limpetMLIR {:9.4}s  speedup {:6.2}x",
                r.model, r.class, r.baseline, r.limpet_mlir, r.speedup
            );
            rows.push(format!(
                "{},{},{},{},{}",
                r.model, r.class, r.baseline, r.limpet_mlir, r.speedup
            ));
        }
        println!("  geomean speedup: {:.2}x   (paper: 5.25x)\n", f.geomean);
        save_csv(
            "fig2.csv",
            "model,class,baseline_s,limpetmlir_s,speedup",
            &rows,
        );
    }

    if args.validate_tm {
        println!("== Timing-model cross-validation (real threads vs simulated-parallel) ==");
        // The overlap region needs at least T=2; on a single-core host
        // that means deliberate oversubscription unless --max-threads
        // narrows it further.
        let region = args.max_threads.unwrap_or_else(|| cores.max(2));
        let vt = ThreadTiming::real_threads(tm, Some(region));
        if region > cores {
            println!("  note: measuring up to T={region} on {cores} core(s) (oversubscribed)");
        }
        let v = validate_timing_model(&args.opts, &vt);
        if v.rows.is_empty() {
            println!("  empty overlap region (T <= {region}); raise --max-threads\n");
        } else {
            let mut rows = Vec::new();
            for r in &v.rows {
                println!(
                    "  {:24} {:7} {:20} T={:2}  measured {:9.5}s  modeled {:9.5}s  err {:+7.1}%",
                    r.model,
                    r.class,
                    r.config,
                    r.threads,
                    r.measured_s,
                    r.modeled_s,
                    r.rel_err * 100.0
                );
                rows.push(format!(
                    "{},{},{},{},{},{},{}",
                    r.model, r.class, r.config, r.threads, r.measured_s, r.modeled_s, r.rel_err
                ));
            }
            for (c, e) in &v.per_class {
                // Classes absent from the roster subset have no rows.
                if e.is_finite() {
                    println!("  {c:7} mean |rel err|: {:6.1}%", e * 100.0);
                }
            }
            println!(
                "  overall mean |rel err|: {:.1}% over threads {:?}\n",
                v.overall * 100.0,
                v.threads
            );
            save_csv(
                "validate_tm.csv",
                "model,class,config,threads,measured_s,modeled_s,rel_err",
                &rows,
            );
        }
        if !args.no_disk_cache && !args.no_cache {
            match tm.save(&cache_dir) {
                Ok(p) => println!("  persisted calibrated timing model: {}\n", p.display()),
                Err(e) => eprintln!("warning: could not persist timing model: {e}\n"),
            }
        }
    }

    if args.fig3 {
        println!(
            "== Figure 3: 32-thread speedup ({}) ==",
            region_label(&timing)
        );
        let f = fig3_threads32(&args.opts, &timing);
        let mut rows = Vec::new();
        for r in &f.rows {
            println!(
                "  {:24} {:7} speedup {:6.2}x  [{}]",
                r.model, r.class, r.speedup, r.provenance
            );
            rows.push(format!(
                "{},{},{},{}",
                r.model, r.class, r.speedup, r.provenance
            ));
        }
        for (c, g) in &f.class_geomeans {
            println!("  {c:7} geomean: {g:.2}x");
        }
        println!(
            "  overall geomean: {:.2}x   (paper: 1.93x; small 0.83x, medium 1.34x, large 6.03x)\n",
            f.geomean
        );
        save_csv("fig3.csv", "model,class,speedup,provenance", &rows);
    }

    if args.fig4 {
        println!(
            "== Figure 4: class-average times vs threads (AVX-512, {}) ==",
            region_label(&timing)
        );
        let f = fig4_scaling(&args.opts, &timing);
        let mut rows = Vec::new();
        for p in &f.series {
            println!(
                "  {:7} T={:2}  baseline {:10.5}s  limpetMLIR {:10.5}s  [{}]",
                p.class, p.threads, p.baseline_s, p.limpet_mlir_s, p.provenance
            );
            rows.push(format!(
                "{},{},{},{},{}",
                p.class, p.threads, p.baseline_s, p.limpet_mlir_s, p.provenance
            ));
        }
        println!();
        save_csv(
            "fig4.csv",
            "class,threads,baseline_s,limpetmlir_s,provenance",
            &rows,
        );
    }

    if args.fig5 {
        println!(
            "== Figure 5: geomean speedup per ISA x threads ({}) ==",
            region_label(&timing)
        );
        let f = fig5_isa_threads(&args.opts, &timing);
        let mut rows = Vec::new();
        for p in &f.series {
            println!(
                "  {:8} T={:2}  geomean {:5.2}x  [{}]",
                p.isa, p.threads, p.geomean, p.provenance
            );
            rows.push(format!(
                "{},{},{},{}",
                p.isa, p.threads, p.geomean, p.provenance
            ));
        }
        println!(
            "  overall geomean (all models, ISAs, threads): {:.2}x   (paper: 2.90x)\n",
            f.overall_geomean
        );
        save_csv("fig5.csv", "isa,threads,geomean_speedup,provenance", &rows);
    }

    if args.layout {
        println!("== Section 4.4: data-layout ablation (AoS vs AoSoA, 1 thread) ==");
        let f = layout_ablation(&args.opts);
        let mut rows = Vec::new();
        for (m, aos, aosoa) in &f.rows {
            println!("  {m:24} AoS {aos:5.2}x   AoSoA {aosoa:5.2}x");
            rows.push(format!("{m},{aos},{aosoa}"));
        }
        println!(
            "  geomeans: AoS {:.2}x -> AoSoA {:.2}x   (paper: 3.12x -> 3.37x)\n",
            f.geomeans.0, f.geomeans.1
        );
        save_csv(
            "layout_ablation.csv",
            "model,speedup_aos,speedup_aosoa",
            &rows,
        );
    }

    if args.lut {
        println!("== Section 3.4.2: LUT ablation (speedups vs baseline) ==");
        let f = lut_ablation(&args.opts);
        let mut rows = Vec::new();
        for (m, none, scalar, vec) in &f.rows {
            println!("  {m:24} noLUT {none:5.2}x   scalarLUT {scalar:5.2}x   vecLUT {vec:5.2}x");
            rows.push(format!("{m},{none},{scalar},{vec}"));
        }
        println!();
        save_csv(
            "lut_ablation.csv",
            "model,no_lut,scalar_lut,vector_lut",
            &rows,
        );
    }

    if args.icc {
        println!("== Section 5: compiler-simd (icc omp simd) vs limpetMLIR ==");
        let f = icc_comparison(&args.opts, &tm);
        println!(
            "  compiler-simd geomean {:.2}x   limpetMLIR geomean {:.2}x   (paper: 2.19x vs 3.37x)\n",
            f.compiler_simd, f.limpet_mlir
        );
        save_csv(
            "icc_comparison.csv",
            "config,geomean",
            &[
                format!("compiler-simd,{}", f.compiler_simd),
                format!("limpetMLIR,{}", f.limpet_mlir),
            ],
        );
    }

    if args.roofline {
        println!("== Figure 6: roofline (limpetMLIR AVX-512, 32 modeled threads) ==");
        let f = fig6_roofline(&args.opts, &tm);
        let mut rows = Vec::new();
        for p in &f.points {
            println!(
                "  {:24} {:7} intensity {:7.3} F/B   {:9.2} GFlops/s",
                p.model, p.class, p.intensity, p.gflops
            );
            rows.push(format!(
                "{},{},{},{}",
                p.model, p.class, p.intensity, p.gflops
            ));
        }
        println!(
            "  ceilings: peak {:.0} GFlops/s, DRAM {:.0} GB/s   (paper: 760 GFlops/s, 199 GB/s)\n",
            f.peak_gflops, f.dram_gbps
        );
        save_csv("fig6_roofline.csv", "model,class,intensity,gflops", &rows);
    }

    if args.stats {
        println!("== Kernel statistics ==");
        let stats = kernel_stats(&args.opts);
        let mut rows = Vec::new();
        for s in &stats {
            let mix: Vec<String> = s
                .dialect_mix
                .iter()
                .map(|(d, n)| format!("{d}:{n}"))
                .collect();
            println!(
                "  {:24} baseline {:5} instrs   limpetMLIR {:5} instrs   LUT {:8} bytes   [{}]",
                s.model,
                s.baseline_instrs,
                s.mlir_instrs,
                s.lut_bytes,
                mix.join(" ")
            );
            rows.push(format!(
                "{},{},{},{}",
                s.model, s.baseline_instrs, s.mlir_instrs, s.lut_bytes
            ));
        }
        println!();
        save_csv(
            "kernel_stats.csv",
            "model,baseline_instrs,mlir_instrs,lut_bytes",
            &rows,
        );
    }

    let cs = KernelCache::global().stats();
    println!(
        "kernel cache: {} entries, {} memory hits, {} disk hits, {} cold compilations, {} executed steps",
        cs.entries, cs.hits, cs.disk_hits, cs.misses, cs.executed_steps
    );
    if cs.native_ready + cs.native_quarantined > 0 || cs.native_compiles + cs.native_disk_hits > 0 {
        println!(
            "  native tier: {} ready, {} cc compile(s), {} disk hit(s), {} quarantined",
            cs.native_ready, cs.native_compiles, cs.native_disk_hits, cs.native_quarantined
        );
    }
    if let Some(disk) = KernelCache::global().disk_cache() {
        let ds = disk.stats();
        let occupancy = disk
            .status()
            .map(|s| {
                format!(
                    "{} entr{}, {:.1} KiB",
                    s.entries,
                    if s.entries == 1 { "y" } else { "ies" },
                    s.bytes as f64 / 1024.0
                )
            })
            .unwrap_or_else(|e| format!("unreadable: {e}"));
        println!(
            "  disk tier {}: {occupancy}; {} hits, {} writes, {} rejected, {} evicted",
            disk.dir().display(),
            ds.hits,
            ds.writes,
            ds.rejects,
            ds.evictions
        );
    }
    if cs.quarantined > 0 || cs.poison_recoveries > 0 || cs.disk_rejects > 0 {
        println!(
            "  degraded: {} quarantined model(s), {} lock recovery(ies), {} disk entr{} rejected",
            cs.quarantined,
            cs.poison_recoveries,
            cs.disk_rejects,
            if cs.disk_rejects == 1 { "y" } else { "ies" }
        );
    }
    let incidents = KernelCache::global().incidents();
    if !incidents.is_empty() {
        // Deduplicated: a per-step incident repeating for hundreds of
        // steps prints once with an xN count, sorted by model and kind.
        let summary = summarize_incidents(&incidents);
        println!(
            "incident report ({} event(s), {} distinct):",
            incidents.len(),
            summary.len()
        );
        for (incident, count) in &summary {
            if *count > 1 {
                println!("  {incident} x{count}");
            } else {
                println!("  {incident}");
            }
        }
    }
}
