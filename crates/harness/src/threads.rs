//! Multi-threaded execution and the parallel timing model.
//!
//! Two ways to obtain multi-thread numbers:
//!
//! * [`ShardedSimulation`] — real `std::thread` execution over a
//!   *persistent worker pool*: cells are partitioned into per-thread
//!   shards (the compute stage of §3.1 has no inter-cell communication),
//!   each shard is owned by a worker thread spawned once at construction
//!   and reused across steps and across timed repetitions, with a barrier
//!   separating compute and membrane-update stages each step. The wall
//!   clock of [`ShardedSimulation::run_threaded`] starts only after a
//!   warm-up rendezvous inside the pool, so thread-creation and wake-up
//!   cost is excluded from measured step time. Faithful when the host has
//!   that many cores.
//! * [`TimingModel`] — a deterministic *simulated-parallel* model used for
//!   the paper's 32-core scaling figures on hosts with fewer cores (the
//!   hardware substitution documented in DESIGN.md §3): per-step time at
//!   `T` threads is
//!   `max(t₁/T, bytes/BW(T)) + barrier(T)`,
//!   where `BW(T) = stream_bw × min(T, saturation)` models DRAM
//!   saturation and `barrier(T)` grows with both the thread count and the
//!   vector width (synchronization + vector-state flush overhead — the
//!   effect behind the paper's small-model slowdowns in Fig. 3).
//!
//! `figures --real-threads` measures every thread count up to the host's
//! cores with the pool and falls back to the model only above that;
//! `figures --validate-tm` cross-validates the model against the pool on
//! the overlap region and persists the calibrated constants next to the
//! kernel disk cache ([`TimingModel::save`]).

use crate::sim::{PipelineKind, Simulation, Workload};
use limpet_easyml::Model;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Instant;

/// A command processed by one pool worker.
enum Cmd {
    /// Run `steps` barrier-separated steps. The caller times the interval
    /// between the two pool-wide rendezvous around the step loop.
    Run { steps: usize },
    /// Run a closure against the worker's shard (state inspection).
    Call(Box<dyn FnOnce(&mut Simulation) + Send>),
    /// Leave the worker loop (pool teardown).
    Exit,
}

/// One pool worker: its command channel and join handle. The worker
/// thread owns the shard's [`Simulation`].
#[derive(Debug)]
struct Worker {
    tx: mpsc::Sender<Cmd>,
    handle: Option<JoinHandle<()>>,
}

/// Real-thread execution over per-thread cell shards, backed by a
/// persistent worker pool: threads are spawned once in
/// [`ShardedSimulation::new`] and reused by every
/// [`ShardedSimulation::run_threaded`] call, so repeated timed runs pay
/// no spawn/teardown cost inside the measured region.
#[derive(Debug)]
pub struct ShardedSimulation {
    workers: Vec<Worker>,
    /// Pool-wide rendezvous (workers + caller) bracketing each step loop:
    /// the first crossing is the warm-up barrier (all workers awake), the
    /// second marks completion.
    rendezvous: Arc<Barrier>,
    /// Logical cells per shard, in shard (= global cell) order.
    shard_cells: Vec<usize>,
}

impl ShardedSimulation {
    /// Partitions `workload.n_cells` across at most `threads` shards
    /// (each padded to the kernel's chunk width internally) and spawns
    /// one worker thread per shard.
    ///
    /// Shard sizes always sum to exactly `workload.n_cells`: when the
    /// cell count does not fill every requested thread, the empty shards
    /// are dropped rather than padded with phantom cells, and
    /// [`ShardedSimulation::threads`] reports the real shard count.
    pub fn new(
        model: &Model,
        config: PipelineKind,
        workload: &Workload,
        threads: usize,
    ) -> ShardedSimulation {
        assert!(threads >= 1);
        assert!(workload.n_cells >= 1, "cannot shard an empty workload");
        let shards: Vec<Simulation> = shard_sizes(workload.n_cells, threads)
            .into_iter()
            .map(|cells| {
                let wl = Workload {
                    n_cells: cells,
                    ..*workload
                };
                if crate::faults::injection_active() {
                    // Injection runs must survive quarantined kernels:
                    // every shard degrades the same way (the resilient
                    // lookup is deterministic per (model, config) key).
                    Simulation::new_resilient(model, config, &wl, crate::HealthPolicy::Abort)
                        .unwrap_or_else(|q| {
                            panic!("model '{}' quarantined on every tier: {}", q.model, q.error)
                        })
                } else {
                    Simulation::new(model, config, &wl)
                }
            })
            .collect();
        let shard_cells: Vec<usize> = shards.iter().map(Simulation::n_cells).collect();
        let n = shards.len();
        let rendezvous = Arc::new(Barrier::new(n + 1));
        let step_barrier = Arc::new(Barrier::new(n));
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let (tx, rx) = mpsc::channel();
                let rendezvous = Arc::clone(&rendezvous);
                let step_barrier = Arc::clone(&step_barrier);
                let handle = std::thread::Builder::new()
                    .name(format!("limpet-shard-{i}"))
                    .spawn(move || worker_loop(shard, &rx, &rendezvous, &step_barrier))
                    .expect("spawn shard worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardedSimulation {
            workers,
            rendezvous,
            shard_cells,
        }
    }

    /// Number of shards actually created (≤ the requested thread count).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Total cells across all shards.
    pub fn n_cells(&self) -> usize {
        self.shard_cells.iter().sum()
    }

    /// Logical cells owned by shard `i`.
    pub fn shard_n_cells(&self, i: usize) -> usize {
        self.shard_cells[i]
    }

    /// Runs `steps` steps on the persistent pool (one OS thread per
    /// shard, barrier-separated stages) and returns the wall-clock
    /// seconds of the step loop alone.
    ///
    /// The clock starts after a warm-up rendezvous that every worker has
    /// crossed — so the measured interval excludes thread spawn (paid in
    /// [`ShardedSimulation::new`]) and command-channel wake-up, fixing
    /// the bias where per-call spawn/teardown overhead was charged to
    /// the simulation.
    pub fn run_threaded(&mut self, steps: usize) -> f64 {
        for w in &self.workers {
            w.tx.send(Cmd::Run { steps }).expect("shard worker died");
        }
        // Warm-up rendezvous: returns once every worker is awake and
        // about to enter its step loop.
        self.rendezvous.wait();
        let start = Instant::now();
        // Completion rendezvous: returns once the last worker finishes.
        self.rendezvous.wait();
        start.elapsed().as_secs_f64()
    }

    /// Runs up to `steps` steps in `chunk`-step slices, polling `token`
    /// between slices, and returns `(steps_completed, wall_seconds,
    /// cause)` where `cause` is `Some` iff the token tripped before all
    /// steps ran.
    ///
    /// The token is polled **only on the caller thread**, between
    /// pool-wide rendezvous: a per-worker poll could disagree about the
    /// trip mid-step and deadlock the stage barriers, so the caller is
    /// the single decider and every shard stops at the same step
    /// boundary. Cancellation granularity is therefore `chunk` steps.
    pub fn run_threaded_cancellable(
        &mut self,
        steps: usize,
        chunk: usize,
        token: &crate::CancelToken,
    ) -> (usize, f64, Option<crate::CancelCause>) {
        let chunk = chunk.max(1);
        let mut done = 0;
        let mut secs = 0.0;
        while done < steps {
            if let Some(cause) = token.checked() {
                return (done, secs, Some(cause));
            }
            let n = chunk.min(steps - done);
            secs += self.run_threaded(n);
            done += n;
        }
        (done, secs, None)
    }

    /// Runs a closure against shard `i`'s simulation on its worker thread
    /// and returns the result (e.g. to read voltages after a run).
    pub fn with_shard<R, F>(&self, i: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Simulation) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.workers[i]
            .tx
            .send(Cmd::Call(Box::new(move |sim| {
                let _ = tx.send(f(sim));
            })))
            .expect("shard worker died");
        rx.recv().expect("shard worker died")
    }

    /// Membrane potential of a global cell index (shards partition the
    /// cell range in order, so global indices map onto (shard, local)).
    pub fn vm(&self, cell: usize) -> f64 {
        let (shard, local) = self.locate(cell);
        self.with_shard(shard, move |s| s.vm(local))
    }

    /// Bit pattern of the full visible state of every cell, in global
    /// cell order — the payload of the real-thread differential gate
    /// (compare against [`Simulation::state_bits`] of a single-thread
    /// run).
    pub fn state_bits(&self) -> Vec<u64> {
        let mut bits = Vec::new();
        for i in 0..self.workers.len() {
            bits.extend(self.with_shard(i, |s| s.state_bits()));
        }
        bits
    }

    /// Captures a pool-wide [`crate::checkpoint::Snapshot`] at a
    /// rendezvous: `with_shard` drains each worker's command channel in
    /// turn, and between `run_threaded` calls every shard is parked at
    /// the same step boundary, so the concatenated state is exactly what
    /// a single-thread run of the same step count holds. The snapshot
    /// records the shard shape for observability, but resume re-shards
    /// deterministically for whatever thread count it is given — a
    /// 4-thread snapshot restores into a 1- or 8-thread pool unchanged.
    pub fn snapshot(&self, config_label: &str, steps_done: u64) -> crate::checkpoint::Snapshot {
        let label = config_label.to_string();
        let mut snap = self.with_shard(0, move |sim| sim.snapshot(&label, steps_done));
        for i in 1..self.workers.len() {
            let shard_bits = self.with_shard(i, |sim| sim.state_bits());
            snap.state.extend(shard_bits);
        }
        snap.n_cells = self.n_cells();
        snap.shards = self.shard_cells.clone();
        snap
    }

    /// Restores a snapshot into this pool, slicing the flat logical-cell
    /// state across shards by the pool's own (deterministic)
    /// [`shard_sizes`] partition.
    ///
    /// # Errors
    ///
    /// Returns a description when the snapshot's cell count or state
    /// width does not match this pool.
    pub fn restore(&mut self, snap: &crate::checkpoint::Snapshot) -> Result<(), String> {
        if snap.n_cells != self.n_cells() {
            return Err(format!(
                "snapshot has {} cells, pool has {}",
                snap.n_cells,
                self.n_cells()
            ));
        }
        if snap.n_cells == 0 || !snap.state.len().is_multiple_of(snap.n_cells) {
            return Err(format!(
                "snapshot state ({} values) is not a whole number of cells ({})",
                snap.state.len(),
                snap.n_cells
            ));
        }
        let per_cell = snap.state.len() / snap.n_cells;
        let mut offset = 0;
        for i in 0..self.workers.len() {
            let cells = self.shard_cells[i];
            let shard_snap = crate::checkpoint::Snapshot {
                n_cells: cells,
                // Shards never run native (it is width-1 single-sim
                // only), so restore on the optimized tier regardless of
                // what tier the writer was on — the bits are identical.
                tier: crate::Tier::Optimized.to_string(),
                nan_plan: None,
                shards: Vec::new(),
                meta: None,
                state: snap.state[offset * per_cell..(offset + cells) * per_cell].to_vec(),
                model: snap.model.clone(),
                config: snap.config.clone(),
                dt_bits: snap.dt_bits,
                t_bits: snap.t_bits,
                steps_done: snap.steps_done,
                executed_steps: snap.executed_steps,
            };
            self.with_shard(i, move |sim| sim.restore(&shard_snap))?;
            offset += cells;
        }
        Ok(())
    }

    /// Builds a pool for `threads` threads and restores `snap` into it —
    /// the sharded resume path. The thread count is free to differ from
    /// the one that wrote the snapshot; the key echo (model, config,
    /// cells, dt) must match.
    ///
    /// # Errors
    ///
    /// Returns a description on key mismatch or shape mismatch.
    pub fn resume_from(
        model: &Model,
        config: PipelineKind,
        workload: &Workload,
        threads: usize,
        snap: &crate::checkpoint::Snapshot,
    ) -> Result<ShardedSimulation, String> {
        snap.key_matches(&model.name, &config.label(), workload.n_cells, workload.dt)?;
        let mut sharded = ShardedSimulation::new(model, config, workload, threads);
        sharded.restore(snap)?;
        Ok(sharded)
    }

    fn locate(&self, cell: usize) -> (usize, usize) {
        let mut local = cell;
        for (i, &n) in self.shard_cells.iter().enumerate() {
            if local < n {
                return (i, local);
            }
            local -= n;
        }
        panic!("cell {cell} out of range ({} total)", self.n_cells());
    }
}

impl Drop for ShardedSimulation {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Cmd::Exit);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The body of one pool worker: owns its shard and serves commands until
/// told to exit (or the pool is dropped and the channel disconnects).
fn worker_loop(
    mut shard: Simulation,
    rx: &mpsc::Receiver<Cmd>,
    rendezvous: &Barrier,
    step_barrier: &Barrier,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Run { steps } => {
                rendezvous.wait();
                let cells = shard.padded_cells();
                for _ in 0..steps {
                    // Compute stage over the shard's own cells.
                    shard.step_range(0, cells);
                    step_barrier.wait();
                    // Membrane stage.
                    shard.update_vm();
                    shard.advance_time();
                    step_barrier.wait();
                }
                rendezvous.wait();
            }
            Cmd::Call(f) => f(&mut shard),
            Cmd::Exit => break,
        }
    }
}

/// Balanced partition of `n_cells` into at most `threads` non-empty
/// shards: the first `n_cells % threads` shards get one extra cell, and
/// shards that would be empty (more threads than cells) are not created.
/// The returned sizes always sum to exactly `n_cells`.
pub fn shard_sizes(n_cells: usize, threads: usize) -> Vec<usize> {
    assert!(threads >= 1);
    let threads = threads.min(n_cells).max(1);
    let (base, extra) = (n_cells / threads, n_cells % threads);
    (0..threads)
        .map(|i| base + usize::from(i < extra))
        .filter(|&c| c > 0)
        .collect()
}

/// Machine constants for the simulated-parallel model, calibrated once
/// per process by micro-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Single-thread sustainable memory bandwidth (bytes/s), measured
    /// with a stream triad.
    pub stream_bandwidth: f64,
    /// How many threads' worth of bandwidth the socket sustains before
    /// DRAM saturates (the paper's platform: 199 GB/s aggregate vs.
    /// roughly 30 GB/s per-core demand).
    pub bandwidth_saturation: f64,
    /// Barrier cost per step per `log2(T)` in seconds.
    pub barrier_base: f64,
    /// Additional per-step synchronization cost per vector lane (vector
    /// register state flush at the barrier).
    pub lane_sync: f64,
}

impl Default for TimingModel {
    fn default() -> TimingModel {
        TimingModel {
            stream_bandwidth: 8e9,
            bandwidth_saturation: 6.0,
            barrier_base: 1.2e-6,
            lane_sync: 0.15e-6,
        }
    }
}

/// File name of the persisted calibration constants (stored next to the
/// kernel disk cache entries).
const TIMING_MODEL_FILE: &str = "timing-model.v1";
/// Format stamp of the persisted file; bump on layout changes so stale
/// files are recalibrated instead of misread.
const TIMING_MODEL_HEADER: &str = "timing-model-v1";

impl TimingModel {
    /// Calibrates the stream bandwidth on the current host; other
    /// constants keep representative defaults (documented in DESIGN.md).
    pub fn calibrate() -> TimingModel {
        TimingModel {
            stream_bandwidth: measure_stream_bandwidth(),
            ..TimingModel::default()
        }
    }

    /// Persists the calibrated constants into `dir` (the kernel disk
    /// cache directory) with an atomic temp+rename write, returning the
    /// file path. Values are stored as exact f64 bit patterns so a
    /// loaded model reproduces the persisted one bit-for-bit.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let body = format!(
            "{TIMING_MODEL_HEADER}\nstream_bandwidth {:016x}\nbandwidth_saturation {:016x}\nbarrier_base {:016x}\nlane_sync {:016x}\n",
            self.stream_bandwidth.to_bits(),
            self.bandwidth_saturation.to_bits(),
            self.barrier_base.to_bits(),
            self.lane_sync.to_bits(),
        );
        let path = dir.join(TIMING_MODEL_FILE);
        let tmp = dir.join(format!("{TIMING_MODEL_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads persisted calibration constants from `dir`. Returns `None`
    /// when the file is absent, has a wrong format stamp, or holds
    /// non-finite / non-positive constants (any of which means the file
    /// should be ignored and the host recalibrated).
    pub fn load(dir: &Path) -> Option<TimingModel> {
        let text = std::fs::read_to_string(dir.join(TIMING_MODEL_FILE)).ok()?;
        let mut lines = text.lines();
        if lines.next()? != TIMING_MODEL_HEADER {
            return None;
        }
        let mut field = |name: &str| -> Option<f64> {
            let line = lines.next()?;
            let (key, bits) = line.split_once(' ')?;
            if key != name {
                return None;
            }
            Some(f64::from_bits(u64::from_str_radix(bits, 16).ok()?))
        };
        let tm = TimingModel {
            stream_bandwidth: field("stream_bandwidth")?,
            bandwidth_saturation: field("bandwidth_saturation")?,
            barrier_base: field("barrier_base")?,
            lane_sync: field("lane_sync")?,
        };
        let sane = [
            tm.stream_bandwidth,
            tm.bandwidth_saturation,
            tm.barrier_base,
            tm.lane_sync,
        ]
        .iter()
        .all(|v| v.is_finite() && *v > 0.0);
        sane.then_some(tm)
    }

    /// Loads persisted constants from `dir` when present and valid, else
    /// calibrates. The boolean reports whether the persisted file was
    /// used.
    pub fn load_or_calibrate(dir: &Path) -> (TimingModel, bool) {
        match TimingModel::load(dir) {
            Some(tm) => (tm, true),
            None => (TimingModel::calibrate(), false),
        }
    }

    /// Estimated wall time of a `steps`-step run at `threads` threads,
    /// given the measured single-thread time `t1` of the same run, the
    /// kernel's bytes moved per step, and its vector width.
    pub fn estimate(
        &self,
        t1: f64,
        bytes_per_step: u64,
        steps: usize,
        threads: usize,
        width: usize,
    ) -> f64 {
        assert!(threads >= 1 && steps >= 1);
        let t1_step = t1 / steps as f64;
        let compute = t1_step / threads as f64;
        let bw = self.stream_bandwidth * (threads as f64).min(self.bandwidth_saturation);
        let mem_floor = bytes_per_step as f64 / bw;
        let barrier = if threads == 1 {
            0.0
        } else {
            (self.barrier_base + self.lane_sync * width as f64) * (threads as f64).log2()
        };
        steps as f64 * (compute.max(mem_floor) + barrier)
    }
}

/// Measures single-thread stream-triad bandwidth (bytes/s).
///
/// Traffic accounting includes the write-allocate (RFO) fill of `c`: a
/// store to a line not in cache first reads it from DRAM, so each triad
/// element moves 4 × 8 = 32 bytes (read `a`, read `b`, RFO + write-back
/// of `c`), not 24. The previous 24-byte accounting overstated calibrated
/// bandwidth by a third and skewed the `mem_floor` of every figure.
pub fn measure_stream_bandwidth() -> f64 {
    let n = 4 << 20; // 4M doubles = 32 MiB, beyond LLC on most hosts
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    // Warm up.
    for i in 0..n {
        c[i] = a[i] + 0.5 * b[i];
    }
    let reps = 5;
    let start = Instant::now();
    for r in 0..reps {
        let s = 0.5 + r as f64 * 1e-9;
        for i in 0..n {
            c[i] = a[i] + s * b[i];
        }
        // Inside the timed loop so the triad is a observable effect each
        // repetition and cannot be hoisted/elided by licm.
        std::hint::black_box(&mut c);
    }
    let secs = start.elapsed().as_secs_f64();
    // 2 loads + 1 store + 1 write-allocate line fill, 8 bytes each.
    (reps * n * 32) as f64 / secs
}

/// Measures the median wall time of `runs` invocations of `f` (the paper
/// runs five, drops the extrema, and averages three; the median of three
/// has the same robustness at lower cost).
pub fn measure_median(runs: usize, mut f: impl FnMut()) -> f64 {
    measure_median_secs(runs, move || {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    })
}

/// Median of `runs` wall-time samples produced by `f` — for callers that
/// measure the interval themselves (e.g. the worker pool, whose
/// [`ShardedSimulation::run_threaded`] excludes command wake-up from its
/// own clock).
///
/// An even sample count averages the two middle elements; indexing
/// `times[len / 2]` alone would return the upper middle and bias the
/// median upward.
pub fn measure_median_secs(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..runs.max(1)).map(|_| f()).collect();
    times.sort_by(f64::total_cmp);
    let n = times.len();
    if n % 2 == 1 {
        times[n / 2]
    } else {
        (times[n / 2 - 1] + times[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_codegen::pipeline::VectorIsa;
    use limpet_models::model;

    #[test]
    fn timing_model_scales_compute_bound() {
        let tm = TimingModel {
            stream_bandwidth: 1e12, // effectively no memory floor
            ..TimingModel::default()
        };
        let t1 = 10.0;
        let t32 = tm.estimate(t1, 1000, 100, 32, 8);
        // Large compute-bound run: near-ideal speedup.
        assert!(t1 / t32 > 20.0, "speedup {}", t1 / t32);
    }

    #[test]
    fn timing_model_saturates_memory_bound() {
        let tm = TimingModel {
            stream_bandwidth: 1e9,
            bandwidth_saturation: 4.0,
            ..TimingModel::default()
        };
        // 1 GB per step, t1 = 1.2 s/step: memory floor dominates beyond
        // 4 threads.
        let t1 = 120.0;
        let t8 = tm.estimate(t1, 1_000_000_000, 100, 8, 8);
        let t32 = tm.estimate(t1, 1_000_000_000, 100, 32, 8);
        let s8 = t1 / t8;
        let s32 = t1 / t32;
        assert!((s8 - s32).abs() / s8 < 0.05, "saturated: {s8} vs {s32}");
        assert!(s8 < 6.0);
    }

    #[test]
    fn timing_model_barrier_hurts_tiny_work() {
        let tm = TimingModel::default();
        // 1 µs of work per step: barrier dominates at 32 threads.
        let t1 = 1e-4;
        let t32 = tm.estimate(t1, 100, 100, 32, 8);
        assert!(t32 > t1, "tiny work must slow down: {t32} vs {t1}");
    }

    #[test]
    fn timing_model_wider_vectors_pay_more_sync() {
        let tm = TimingModel::default();
        let t1 = 1e-3;
        let narrow = tm.estimate(t1, 100, 100, 32, 1);
        let wide = tm.estimate(t1, 100, 100, 32, 8);
        assert!(wide > narrow);
    }

    #[test]
    fn timing_model_persists_bit_exactly_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("limpet-tm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tm = TimingModel {
            stream_bandwidth: 12.345e9,
            bandwidth_saturation: 5.5,
            barrier_base: 1.7e-6,
            lane_sync: 0.21e-6,
        };
        let path = tm.save(&dir).expect("save");
        assert!(path.exists());
        let loaded = TimingModel::load(&dir).expect("load");
        assert_eq!(
            loaded.stream_bandwidth.to_bits(),
            tm.stream_bandwidth.to_bits()
        );
        assert_eq!(loaded, tm);
        let (again, was_loaded) = TimingModel::load_or_calibrate(&dir);
        assert!(was_loaded);
        assert_eq!(again, tm);
        // A stale format stamp must be rejected, not misread.
        std::fs::write(dir.join(TIMING_MODEL_FILE), "timing-model-v0\n").unwrap();
        assert!(TimingModel::load(&dir).is_none());
        // Non-finite constants are rejected too.
        let bad = format!(
            "{TIMING_MODEL_HEADER}\nstream_bandwidth {:016x}\nbandwidth_saturation {:016x}\nbarrier_base {:016x}\nlane_sync {:016x}\n",
            f64::NAN.to_bits(),
            1.0f64.to_bits(),
            1.0f64.to_bits(),
            1.0f64.to_bits(),
        );
        std::fs::write(dir.join(TIMING_MODEL_FILE), bad).unwrap();
        assert!(TimingModel::load(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Full-state bit-identity of the pool against the single-thread
    /// driver, over vector widths {1, 4, 8} (baseline, AVX2, AVX-512)
    /// and uneven shard shapes — not just cell 0's voltage.
    #[test]
    fn sharded_simulation_matches_single() {
        let m = model("Plonsey");
        for (config, label) in [
            (PipelineKind::Baseline, "width-1"),
            (PipelineKind::LimpetMlir(VectorIsa::Avx2), "width-4"),
            (PipelineKind::LimpetMlir(VectorIsa::Avx512), "width-8"),
        ] {
            // 61 cells over 4 threads: shards of 16+15+15+15, none a
            // multiple of the vector width, so padding lanes differ
            // between the sharded and single-thread layouts.
            for (n_cells, threads) in [(64, 4), (61, 4), (13, 8)] {
                let wl = Workload {
                    n_cells,
                    steps: 0,
                    dt: 0.01,
                };
                let mut single = Simulation::new(&m, config, &wl);
                let mut sharded = ShardedSimulation::new(&m, config, &wl, threads);
                for _ in 0..200 {
                    single.step();
                }
                sharded.run_threaded(200);
                assert_eq!(
                    sharded.state_bits(),
                    single.state_bits(),
                    "{label} n_cells={n_cells} threads={threads}: full state diverged"
                );
            }
        }
    }

    /// The pool is persistent: two back-to-back runs on the same
    /// `ShardedSimulation` continue one trajectory (reuse, not respawn).
    #[test]
    fn pool_reuse_across_runs_continues_trajectory() {
        let m = model("Plonsey");
        let wl = Workload {
            n_cells: 24,
            steps: 0,
            dt: 0.01,
        };
        let mut single = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let mut sharded = ShardedSimulation::new(&m, PipelineKind::Baseline, &wl, 3);
        for _ in 0..150 {
            single.step();
        }
        let t0 = sharded.run_threaded(100);
        let t1 = sharded.run_threaded(50);
        assert!(t0 > 0.0 && t1 > 0.0);
        assert_eq!(sharded.state_bits(), single.state_bits());
        assert!((sharded.vm(0) - single.vm(0)).abs() < 1e-12);
    }

    /// Cancellation stops every shard at the same chunk boundary: the
    /// partial sharded run must be bit-identical to a single-thread run
    /// of exactly the completed step count.
    #[test]
    fn cancelled_sharded_run_stops_whole_at_a_boundary() {
        let m = model("Plonsey");
        let wl = Workload {
            n_cells: 24,
            steps: 0,
            dt: 0.01,
        };
        let mut single = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let mut sharded = ShardedSimulation::new(&m, PipelineKind::Baseline, &wl, 3);
        // A pre-tripped token: zero chunks run.
        let token = crate::CancelToken::new();
        token.cancel();
        let (done, _, cause) = sharded.run_threaded_cancellable(100, 10, &token);
        assert_eq!(done, 0);
        assert_eq!(cause, Some(crate::CancelCause::Cancelled));
        // A live token: all steps run, no cause.
        let live = crate::CancelToken::new();
        let (done, secs, cause) = sharded.run_threaded_cancellable(40, 7, &live);
        assert_eq!((done, cause), (40, None));
        assert!(secs > 0.0);
        for _ in 0..40 {
            single.step();
        }
        assert_eq!(sharded.state_bits(), single.state_bits());
    }

    #[test]
    fn shard_sizes_sum_exactly_for_all_shapes() {
        // Every (n_cells, threads) pair: totals must equal the workload,
        // no shard may be empty, and sizes must be balanced (max-min ≤ 1).
        for n_cells in 1..=40 {
            for threads in 1..=10 {
                let sizes = shard_sizes(n_cells, threads);
                assert_eq!(
                    sizes.iter().sum::<usize>(),
                    n_cells,
                    "phantom or lost cells at n_cells={n_cells}, threads={threads}: {sizes:?}"
                );
                assert!(sizes.len() <= threads);
                assert!(sizes.iter().all(|&c| c > 0), "empty shard: {sizes:?}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn sharded_simulation_has_no_phantom_cells() {
        let m = model("Plonsey");
        // The original bug: 5 cells over 4 threads made shards of
        // 2+2+1+1 = 6 cells. Check that shape and a few other uneven ones.
        for (n_cells, threads) in [(5, 4), (3, 8), (7, 3), (64, 5), (1, 4)] {
            let wl = Workload {
                n_cells,
                steps: 0,
                dt: 0.01,
            };
            let sharded = ShardedSimulation::new(&m, PipelineKind::Baseline, &wl, threads);
            assert_eq!(
                sharded.n_cells(),
                n_cells,
                "total cells wrong for n_cells={n_cells}, threads={threads}"
            );
            assert!(sharded.threads() <= threads);
            for i in 0..sharded.threads() {
                assert!(sharded.shard_n_cells(i) > 0);
            }
        }
    }

    #[test]
    fn stream_bandwidth_is_plausible() {
        let bw = measure_stream_bandwidth();
        assert!(bw > 1e8, "implausibly low bandwidth {bw}");
        assert!(bw < 1e12, "implausibly high bandwidth {bw}");
    }

    #[test]
    fn measure_median_returns_middle() {
        let mut i = 0;
        let t = measure_median(3, || {
            i += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert_eq!(i, 3);
        assert!(t >= 0.001);
    }

    /// Even sample counts must average the two middle elements; the old
    /// `times[len / 2]` returned the upper middle (here: 3.0, not 2.5).
    #[test]
    fn measure_median_even_count_averages_middle_pair() {
        let samples = [4.0, 1.0, 3.0, 2.0];
        let mut it = samples.iter();
        let med = measure_median_secs(4, || *it.next().unwrap());
        assert!((med - 2.5).abs() < 1e-12, "even-count median {med}");
        let samples = [5.0, 1.0, 3.0];
        let mut it = samples.iter();
        let med = measure_median_secs(3, || *it.next().unwrap());
        assert!((med - 3.0).abs() < 1e-12, "odd-count median {med}");
    }
}
