//! Multi-threaded execution and the parallel timing model.
//!
//! Two ways to obtain multi-thread numbers:
//!
//! * [`ShardedSimulation`] — real `std::thread` execution: cells are
//!   partitioned into per-thread shards (the compute stage of §3.1 has no
//!   inter-cell communication), with a barrier separating compute and
//!   membrane-update stages each step. Faithful when the host has that
//!   many cores.
//! * [`TimingModel`] — a deterministic *simulated-parallel* model used for
//!   the paper's 32-core scaling figures on hosts with fewer cores (the
//!   hardware substitution documented in DESIGN.md §3): per-step time at
//!   `T` threads is
//!   `max(t₁/T, bytes/BW(T)) + barrier(T)`,
//!   where `BW(T) = stream_bw × min(T, saturation)` models DRAM
//!   saturation and `barrier(T)` grows with both the thread count and the
//!   vector width (synchronization + vector-state flush overhead — the
//!   effect behind the paper's small-model slowdowns in Fig. 3).

use crate::sim::{PipelineKind, Simulation, Workload};
use limpet_easyml::Model;
use std::sync::Barrier;
use std::time::Instant;

/// Real-thread execution over per-thread cell shards.
#[derive(Debug)]
pub struct ShardedSimulation {
    shards: Vec<Simulation>,
}

impl ShardedSimulation {
    /// Partitions `workload.n_cells` across at most `threads` shards
    /// (each padded to the kernel's chunk width internally).
    ///
    /// Shard sizes always sum to exactly `workload.n_cells`: when the
    /// cell count does not fill every requested thread, the empty shards
    /// are dropped rather than padded with phantom cells, and
    /// [`ShardedSimulation::threads`] reports the real shard count.
    pub fn new(
        model: &Model,
        config: PipelineKind,
        workload: &Workload,
        threads: usize,
    ) -> ShardedSimulation {
        assert!(threads >= 1);
        assert!(workload.n_cells >= 1, "cannot shard an empty workload");
        let shards = shard_sizes(workload.n_cells, threads)
            .into_iter()
            .map(|cells| {
                let wl = Workload {
                    n_cells: cells,
                    ..*workload
                };
                if crate::faults::injection_active() {
                    // Injection runs must survive quarantined kernels:
                    // every shard degrades the same way (the resilient
                    // lookup is deterministic per (model, config) key).
                    Simulation::new_resilient(model, config, &wl, crate::HealthPolicy::Abort)
                        .unwrap_or_else(|q| {
                            panic!("model '{}' quarantined on every tier: {}", q.model, q.error)
                        })
                } else {
                    Simulation::new(model, config, &wl)
                }
            })
            .collect();
        ShardedSimulation { shards }
    }

    /// Number of shards actually created (≤ the requested thread count).
    pub fn threads(&self) -> usize {
        self.shards.len()
    }

    /// Total cells across all shards.
    pub fn n_cells(&self) -> usize {
        self.shards.iter().map(|s| s.n_cells()).sum()
    }

    /// Runs `steps` steps with one OS thread per shard, barrier-separated
    /// stages, and returns the wall-clock seconds.
    pub fn run_threaded(&mut self, steps: usize) -> f64 {
        let n = self.shards.len();
        let barrier = Barrier::new(n);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for shard in &mut self.shards {
                let barrier = &barrier;
                scope.spawn(move || {
                    for _ in 0..steps {
                        // Compute stage over the shard's own cells.
                        let cells = padded_cells(shard);
                        shard.step_range(0, cells);
                        barrier.wait();
                        // Membrane stage.
                        shard.update_vm();
                        shard.advance_time();
                        barrier.wait();
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    }

    /// Access to a shard (e.g. to read voltages after a run).
    pub fn shard(&self, i: usize) -> &Simulation {
        &self.shards[i]
    }
}

fn padded_cells(sim: &Simulation) -> usize {
    sim.padded_cells()
}

/// Balanced partition of `n_cells` into at most `threads` non-empty
/// shards: the first `n_cells % threads` shards get one extra cell, and
/// shards that would be empty (more threads than cells) are not created.
/// The returned sizes always sum to exactly `n_cells`.
pub fn shard_sizes(n_cells: usize, threads: usize) -> Vec<usize> {
    assert!(threads >= 1);
    let threads = threads.min(n_cells).max(1);
    let (base, extra) = (n_cells / threads, n_cells % threads);
    (0..threads)
        .map(|i| base + usize::from(i < extra))
        .filter(|&c| c > 0)
        .collect()
}

/// Machine constants for the simulated-parallel model, calibrated once
/// per process by micro-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Single-thread sustainable memory bandwidth (bytes/s), measured
    /// with a stream triad.
    pub stream_bandwidth: f64,
    /// How many threads' worth of bandwidth the socket sustains before
    /// DRAM saturates (the paper's platform: 199 GB/s aggregate vs.
    /// roughly 30 GB/s per-core demand).
    pub bandwidth_saturation: f64,
    /// Barrier cost per step per `log2(T)` in seconds.
    pub barrier_base: f64,
    /// Additional per-step synchronization cost per vector lane (vector
    /// register state flush at the barrier).
    pub lane_sync: f64,
}

impl Default for TimingModel {
    fn default() -> TimingModel {
        TimingModel {
            stream_bandwidth: 8e9,
            bandwidth_saturation: 6.0,
            barrier_base: 1.2e-6,
            lane_sync: 0.15e-6,
        }
    }
}

impl TimingModel {
    /// Calibrates the stream bandwidth on the current host; other
    /// constants keep representative defaults (documented in DESIGN.md).
    pub fn calibrate() -> TimingModel {
        TimingModel {
            stream_bandwidth: measure_stream_bandwidth(),
            ..TimingModel::default()
        }
    }

    /// Estimated wall time of a `steps`-step run at `threads` threads,
    /// given the measured single-thread time `t1` of the same run, the
    /// kernel's bytes moved per step, and its vector width.
    pub fn estimate(
        &self,
        t1: f64,
        bytes_per_step: u64,
        steps: usize,
        threads: usize,
        width: usize,
    ) -> f64 {
        assert!(threads >= 1 && steps >= 1);
        let t1_step = t1 / steps as f64;
        let compute = t1_step / threads as f64;
        let bw = self.stream_bandwidth * (threads as f64).min(self.bandwidth_saturation);
        let mem_floor = bytes_per_step as f64 / bw;
        let barrier = if threads == 1 {
            0.0
        } else {
            (self.barrier_base + self.lane_sync * width as f64) * (threads as f64).log2()
        };
        steps as f64 * (compute.max(mem_floor) + barrier)
    }
}

/// Measures single-thread stream-triad bandwidth (bytes/s).
pub fn measure_stream_bandwidth() -> f64 {
    let n = 4 << 20; // 4M doubles = 32 MiB, beyond LLC on most hosts
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    // Warm up.
    for i in 0..n {
        c[i] = a[i] + 0.5 * b[i];
    }
    let reps = 5;
    let start = Instant::now();
    for r in 0..reps {
        let s = 0.5 + r as f64 * 1e-9;
        for i in 0..n {
            c[i] = a[i] + s * b[i];
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(&c);
    // 3 arrays × 8 bytes per element per iteration.
    (reps * n * 24) as f64 / secs
}

/// Measures the median wall time of `runs` invocations of `f` (the paper
/// runs five, drops the extrema, and averages three; the median of three
/// has the same robustness at lower cost).
pub fn measure_median(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_models::model;

    #[test]
    fn timing_model_scales_compute_bound() {
        let tm = TimingModel {
            stream_bandwidth: 1e12, // effectively no memory floor
            ..TimingModel::default()
        };
        let t1 = 10.0;
        let t32 = tm.estimate(t1, 1000, 100, 32, 8);
        // Large compute-bound run: near-ideal speedup.
        assert!(t1 / t32 > 20.0, "speedup {}", t1 / t32);
    }

    #[test]
    fn timing_model_saturates_memory_bound() {
        let tm = TimingModel {
            stream_bandwidth: 1e9,
            bandwidth_saturation: 4.0,
            ..TimingModel::default()
        };
        // 1 GB per step, t1 = 1.2 s/step: memory floor dominates beyond
        // 4 threads.
        let t1 = 120.0;
        let t8 = tm.estimate(t1, 1_000_000_000, 100, 8, 8);
        let t32 = tm.estimate(t1, 1_000_000_000, 100, 32, 8);
        let s8 = t1 / t8;
        let s32 = t1 / t32;
        assert!((s8 - s32).abs() / s8 < 0.05, "saturated: {s8} vs {s32}");
        assert!(s8 < 6.0);
    }

    #[test]
    fn timing_model_barrier_hurts_tiny_work() {
        let tm = TimingModel::default();
        // 1 µs of work per step: barrier dominates at 32 threads.
        let t1 = 1e-4;
        let t32 = tm.estimate(t1, 100, 100, 32, 8);
        assert!(t32 > t1, "tiny work must slow down: {t32} vs {t1}");
    }

    #[test]
    fn timing_model_wider_vectors_pay_more_sync() {
        let tm = TimingModel::default();
        let t1 = 1e-3;
        let narrow = tm.estimate(t1, 100, 100, 32, 1);
        let wide = tm.estimate(t1, 100, 100, 32, 8);
        assert!(wide > narrow);
    }

    #[test]
    fn sharded_simulation_matches_single() {
        let m = model("Plonsey");
        let wl = Workload {
            n_cells: 64,
            steps: 0,
            dt: 0.01,
        };
        let mut single = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let mut sharded = ShardedSimulation::new(&m, PipelineKind::Baseline, &wl, 4);
        for _ in 0..200 {
            single.step();
        }
        sharded.run_threaded(200);
        // Cell 0 of shard 0 sees the same history as cell 0 overall.
        let v0 = single.vm(0);
        let v1 = sharded.shard(0).vm(0);
        assert!((v0 - v1).abs() < 1e-9, "{v0} vs {v1}");
    }

    #[test]
    fn shard_sizes_sum_exactly_for_all_shapes() {
        // Every (n_cells, threads) pair: totals must equal the workload,
        // no shard may be empty, and sizes must be balanced (max-min ≤ 1).
        for n_cells in 1..=40 {
            for threads in 1..=10 {
                let sizes = shard_sizes(n_cells, threads);
                assert_eq!(
                    sizes.iter().sum::<usize>(),
                    n_cells,
                    "phantom or lost cells at n_cells={n_cells}, threads={threads}: {sizes:?}"
                );
                assert!(sizes.len() <= threads);
                assert!(sizes.iter().all(|&c| c > 0), "empty shard: {sizes:?}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn sharded_simulation_has_no_phantom_cells() {
        let m = model("Plonsey");
        // The original bug: 5 cells over 4 threads made shards of
        // 2+2+1+1 = 6 cells. Check that shape and a few other uneven ones.
        for (n_cells, threads) in [(5, 4), (3, 8), (7, 3), (64, 5), (1, 4)] {
            let wl = Workload {
                n_cells,
                steps: 0,
                dt: 0.01,
            };
            let sharded = ShardedSimulation::new(&m, PipelineKind::Baseline, &wl, threads);
            assert_eq!(
                sharded.n_cells(),
                n_cells,
                "total cells wrong for n_cells={n_cells}, threads={threads}"
            );
            assert!(sharded.threads() <= threads);
            for i in 0..sharded.threads() {
                assert!(sharded.shard(i).n_cells() > 0);
            }
        }
    }

    #[test]
    fn stream_bandwidth_is_plausible() {
        let bw = measure_stream_bandwidth();
        assert!(bw > 1e8, "implausibly low bandwidth {bw}");
        assert!(bw < 1e12, "implausibly high bandwidth {bw}");
    }

    #[test]
    fn measure_median_returns_middle() {
        let mut i = 0;
        let t = measure_median(3, || {
            i += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert_eq!(i, 3);
        assert!(t >= 0.001);
    }
}
