//! # limpet-harness
//!
//! The experiment platform of limpet-rs: the simulation driver matching
//! openCARP's `bench` binary ([`sim`]), real-thread and simulated-parallel
//! execution ([`threads`]), and one experiment runner per paper figure and
//! table ([`experiments`]). The `figures` binary prints every artifact:
//!
//! ```text
//! cargo run --release -p limpet-harness --bin figures -- --fig2
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod checkpoint;
pub mod deadline;
pub mod error;
pub mod experiments;
pub mod faults;
pub mod health;
pub mod native;
pub mod persist;
pub mod shutdown;
pub mod sim;
pub mod threads;

pub use cache::{
    all_pipeline_kinds, model_fingerprint, CacheStats, CompiledKernel, KernelCache,
    QuarantineEntry, ResilientKernel,
};
pub use checkpoint::{
    LoadOutcome, RejectReason, Snapshot, SnapshotStore, StoreStats, SNAPSHOT_FORMAT_VERSION,
};
pub use deadline::{backoff_delay, retry_with_backoff, CancelCause, CancelToken};
pub use error::{compile_source, CompileError};
pub use experiments::{
    available_cores, fig2_checkpointed, fig2_single_thread, fig2_with_jobs, fig3_threads32,
    fig4_scaling, fig5_isa_threads, fig6_roofline, geomean, icc_comparison, kernel_stats,
    layout_ablation, lut_ablation, measure_run_threaded, native_tier_bench, trajectory_digest,
    trajectory_digest_tiered, validate_timing_model, ExperimentOptions, NativeBench,
    NativeBenchRow, Provenance, ThreadTiming, TmValidation, THREAD_COUNTS,
};
pub use faults::FaultKind;
pub use health::{incidents_json, summarize_incidents, HealthPolicy, Incident, IncidentKind, Tier};
pub use native::{
    cc_timeout, native_eligible, promotion_enabled, promotion_from_env, promotion_threshold,
    set_cc_timeout, set_promotion, set_promotion_threshold, toolchain_available, NativeKernel,
    NativeRegistry, NativeSlot, NativeStats, CC_TIMEOUT_MARKER, DEFAULT_CC_TIMEOUT,
};
pub use persist::{
    default_cache_dir, native_file_name, DiskCache, DiskCacheStatus, DiskLoad, DiskStats, EntryKey,
    Journal, NativeDiskLoad,
};
pub use sim::{model_info, storage_layout, PipelineKind, Simulation, Stimulus, Workload};
pub use threads::{
    measure_median, measure_median_secs, measure_stream_bandwidth, shard_sizes, ShardedSimulation,
    TimingModel,
};
