//! Cooperative SIGINT/SIGTERM shutdown for long-running drivers.
//!
//! A signal handler can do almost nothing safely, so this module reduces
//! it to the one async-signal-safe operation that matters: setting an
//! atomic flag. Long loops — the `figures` checkpointed sweeps, the
//! `limpet-serve` accept/worker loops — poll [`requested`] at their
//! natural chunk boundaries and wind down in ordinary code: flush
//! journals, release the disk-cache lock file, close sockets. Without
//! this, Ctrl-C mid-sweep leaves a stale `lock` file that the *next*
//! process has to wait out and break.
//!
//! The flag is process-global and latches: once a signal arrives, every
//! poller sees it, and there is no reset (a half-shut-down process should
//! not resurrect). A second signal falls through to the default
//! disposition, so a wedged process can still be killed with a second
//! Ctrl-C.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        super::REQUESTED.store(true, Ordering::SeqCst);
        // Re-arm to the default disposition: the second signal kills the
        // process the ordinary way instead of latching a flag nobody is
        // polling anymore.
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent). Call once near the
/// top of `main` in any driver with loops long enough that the user might
/// interrupt them.
pub fn install() {
    if !INSTALLED.swap(true, Ordering::SeqCst) {
        imp::install();
    }
}

/// True once SIGINT or SIGTERM has been received (or [`request`] called).
/// Latches — there is no way to clear it.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Raises the shutdown flag from ordinary code, as if a signal had
/// arrived — the daemon uses this to turn a `shutdown` wire verb and a
/// signal into one code path, and tests use it in place of delivering
/// real signals.
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    // `requested()` is process-global and latching, so unit tests here
    // would poison every other test in the binary; the flag semantics are
    // covered end-to-end by the serve crate's integration tests, which
    // run the real daemon in a child process.
    #[test]
    fn install_is_idempotent() {
        super::install();
        super::install();
    }
}
