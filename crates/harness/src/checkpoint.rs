//! Durable mid-trajectory checkpoints: everything needed to continue a
//! run **bit-identically** after a crash, deadline, or disconnect.
//!
//! A [`Snapshot`] carries the full logical state vectors (the exact bits
//! [`crate::Simulation::state_bits`] reports), the sim clock and step
//! counters, the seeded-fault "RNG state" (`nan_plan`), the [`Tier`] the
//! run was executing at, and the per-kernel executed-step counter that
//! feeds native promotion. Padding lanes are deliberately *not*
//! captured: element-wise SIMD never lets a padded lane feed a logical
//! one, so restoring logical cells into a freshly initialised simulation
//! — at any width, layout, or shard count — reproduces the identical
//! trajectory. That makes one snapshot resumable at a different SIMD
//! width or thread count than wrote it.
//!
//! On disk a snapshot is a single checksummed text file written with the
//! same crash-safety rules as the kernel disk cache ([`crate::persist`]):
//!
//! ```text
//! limpet-checkpoint <format-ver> <payload-len> <fnv:016x>\n
//! model <name>\n
//! config <pipeline-label>\n
//! cells <n>\n
//! dt <bits:016x>\n
//! t <bits:016x>\n
//! step <steps-done>\n
//! tier <tier>\n
//! executed <kernel-executed-steps>\n
//! nanplan <step> <seed>\n        (only when a fault plan is pending)
//! shards <s0> <s1> ...\n         (only for sharded snapshots)
//! spec <job-spec-json>\n         (only for serve-layer snapshots)
//! state <count>\n
//! <016x values, 8 per line>\n
//! end\n
//! ```
//!
//! Loads run a **ladder**: bad header / stale version / torn tail /
//! checksum mismatch / malformed payload each reject the file, *remove
//! it* (self-heal — a bad snapshot never wedges later runs), bump a
//! counter, and fall through to the previous rotation; if that rejects
//! too, the run restarts from step 0. A rejection costs re-computed
//! steps, never correctness. The [`FaultKind::CkptTorn`] /
//! [`FaultKind::CkptCorrupt`] / [`FaultKind::CkptStaleVersion`]
//! injection points mutate the just-read bytes so the *real* integrity
//! checks exercise every rung.

use crate::faults::{self, FaultKind};
use limpet_rng::SmallRng;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the snapshot envelope + payload grammar. Bump on any layout
/// change; older files are then rejected as stale (and the run restarts
/// or falls to the previous rotation) rather than misparsed.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// First token of every snapshot file; anything else is not ours.
const MAGIC: &str = "limpet-checkpoint";

/// FNV-1a over a byte slice — the same checksum the disk cache and the
/// trajectory digest use, kept local so the codec is self-contained.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a snapshot file was rejected — one variant per ladder rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Wrong magic, or the header line failed to parse at all.
    BadHeader,
    /// Header parsed but carries a different [`SNAPSHOT_FORMAT_VERSION`].
    StaleVersion,
    /// File is shorter than the payload length the header promised.
    TornTail,
    /// Payload bytes do not hash to the header's FNV-1a checksum.
    ChecksumMismatch,
    /// Checksum passed but the payload grammar is wrong — either bit-rot
    /// that collided the checksum or a buggy writer.
    Malformed,
}

impl RejectReason {
    /// Kebab-case label, used in counters and log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::BadHeader => "bad-header",
            RejectReason::StaleVersion => "stale-version",
            RejectReason::TornTail => "torn-tail",
            RejectReason::ChecksumMismatch => "checksum-mismatch",
            RejectReason::Malformed => "malformed",
        }
    }
}

/// Everything needed to continue a trajectory bit-identically. The
/// `state` field is exactly what [`crate::Simulation::state_bits`]
/// returns — per logical cell, each state variable's bits then each
/// external's bits — so round-tripping through a snapshot is equality-
/// checkable against a live simulation with `==`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Model name (key echo: resume refuses a different model).
    pub model: String,
    /// Pipeline label, e.g. `limpetMLIR-avx512` (key echo).
    pub config: String,
    /// Logical cell count (key echo).
    pub n_cells: usize,
    /// `f64::to_bits` of the timestep (key echo — dt changes the math).
    pub dt_bits: u64,
    /// `f64::to_bits` of the sim clock at the snapshot point.
    pub t_bits: u64,
    /// Guarded steps completed when the snapshot was taken.
    pub steps_done: u64,
    /// Tier label (`Tier::as_str`) the run was executing at.
    pub tier: String,
    /// The kernel's executed-step counter (feeds native promotion), so a
    /// resumed process re-earns its tier instead of starting cold.
    pub executed_steps: u64,
    /// Pending seeded-fault plan `(fire_at_step, seed)` — the only RNG
    /// state a run carries. `None` once fired or never armed.
    pub nan_plan: Option<(u64, u64)>,
    /// Shard sizes at snapshot time (informational; resume re-shards
    /// deterministically for whatever thread count it is given).
    pub shards: Vec<usize>,
    /// Opaque single-line sidecar, checksummed with the rest: the serve
    /// layer stores the job-spec JSON here (making the snapshot
    /// self-contained for the `resume` wire verb); the fig2 sweep stores
    /// its measured timing samples. Stored under the `spec` payload key.
    pub meta: Option<String>,
    /// Logical state bits, `n_cells * (n_state + n_ext)` values.
    pub state: Vec<u64>,
}

impl Snapshot {
    /// Checks the key echo against what a resume caller is about to
    /// build. Returns a human-readable mismatch description.
    pub fn key_matches(
        &self,
        model: &str,
        config: &str,
        n_cells: usize,
        dt: f64,
    ) -> Result<(), String> {
        if self.model != model {
            return Err(format!("snapshot is for model {}, not {model}", self.model));
        }
        if self.config != config {
            return Err(format!(
                "snapshot was taken under config {}, not {config}",
                self.config
            ));
        }
        if self.n_cells != n_cells {
            return Err(format!(
                "snapshot has {} cells, workload has {n_cells}",
                self.n_cells
            ));
        }
        if self.dt_bits != dt.to_bits() {
            return Err(format!(
                "snapshot dt bits {:016x} != workload dt bits {:016x}",
                self.dt_bits,
                dt.to_bits()
            ));
        }
        Ok(())
    }

    /// Serializes to the on-disk byte form (header + checksummed payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = String::new();
        let _ = writeln!(p, "model {}", self.model);
        let _ = writeln!(p, "config {}", self.config);
        let _ = writeln!(p, "cells {}", self.n_cells);
        let _ = writeln!(p, "dt {:016x}", self.dt_bits);
        let _ = writeln!(p, "t {:016x}", self.t_bits);
        let _ = writeln!(p, "step {}", self.steps_done);
        let _ = writeln!(p, "tier {}", self.tier);
        let _ = writeln!(p, "executed {}", self.executed_steps);
        if let Some((step, seed)) = self.nan_plan {
            let _ = writeln!(p, "nanplan {step} {seed}");
        }
        if !self.shards.is_empty() {
            let words: Vec<String> = self.shards.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(p, "shards {}", words.join(" "));
        }
        if let Some(spec) = &self.meta {
            debug_assert!(!spec.contains('\n'), "spec JSON must be one line");
            let _ = writeln!(p, "spec {spec}");
        }
        let _ = writeln!(p, "state {}", self.state.len());
        for chunk in self.state.chunks(8) {
            let words: Vec<String> = chunk.iter().map(|v| format!("{v:016x}")).collect();
            let _ = writeln!(p, "{}", words.join(" "));
        }
        let _ = writeln!(p, "end");
        let payload = p.into_bytes();
        let mut out = format!(
            "{MAGIC} {SNAPSHOT_FORMAT_VERSION} {} {:016x}\n",
            payload.len(),
            fnv64(&payload)
        )
        .into_bytes();
        out.extend_from_slice(&payload);
        out
    }

    /// Runs the integrity ladder over raw file bytes and parses the
    /// payload. Every failure maps to exactly one [`RejectReason`] rung.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, RejectReason> {
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(RejectReason::BadHeader)?;
        let header =
            std::str::from_utf8(&bytes[..header_end]).map_err(|_| RejectReason::BadHeader)?;
        let tokens: Vec<&str> = header.split_whitespace().collect();
        if tokens.len() != 4 || tokens[0] != MAGIC {
            return Err(RejectReason::BadHeader);
        }
        let version: u32 = tokens[1].parse().map_err(|_| RejectReason::BadHeader)?;
        let payload_len: usize = tokens[2].parse().map_err(|_| RejectReason::BadHeader)?;
        let want_fnv = u64::from_str_radix(tokens[3], 16).map_err(|_| RejectReason::BadHeader)?;
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(RejectReason::StaleVersion);
        }
        let body = &bytes[header_end + 1..];
        if body.len() < payload_len {
            return Err(RejectReason::TornTail);
        }
        let payload = &body[..payload_len];
        if fnv64(payload) != want_fnv {
            return Err(RejectReason::ChecksumMismatch);
        }
        parse_payload(payload).ok_or(RejectReason::Malformed)
    }
}

/// Parses the checksummed payload. Any deviation from the grammar is a
/// `None` (mapped to [`RejectReason::Malformed`] by the caller).
fn parse_payload(payload: &[u8]) -> Option<Snapshot> {
    let text = std::str::from_utf8(payload).ok()?;
    let mut lines = text.lines();
    let field = |line: &str, key: &str| -> Option<String> {
        line.strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .map(str::to_string)
    };
    let model = field(lines.next()?, "model")?;
    let config = field(lines.next()?, "config")?;
    let n_cells: usize = field(lines.next()?, "cells")?.parse().ok()?;
    let dt_bits = u64::from_str_radix(&field(lines.next()?, "dt")?, 16).ok()?;
    let t_bits = u64::from_str_radix(&field(lines.next()?, "t")?, 16).ok()?;
    let steps_done: u64 = field(lines.next()?, "step")?.parse().ok()?;
    let tier = field(lines.next()?, "tier")?;
    let executed_steps: u64 = field(lines.next()?, "executed")?.parse().ok()?;

    let mut line = lines.next()?;
    let mut nan_plan = None;
    if let Some(rest) = field(line, "nanplan") {
        let mut w = rest.split_whitespace();
        nan_plan = Some((w.next()?.parse().ok()?, w.next()?.parse().ok()?));
        if w.next().is_some() {
            return None;
        }
        line = lines.next()?;
    }
    let mut shards = Vec::new();
    if let Some(rest) = field(line, "shards") {
        for w in rest.split_whitespace() {
            shards.push(w.parse().ok()?);
        }
        if shards.is_empty() {
            return None;
        }
        line = lines.next()?;
    }
    let mut meta = None;
    if let Some(rest) = field(line, "spec") {
        meta = Some(rest);
        line = lines.next()?;
    }
    let count: usize = field(line, "state")?.parse().ok()?;
    // Cap what a hostile length field can make us allocate: the checksum
    // already bounds payload bytes, but parse defensively anyway.
    if count > payload.len() {
        return None;
    }
    let mut state = Vec::with_capacity(count);
    while state.len() < count {
        for w in lines.next()?.split_whitespace() {
            if state.len() == count {
                return None; // more values than declared
            }
            state.push(u64::from_str_radix(w, 16).ok()?);
        }
    }
    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some(Snapshot {
        model,
        config,
        n_cells,
        dt_bits,
        t_bits,
        steps_done,
        tier,
        executed_steps,
        nan_plan,
        shards,
        meta,
        state,
    })
}

/// Applies any armed `ckpt-*` fault to bytes just read from disk, before
/// the integrity ladder sees them — the real checks, not mocks, do the
/// rejecting. Mirrors `persist::inject_disk_faults`.
fn inject_ckpt_faults(bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    if let Some(seed) = faults::take(FaultKind::CkptTorn) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let keep = rng.gen_range(0..bytes.len());
        bytes.truncate(keep);
        return;
    }
    if let Some(seed) = faults::take(FaultKind::CkptCorrupt) {
        // Flip a byte *after* the header so the checksum rung (not the
        // header rung) is the one exercised.
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .unwrap_or(bytes.len() - 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let at = if header_end + 1 < bytes.len() {
            header_end + 1 + rng.gen_range(0..bytes.len() - header_end - 1)
        } else {
            0
        };
        bytes[at] ^= 0x20;
        return;
    }
    if faults::take(FaultKind::CkptStaleVersion).is_some() {
        // Rewrite the format-version token, as if written by an
        // incompatible build.
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .unwrap_or(bytes.len());
        if let Ok(header) = std::str::from_utf8(&bytes[..header_end]) {
            let mut tokens: Vec<String> = header.split_whitespace().map(String::from).collect();
            if tokens.len() >= 2 {
                tokens[1] = "999999".to_string();
                let mut patched = tokens.join(" ").into_bytes();
                patched.extend_from_slice(&bytes[header_end..]);
                *bytes = patched;
            }
        }
    }
}

/// Counters for every ladder rung plus save/load traffic; all monotonic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Snapshots durably written.
    pub saved: u64,
    /// Loads served by the current file.
    pub loaded_current: u64,
    /// Loads served by the previous rotation after the current rejected.
    pub loaded_previous: u64,
    /// Loads that fell all the way to "no snapshot" after at least one
    /// rejection — the restart-from-step-0 rung.
    pub fell_to_zero: u64,
    /// Files rejected at the bad-header rung.
    pub rejected_bad_header: u64,
    /// Files rejected at the stale-version rung.
    pub rejected_stale_version: u64,
    /// Files rejected at the torn-tail rung.
    pub rejected_torn_tail: u64,
    /// Files rejected at the checksum rung.
    pub rejected_checksum: u64,
    /// Files rejected at the malformed-payload rung.
    pub rejected_malformed: u64,
}

impl StoreStats {
    /// Total rejections across every ladder rung.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_bad_header
            + self.rejected_stale_version
            + self.rejected_torn_tail
            + self.rejected_checksum
            + self.rejected_malformed
    }
}

/// Outcome of [`SnapshotStore::load`]: which rung produced the snapshot
/// (if any) and every rejection hit on the way down.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The snapshot, if any rung produced one.
    pub snapshot: Option<Snapshot>,
    /// True when the current file was rejected and the previous rotation
    /// served the snapshot.
    pub from_previous: bool,
    /// Every file rejected (and removed) on the way down the ladder.
    pub rejects: Vec<(PathBuf, RejectReason)>,
}

/// One snapshot slot per key (run/job id), stored as
/// `ckpt-<fnv:016x>-<sanitized-key>.lcp` with a single `.prev.lcp`
/// rotation. Saves are atomic (temp + rename); the previous rotation is
/// what the load ladder falls back to when the current file rejects.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    saved: AtomicU64,
    loaded_current: AtomicU64,
    loaded_previous: AtomicU64,
    fell_to_zero: AtomicU64,
    rejected_bad_header: AtomicU64,
    rejected_stale_version: AtomicU64,
    rejected_torn_tail: AtomicU64,
    rejected_checksum: AtomicU64,
    rejected_malformed: AtomicU64,
}

/// Keys are tenant/job ids off the wire; keep the filename readable but
/// never let a hostile key escape the directory. The FNV prefix keeps
/// distinct keys distinct even when sanitization collides them.
fn sanitize_key(key: &str) -> String {
    key.chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory.
    pub fn new(dir: &Path) -> io::Result<SnapshotStore> {
        fs::create_dir_all(dir)?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
            saved: AtomicU64::new(0),
            loaded_current: AtomicU64::new(0),
            loaded_previous: AtomicU64::new(0),
            fell_to_zero: AtomicU64::new(0),
            rejected_bad_header: AtomicU64::new(0),
            rejected_stale_version: AtomicU64::new(0),
            rejected_torn_tail: AtomicU64::new(0),
            rejected_checksum: AtomicU64::new(0),
            rejected_malformed: AtomicU64::new(0),
        })
    }

    /// The directory snapshots live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current-snapshot path for a key (may not exist yet).
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!(
            "ckpt-{:016x}-{}.lcp",
            fnv64(key.as_bytes()),
            sanitize_key(key)
        ))
    }

    /// Previous-rotation path for a key.
    pub fn prev_path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!(
            "ckpt-{:016x}-{}.prev.lcp",
            fnv64(key.as_bytes()),
            sanitize_key(key)
        ))
    }

    /// True when a durable snapshot (current or previous) exists.
    pub fn has(&self, key: &str) -> bool {
        self.path_for(key).exists() || self.prev_path_for(key).exists()
    }

    /// Atomically writes `snap` as the current snapshot for `key`,
    /// rotating any existing current file to the previous slot first.
    pub fn save(&self, key: &str, snap: &Snapshot) -> io::Result<PathBuf> {
        let bytes = snap.encode();
        let final_path = self.path_for(key);
        if final_path.exists() {
            // Rename replaces any older .prev atomically on POSIX.
            let _ = fs::rename(&final_path, self.prev_path_for(key));
        }
        let tmp_path = self.dir.join(format!("ckpt.tmp-{}", std::process::id()));
        let write = (|| {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp_path);
            return Err(e);
        }
        self.saved.fetch_add(1, Ordering::Relaxed);
        Ok(final_path)
    }

    /// Walks the load ladder: current file, then the previous rotation,
    /// then nothing. Every rejected file is removed (self-heal) and
    /// counted; fault injection mutates the just-read bytes so the real
    /// integrity checks do the rejecting.
    pub fn load(&self, key: &str) -> LoadOutcome {
        let mut rejects = Vec::new();
        let rungs = [(self.path_for(key), false), (self.prev_path_for(key), true)];
        for (path, from_previous) in rungs {
            let Ok(mut bytes) = fs::read(&path) else {
                continue;
            };
            inject_ckpt_faults(&mut bytes);
            match Snapshot::decode(&bytes) {
                Ok(snap) => {
                    if from_previous {
                        self.loaded_previous.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.loaded_current.fetch_add(1, Ordering::Relaxed);
                    }
                    return LoadOutcome {
                        snapshot: Some(snap),
                        from_previous,
                        rejects,
                    };
                }
                Err(reason) => {
                    self.count_reject(reason);
                    let _ = fs::remove_file(&path);
                    rejects.push((path, reason));
                }
            }
        }
        if !rejects.is_empty() {
            self.fell_to_zero.fetch_add(1, Ordering::Relaxed);
        }
        LoadOutcome {
            snapshot: None,
            from_previous: false,
            rejects,
        }
    }

    /// Drops both rotations for a key — called when a run completes so a
    /// finished job is never "resumed".
    pub fn remove(&self, key: &str) {
        let _ = fs::remove_file(self.path_for(key));
        let _ = fs::remove_file(self.prev_path_for(key));
    }

    fn count_reject(&self, reason: RejectReason) {
        let counter = match reason {
            RejectReason::BadHeader => &self.rejected_bad_header,
            RejectReason::StaleVersion => &self.rejected_stale_version,
            RejectReason::TornTail => &self.rejected_torn_tail,
            RejectReason::ChecksumMismatch => &self.rejected_checksum,
            RejectReason::Malformed => &self.rejected_malformed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            saved: self.saved.load(Ordering::Relaxed),
            loaded_current: self.loaded_current.load(Ordering::Relaxed),
            loaded_previous: self.loaded_previous.load(Ordering::Relaxed),
            fell_to_zero: self.fell_to_zero.load(Ordering::Relaxed),
            rejected_bad_header: self.rejected_bad_header.load(Ordering::Relaxed),
            rejected_stale_version: self.rejected_stale_version.load(Ordering::Relaxed),
            rejected_torn_tail: self.rejected_torn_tail.load(Ordering::Relaxed),
            rejected_checksum: self.rejected_checksum.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "limpet-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(state_len: usize) -> Snapshot {
        Snapshot {
            model: "HodgkinHuxley".into(),
            config: "limpetMLIR-avx512".into(),
            n_cells: 4,
            dt_bits: 0.01f64.to_bits(),
            t_bits: 1.23f64.to_bits(),
            steps_done: 321,
            tier: "optimized".into(),
            executed_steps: 4321,
            nan_plan: Some((9, 77)),
            shards: vec![2, 1, 1],
            meta: Some(r#"{"verb":"submit","id":"j-1"}"#.into()),
            state: (0..state_len as u64)
                .map(|i| i.wrapping_mul(0x9e37))
                .collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        for snap in [
            sample(19),
            Snapshot {
                nan_plan: None,
                shards: Vec::new(),
                meta: None,
                state: vec![f64::NAN.to_bits(), 0, u64::MAX],
                ..sample(0)
            },
        ] {
            let decoded = Snapshot::decode(&snap.encode()).unwrap();
            assert_eq!(decoded, snap);
        }
    }

    #[test]
    fn every_truncation_maps_to_a_ladder_rung() {
        let bytes = sample(9).encode();
        for cut in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, RejectReason::BadHeader | RejectReason::TornTail),
                "cut {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn payload_mutations_are_caught_by_the_checksum() {
        let bytes = sample(9).encode();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        for at in (header_end + 1..bytes.len()).step_by(7) {
            let mut mutated = bytes.clone();
            mutated[at] ^= 0x01;
            assert_eq!(
                Snapshot::decode(&mutated).unwrap_err(),
                RejectReason::ChecksumMismatch,
                "mutation at {at}"
            );
        }
    }

    #[test]
    fn version_skew_is_stale_not_misparsed() {
        let bytes = sample(3).encode();
        let text = String::from_utf8(bytes).unwrap();
        let skewed = text.replacen(
            &format!("{MAGIC} {SNAPSHOT_FORMAT_VERSION} "),
            &format!("{MAGIC} {} ", SNAPSHOT_FORMAT_VERSION + 1),
            1,
        );
        assert_eq!(
            Snapshot::decode(skewed.as_bytes()).unwrap_err(),
            RejectReason::StaleVersion
        );
    }

    #[test]
    fn store_saves_rotates_and_loads() {
        let dir = temp_dir("rotate");
        let store = SnapshotStore::new(&dir).unwrap();
        let mut snap = sample(9);
        store.save("job-1", &snap).unwrap();
        snap.steps_done = 640;
        store.save("job-1", &snap).unwrap();
        assert!(store.prev_path_for("job-1").exists());

        let out = store.load("job-1");
        assert_eq!(out.snapshot.unwrap().steps_done, 640);
        assert!(!out.from_previous);

        // Corrupt the current file: the ladder falls to the previous
        // rotation (steps 321) and heals the bad file away.
        let path = store.path_for("job-1");
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 4;
        bytes[at] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let out = store.load("job-1");
        assert_eq!(out.snapshot.unwrap().steps_done, 321);
        assert!(out.from_previous);
        assert_eq!(out.rejects.len(), 1);
        assert!(!path.exists(), "rejected file must self-heal away");

        let stats = store.stats();
        assert_eq!(stats.saved, 2);
        assert_eq!(stats.loaded_current, 1);
        assert_eq!(stats.loaded_previous, 1);
        assert_eq!(stats.rejected_checksum, 1);

        store.remove("job-1");
        assert!(!store.has("job-1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_reject_falls_to_zero_and_heals_both_files() {
        let dir = temp_dir("fallzero");
        let store = SnapshotStore::new(&dir).unwrap();
        let snap = sample(5);
        store.save("j", &snap).unwrap();
        store.save("j", &snap).unwrap();
        for path in [store.path_for("j"), store.prev_path_for("j")] {
            fs::write(&path, b"limpet-checkpoint garbage\n").unwrap();
        }
        let out = store.load("j");
        assert!(out.snapshot.is_none());
        assert_eq!(out.rejects.len(), 2);
        assert!(!store.has("j"));
        assert_eq!(store.stats().fell_to_zero, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_key_is_a_clean_miss_not_a_reject() {
        let dir = temp_dir("miss");
        let store = SnapshotStore::new(&dir).unwrap();
        let out = store.load("nope");
        assert!(out.snapshot.is_none());
        assert!(out.rejects.is_empty());
        assert_eq!(store.stats().fell_to_zero, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_ckpt_faults_drive_the_real_ladder() {
        let _guard = faults::TEST_SERIAL.lock().unwrap();
        faults::disarm_all();
        let dir = temp_dir("inject");
        let store = SnapshotStore::new(&dir).unwrap();
        let snap = sample(17);

        for (spec, expect_prev) in [
            ("ckpt-corrupt@5", true),
            ("ckpt-torn@9", true),
            ("ckpt-stale-version@1", true),
        ] {
            store.remove("j");
            store.save("j", &snap).unwrap();
            store.save("j", &snap).unwrap();
            faults::arm(spec).unwrap();
            let out = store.load("j");
            // The fault fires once (on the current file); the previous
            // rotation then serves the identical snapshot.
            assert_eq!(out.snapshot.as_ref(), Some(&snap), "spec {spec}");
            assert_eq!(out.from_previous, expect_prev, "spec {spec}");
            assert_eq!(out.rejects.len(), 1, "spec {spec}");
            faults::disarm_all();
        }
        let stats = store.stats();
        assert_eq!(stats.rejected_total(), 3);
        assert_eq!(stats.loaded_previous, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_cannot_escape_the_directory() {
        let dir = temp_dir("hostile");
        let store = SnapshotStore::new(&dir).unwrap();
        for key in ["../../etc/passwd", "a/b/c", "..", "x y\nz", ""] {
            let path = store.path_for(key);
            assert!(path.starts_with(&dir), "{key:?} escaped: {path:?}");
            assert!(path.file_name().is_some());
            store.save(key, &sample(1)).unwrap();
            assert!(store.load(key).snapshot.is_some(), "{key:?}");
        }
        // Distinct hostile keys stay distinct via the FNV prefix.
        assert_ne!(store.path_for("a/b"), store.path_for("a_b"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_payload_with_valid_checksum_is_rejected_as_malformed() {
        // Hand-build an envelope whose payload passes the checksum but
        // not the grammar: the last ladder rung.
        let payload = b"model X\nnot-a-field\n".to_vec();
        let mut bytes = format!(
            "{MAGIC} {SNAPSHOT_FORMAT_VERSION} {} {:016x}\n",
            payload.len(),
            fnv64(&payload)
        )
        .into_bytes();
        bytes.extend_from_slice(&payload);
        assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            RejectReason::Malformed
        );
    }
}
