//! The top-level compile error for the harness: every way a model can fail
//! on its path from EasyML source to executable bytecode, as one structured
//! type instead of a process abort.
//!
//! Each variant wraps the structured diagnostic of the stage that failed —
//! spanned [`Diagnostic`]s from the frontend, [`PipelineError`] from the
//! pass manager (which carries the failing pass name and the verifier's
//! coded [`limpet_ir::VerifyError`]), and the bytecode compiler's error.
//! [`CompileError::Panicked`] is the containment variant: a panic caught at
//! the cache boundary so one broken model cannot take down a roster run.

use std::fmt;

use limpet_easyml::{Diagnostic, SemaErrors};
use limpet_pm::PipelineError;

/// Why a model failed to compile, tagged by pipeline stage.
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// Lexing or parsing failed (spanned, coded `E01xx`/`E02xx`).
    Parse(Diagnostic),
    /// Semantic analysis failed (one or more coded `E03xx` diagnostics).
    Sema(SemaErrors),
    /// A pass pipeline failed IR verification mid-flight.
    Pipeline(PipelineError),
    /// The verified module could not be compiled to bytecode.
    Bytecode(limpet_vm::CompileError),
    /// Compilation panicked; the payload is the panic message. The panic
    /// was caught at the kernel-cache boundary and the model quarantined.
    Panicked(String),
}

impl CompileError {
    /// The pipeline stage that failed, as a stable label for reports.
    pub fn stage(&self) -> &'static str {
        match self {
            CompileError::Parse(_) => "parse",
            CompileError::Sema(_) => "sema",
            CompileError::Pipeline(_) => "pipeline",
            CompileError::Bytecode(_) => "bytecode",
            CompileError::Panicked(_) => "panic",
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(d) => write!(f, "{d}"),
            CompileError::Sema(e) => write!(f, "{e}"),
            CompileError::Pipeline(e) => write!(f, "{e}"),
            CompileError::Bytecode(e) => write!(f, "bytecode compilation failed: {e}"),
            CompileError::Panicked(msg) => write!(f, "compilation panicked: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Parse(d) => Some(d),
            CompileError::Sema(e) => Some(e),
            CompileError::Pipeline(e) => Some(e),
            CompileError::Bytecode(e) => Some(e),
            CompileError::Panicked(_) => None,
        }
    }
}

impl From<Diagnostic> for CompileError {
    fn from(d: Diagnostic) -> CompileError {
        CompileError::Parse(d)
    }
}

impl From<SemaErrors> for CompileError {
    fn from(e: SemaErrors) -> CompileError {
        CompileError::Sema(e)
    }
}

impl From<PipelineError> for CompileError {
    fn from(e: PipelineError) -> CompileError {
        CompileError::Pipeline(e)
    }
}

impl From<limpet_vm::CompileError> for CompileError {
    fn from(e: limpet_vm::CompileError) -> CompileError {
        CompileError::Bytecode(e)
    }
}

/// Compiles EasyML source to a checked model, returning structured
/// diagnostics instead of panicking. This is also the
/// [`crate::FaultKind::ParseError`] injection point: an armed plan
/// corrupts the source deterministically before parsing, so the spanned
/// diagnostic path is exercised with a real lex/parse failure.
///
/// # Errors
///
/// Returns [`CompileError::Parse`] or [`CompileError::Sema`] with the
/// offending model name attached.
pub fn compile_source(name: &str, src: &str) -> Result<limpet_easyml::Model, CompileError> {
    let corrupted;
    let src = match crate::faults::take(crate::FaultKind::ParseError) {
        Some(seed) => {
            corrupted = crate::faults::corrupt_source(src, seed);
            &corrupted
        }
        None => src,
    };
    let result: Result<limpet_easyml::Model, CompileError> = (|| {
        let ast = limpet_easyml::parse_model(name, src)?;
        Ok(limpet_easyml::analyze(&ast)?)
    })();
    if let Err(e) = &result {
        // Frontend failures join the process-wide incident report next to
        // compile-time quarantines and lock recoveries.
        crate::KernelCache::global().log(crate::Incident::new(
            crate::IncidentKind::FrontendError,
            name,
            e.to_string(),
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_carry_code_and_stage() {
        let err = match limpet_easyml::parse_model("Broken", "diff_x = ;") {
            Err(d) => CompileError::from(d),
            Ok(_) => panic!("expected a parse error"),
        };
        assert_eq!(err.stage(), "parse");
        let text = err.to_string();
        assert!(text.contains("E02"), "expected a parse code in '{text}'");
        assert!(text.contains("Broken"), "expected model name in '{text}'");
    }

    #[test]
    fn pipeline_errors_expose_the_verifier_code() {
        use limpet_codegen::pipeline::try_apply_pipeline;
        let model = limpet_easyml::compile_model("M", "diff_x = -x;").unwrap();
        let mut lowered =
            limpet_codegen::lower_model(&model, &limpet_codegen::CodegenOptions { use_lut: true });
        // Corrupt the module so the pipeline's input verification fails.
        crate::faults::corrupt_module(&mut lowered.module, 3).expect("candidate op");
        let err = match try_apply_pipeline(&mut lowered.module, "canonicalize") {
            Err(e) => CompileError::from(e),
            Ok(_) => panic!("expected a verify failure"),
        };
        assert_eq!(err.stage(), "pipeline");
        match &err {
            CompileError::Pipeline(p) => assert!(p.verify_error().is_some()),
            other => panic!("unexpected variant {other:?}"),
        }
    }
}
