//! Seeded, deterministic fault injection for the compile/run chain.
//!
//! Robustness code that only runs when something breaks is robustness code
//! that never runs. This module makes every degradation path exercisable on
//! demand: a fault plan names an injection point ([`FaultKind`]) and a seed,
//! and the corresponding layer (frontend shim, kernel cache, simulation)
//! consults the armed plans at exactly one spot. Each plan fires **once** —
//! the first time its injection point is reached — so a recovery path can
//! retry the same operation cleanly, which is precisely what the
//! optimized → raw → reference ladder does.
//!
//! Plans are process-global. Arm them programmatically ([`arm`]), through
//! the `LIMPET_INJECT` environment variable ([`arm_from_env`]), or via the
//! figures binary's `--inject` flag. The spec grammar is a comma-separated
//! list of `fault@seed` items:
//!
//! ```text
//! LIMPET_INJECT="verify-fail@42,state-nan@7" cargo run --bin figures -- ...
//! ```
//!
//! Seeds feed [`limpet_rng::SmallRng`], so a given spec reproduces the same
//! corruption — same removed op, same NaN step — on every run.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use limpet_ir::Module;
use limpet_rng::SmallRng;

/// An injection point in the compile/run chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Corrupt the EasyML source before parsing (frontend diagnostic path).
    ParseError,
    /// Corrupt the lowered module so pipeline verification fails
    /// (quarantine + reference-tier fallback path).
    VerifyFail,
    /// Fail the bytecode optimizer for one kernel (raw-tier fallback path).
    BytecodeCorrupt,
    /// Poison the kernel-cache mutex (lock-recovery path).
    CachePoison,
    /// Write a NaN into the cell state mid-run (health-guard path).
    StateNan,
    /// Flip one byte of a disk-cache entry as it is read (checksum /
    /// integrity rejection path).
    DiskCorrupt,
    /// Truncate a disk-cache entry as it is read (length-check path).
    DiskTruncate,
    /// Rewrite a disk-cache entry's format-version stamp as it is read
    /// (stale-version rejection path).
    DiskStaleVersion,
    /// Fail the system C toolchain invocation while building a native
    /// shared object (toolchain-missing / compile-error path).
    CcFail,
    /// Fail loading a built native shared object (`dlopen` path).
    DlopenFail,
    /// Corrupt a native kernel's probation output so the bitwise
    /// differential against the bytecode tier fails (quarantine path).
    NativeDivergent,
    /// Wedge a service worker mid-job — it stops polling its token and
    /// sleeps — so the scheduler's heartbeat watchdog must detect the
    /// stall, 504 the job, and respawn the worker (liveness path).
    WorkerHang,
    /// Hang the native `cc` compile (the child process sleeps instead of
    /// compiling) so the compile watchdog must time it out, kill the
    /// child, and quarantine the kernel as `cc-timeout` (liveness path).
    CompileHang,
    /// Drip-feed a request to the daemon one byte at a time (slow-loris
    /// client) — the connection loop must keep other tenants live and
    /// still parse the frame once it completes (liveness path).
    SlowLoris,
    /// Send a torn NDJSON frame (truncated mid-object) ahead of a real
    /// request — the daemon must answer with a typed `error` event and
    /// keep the connection usable (protocol-robustness path).
    TornFrame,
    /// "Crash" while holding the disk-cache lock: the lock file is left
    /// behind un-released, so contending processes must retry with
    /// backoff and break the stale lock (lock-recovery path).
    LockHolderCrash,
    /// Truncate a trajectory checkpoint as it is read (torn-tail rung of
    /// the snapshot load ladder).
    CkptTorn,
    /// Flip one byte of a trajectory checkpoint as it is read (checksum
    /// rung of the snapshot load ladder).
    CkptCorrupt,
    /// Rewrite a trajectory checkpoint's format-version stamp as it is
    /// read (stale-version rung of the snapshot load ladder).
    CkptStaleVersion,
}

/// Every fault kind, in spec order — handy for exercising the whole chain.
pub const ALL_FAULT_KINDS: [FaultKind; 19] = [
    FaultKind::ParseError,
    FaultKind::VerifyFail,
    FaultKind::BytecodeCorrupt,
    FaultKind::CachePoison,
    FaultKind::StateNan,
    FaultKind::DiskCorrupt,
    FaultKind::DiskTruncate,
    FaultKind::DiskStaleVersion,
    FaultKind::CcFail,
    FaultKind::DlopenFail,
    FaultKind::NativeDivergent,
    FaultKind::WorkerHang,
    FaultKind::CompileHang,
    FaultKind::SlowLoris,
    FaultKind::TornFrame,
    FaultKind::LockHolderCrash,
    FaultKind::CkptTorn,
    FaultKind::CkptCorrupt,
    FaultKind::CkptStaleVersion,
];

impl FaultKind {
    /// The spec name used in `fault@seed` items.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::ParseError => "parse-error",
            FaultKind::VerifyFail => "verify-fail",
            FaultKind::BytecodeCorrupt => "bytecode-corrupt",
            FaultKind::CachePoison => "cache-poison",
            FaultKind::StateNan => "state-nan",
            FaultKind::DiskCorrupt => "disk-corrupt",
            FaultKind::DiskTruncate => "disk-truncate",
            FaultKind::DiskStaleVersion => "disk-stale-version",
            FaultKind::CcFail => "cc-fail",
            FaultKind::DlopenFail => "dlopen-fail",
            FaultKind::NativeDivergent => "native-divergent",
            FaultKind::WorkerHang => "worker-hang",
            FaultKind::CompileHang => "compile-hang",
            FaultKind::SlowLoris => "slow-loris",
            FaultKind::TornFrame => "torn-frame",
            FaultKind::LockHolderCrash => "lock-holder-crash",
            FaultKind::CkptTorn => "ckpt-torn",
            FaultKind::CkptCorrupt => "ckpt-corrupt",
            FaultKind::CkptStaleVersion => "ckpt-stale-version",
        }
    }

    fn from_str(s: &str) -> Option<FaultKind> {
        ALL_FAULT_KINDS.iter().copied().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

struct ArmedFault {
    kind: FaultKind,
    seed: u64,
    fired: bool,
}

static PLANS: Mutex<Vec<ArmedFault>> = Mutex::new(Vec::new());

/// Sticky "this process is an injection run" flag: set by [`arm`], cleared
/// only by [`disarm_all`]. It outlives the plans themselves (which are
/// once-fired), so the measurement harness can keep routing through the
/// resilient compile path after a fault has already fired and quarantined
/// a kernel.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// True once any fault plan has been armed in this process (and not wiped
/// by [`disarm_all`]). The measurement drivers consult this to swap the
/// plain, panicking `Simulation::new` path for the degradation-ladder one
/// — a quarantined kernel must not kill an injection run, while normal
/// runs keep the zero-overhead fast path.
pub fn injection_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn plans() -> std::sync::MutexGuard<'static, Vec<ArmedFault>> {
    // The fault registry must stay usable even if a test thread panicked
    // while holding it — recovery is the whole point of this subsystem.
    PLANS.lock().unwrap_or_else(|p| p.into_inner())
}

/// Arms every `fault@seed` item in a comma-separated spec string.
///
/// # Errors
///
/// Returns a description of the first malformed item. Valid fault names
/// are the [`FaultKind::as_str`] values; the seed is a decimal `u64` and
/// defaults to `0` when the `@seed` part is omitted.
pub fn arm(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, seed) = match item.split_once('@') {
            Some((name, seed)) => {
                let seed: u64 = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed in fault spec item '{item}'"))?;
                (name.trim(), seed)
            }
            None => (item, 0),
        };
        let kind = FaultKind::from_str(name).ok_or_else(|| {
            let known: Vec<&str> = ALL_FAULT_KINDS.iter().map(|k| k.as_str()).collect();
            format!("unknown fault '{name}' (known: {})", known.join(", "))
        })?;
        parsed.push(ArmedFault {
            kind,
            seed,
            fired: false,
        });
    }
    if !parsed.is_empty() {
        ACTIVE.store(true, Ordering::Relaxed);
    }
    plans().extend(parsed);
    Ok(())
}

/// Arms faults from the `LIMPET_INJECT` environment variable, if set.
///
/// # Errors
///
/// Propagates [`arm`]'s spec errors.
pub fn arm_from_env() -> Result<(), String> {
    match std::env::var("LIMPET_INJECT") {
        Ok(spec) => arm(&spec),
        Err(_) => Ok(()),
    }
}

/// Disarms every plan, fired or not, and clears the
/// [`injection_active`] flag. Tests call this between scenarios.
pub fn disarm_all() {
    ACTIVE.store(false, Ordering::Relaxed);
    plans().clear();
}

/// Consumes the first unfired plan of `kind`, returning its seed.
///
/// Each armed plan fires at most once; arming the same kind twice makes it
/// fire twice. Returns `None` when nothing (left) is armed for `kind` —
/// the hot-path cost is one uncontended mutex lock.
pub fn take(kind: FaultKind) -> Option<u64> {
    let mut plans = plans();
    let armed = plans.iter_mut().find(|p| p.kind == kind && !p.fired)?;
    armed.fired = true;
    Some(armed.seed)
}

/// True if an unfired plan of `kind` is armed, without consuming it.
pub fn armed(kind: FaultKind) -> bool {
    plans().iter().any(|p| p.kind == kind && !p.fired)
}

/// Deterministically corrupts EasyML source text: inserts an illegal byte
/// at a seed-chosen position so lexing fails with a spanned diagnostic.
/// Positions that land inside a comment (where the byte is ignored) are
/// skipped by retrying along the same seeded stream; position 0 is the
/// guaranteed fallback.
pub fn corrupt_source(src: &str, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Insert at a char boundary; '$' is not in the EasyML alphabet.
    let positions: Vec<usize> = src.char_indices().map(|(i, _)| i).collect();
    let insert = |at: usize| {
        let mut out = String::with_capacity(src.len() + 1);
        out.push_str(&src[..at]);
        out.push('$');
        out.push_str(&src[at..]);
        out
    };
    for _ in 0..32 {
        if positions.is_empty() {
            break;
        }
        let out = insert(positions[rng.gen_range(0..positions.len())]);
        if limpet_easyml::lex(&out).is_err() {
            return out;
        }
    }
    insert(0)
}

/// Deterministically corrupts a lowered module so verification fails:
/// removes one op from `@compute`'s body whose result feeds a later op,
/// producing a use-before-def (dominance) error. Returns a description of
/// what was removed, or `None` if no candidate op exists (the module is
/// left untouched in that case).
pub fn corrupt_module(module: &mut Module, seed: u64) -> Option<String> {
    let func = module.func_mut("compute")?;
    let body = func.body();
    let ops = func.region_mut(body).ops.clone();
    // Candidate ops: result is consumed by a later op in the same region.
    let mut candidates = Vec::new();
    for (i, &op_id) in ops.iter().enumerate() {
        let results = func.op(op_id).results.clone();
        if results.is_empty() {
            continue;
        }
        let used_later = ops[i + 1..]
            .iter()
            .any(|&later| func.op(later).operands.iter().any(|v| results.contains(v)));
        if used_later {
            candidates.push(i);
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let victim = candidates[rng.gen_range(0..candidates.len())];
    let removed = ops[victim];
    let kind = format!("{:?}", func.op(removed).kind);
    func.region_mut(body).ops.remove(victim);
    Some(format!(
        "removed op #{victim} ({kind}) from @compute, leaving dangling uses"
    ))
}

/// The simulation step (1-based) at which an armed [`FaultKind::StateNan`]
/// plan writes its NaN, derived from the seed so a spec pins the step.
/// Bounded to the first 16 steps so short CI workloads still hit it.
pub fn nan_step(seed: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen_range(1usize..17)
}

/// Serializes unit tests that arm fault plans (or whose assertions depend
/// on [`injection_active`] being false) — plans and the active flag are
/// process-global state.
#[cfg(test)]
pub(crate) static TEST_SERIAL: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_SERIAL as LOCK;

    #[test]
    fn spec_round_trip_and_once_fired() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        disarm_all();
        arm("verify-fail@42, state-nan@7").unwrap();
        assert!(armed(FaultKind::VerifyFail));
        assert!(!armed(FaultKind::ParseError));
        assert_eq!(take(FaultKind::VerifyFail), Some(42));
        assert_eq!(take(FaultKind::VerifyFail), None, "plans fire once");
        assert_eq!(take(FaultKind::StateNan), Some(7));
        disarm_all();
    }

    #[test]
    fn every_fault_kind_round_trips_through_its_spec_name() {
        for k in ALL_FAULT_KINDS {
            assert_eq!(FaultKind::from_str(k.as_str()), Some(k), "{k}");
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(arm("verify-fail@nope").is_err());
        assert!(arm("made-up-fault@1").is_err());
    }

    #[test]
    fn seedless_items_default_to_zero() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        disarm_all();
        arm("cache-poison").unwrap();
        assert_eq!(take(FaultKind::CachePoison), Some(0));
        disarm_all();
    }

    #[test]
    fn corrupt_source_is_deterministic_and_fails_lexing() {
        let src = "diff_x = -x;";
        let a = corrupt_source(src, 5);
        let b = corrupt_source(src, 5);
        assert_eq!(a, b);
        assert!(limpet_easyml::lex(&a).is_err());
    }

    #[test]
    fn corrupt_module_breaks_verification_deterministically() {
        let model = limpet_easyml::compile_model("M", "diff_x = -0.5 * x;").unwrap();
        let make = || {
            limpet_codegen::lower_model(&model, &limpet_codegen::CodegenOptions { use_lut: true })
                .module
        };
        let mut m1 = make();
        let mut m2 = make();
        let d1 = corrupt_module(&mut m1, 9).expect("candidate op");
        let d2 = corrupt_module(&mut m2, 9).expect("candidate op");
        assert_eq!(d1, d2, "same seed, same corruption");
        let err = limpet_ir::verify_module(&m1).unwrap_err();
        assert_eq!(err.code, limpet_ir::VerifyCode::Dominance, "{err}");
    }

    #[test]
    fn nan_step_is_stable_per_seed() {
        assert_eq!(nan_step(7), nan_step(7));
        assert!((1..17).contains(&nan_step(7)));
    }
}
