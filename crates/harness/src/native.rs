//! The native execution tier: background C compilation, `dlopen`
//! loading, probation, and hot-swap plumbing for [`crate::Tier::Native`].
//!
//! A long-lived width-1 simulation spends its life in the bytecode
//! interpreter. Once its kernel's executed-step counter crosses the
//! promotion threshold, this module turns the *exact bytecode program*
//! into serial C ([`limpet_codegen::emit_c_native`]), compiles it with
//! the system toolchain (`cc -O2 -fPIC -shared -ffp-contract=off`) on a
//! background thread, `dlopen`s the shared object, and — only after the
//! candidate passes a bit-identity probation run against the interpreter
//! — publishes it for the simulation to hot-swap in at a step boundary.
//!
//! Bit-identity is the contract, not a best effort: the emitted C calls
//! back into the *same Rust `f64` math* the VM executes (through a
//! function-pointer table, [`MathTable`]), IEEE primitives are compiled
//! without contraction or fast-math, and the probation differential
//! compares full raw storage bits. A native kernel that cannot prove
//! itself identical is quarantined, never persisted, and the simulation
//! stays on bytecode.
//!
//! Every failure mode degrades, none aborts:
//!
//! * toolchain missing / `cc` error → [`IncidentKind::NativeCcFail`],
//!   slot quarantined, bytecode continues;
//! * `dlopen`/`dlsym` error → [`IncidentKind::NativeDlopenFail`], same;
//! * probation mismatch → [`IncidentKind::NativeDivergent`], same;
//! * a corrupt or stale persisted `.so` container → entry deleted,
//!   recompiled from source.
//!
//! Validated shared objects persist in the kernel disk cache
//! ([`crate::DiskCache::store_native`]) keyed by a content fingerprint of
//! the emitted C, so a warm process re-enters the native tier without
//! invoking the compiler — after re-running probation, because a `.so`
//! from disk is exactly as untrusted as a fresh one.

use crate::faults::{self, FaultKind};
use crate::health::{Incident, IncidentKind};
use limpet_codegen::{
    emit_c_native, native_math_table, NativeBinFn, NativeLutFn, NATIVE_EMITTER_VERSION,
    NATIVE_ENTRY_SYMBOL, NATIVE_TABLE_SLOTS,
};
use limpet_vm::{CellStates, ExtArrays, Kernel, LutData, SimContext, StateLayout};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Default executed-step count at which a kernel is offered for native
/// promotion. Low enough that any real run promotes early, high enough
/// that short-lived probes (tests, `--digest` spot checks) never pay a
/// compiler invocation.
pub const DEFAULT_PROMOTION_THRESHOLD: u64 = 200;

/// Cells in the probation differential.
const PROBATION_CELLS: usize = 5;
/// Steps in the probation differential.
const PROBATION_STEPS: usize = 8;

static PROMOTION_ENABLED: AtomicBool = AtomicBool::new(false);
static PROMOTION_THRESHOLD: AtomicU64 = AtomicU64::new(DEFAULT_PROMOTION_THRESHOLD);

/// Turns automatic native-tier promotion on or off process-wide
/// (`figures --native` / `--no-native`). Off by default: promotion costs
/// a compiler subprocess, which short-lived tool invocations should opt
/// into, not discover.
pub fn set_promotion(enabled: bool) {
    PROMOTION_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether automatic promotion is enabled.
pub fn promotion_enabled() -> bool {
    PROMOTION_ENABLED.load(Ordering::Relaxed)
}

/// Overrides the promotion threshold (executed steps).
pub fn set_promotion_threshold(steps: u64) {
    PROMOTION_THRESHOLD.store(steps.max(1), Ordering::Relaxed);
}

/// The current promotion threshold (executed steps).
pub fn promotion_threshold() -> u64 {
    PROMOTION_THRESHOLD.load(Ordering::Relaxed)
}

/// Arms promotion from the environment: `LIMPET_NATIVE=1` enables it,
/// `LIMPET_NATIVE_THRESHOLD=<steps>` overrides the threshold. Used by
/// the service daemon, where there is no per-run flag.
pub fn promotion_from_env() {
    if let Ok(v) = std::env::var("LIMPET_NATIVE") {
        set_promotion(v == "1" || v.eq_ignore_ascii_case("true"));
    }
    if let Ok(v) = std::env::var("LIMPET_NATIVE_THRESHOLD") {
        if let Ok(n) = v.trim().parse::<u64>() {
            set_promotion_threshold(n);
        }
    }
}

/// Default wall-clock budget for one compiler invocation. A healthy
/// `cc -O2` over an emitted kernel finishes in well under a second;
/// thirty seconds is pure headroom for loaded CI hosts.
pub const DEFAULT_CC_TIMEOUT: Duration = Duration::from_secs(30);

static CC_TIMEOUT_MS: AtomicU64 = AtomicU64::new(0);

/// Overrides the compile watchdog budget process-wide. Zero-duration
/// requests are clamped to one millisecond so the watchdog always gives
/// the child a chance to start.
pub fn set_cc_timeout(timeout: Duration) {
    CC_TIMEOUT_MS.store((timeout.as_millis() as u64).max(1), Ordering::Relaxed);
}

/// The current compile watchdog budget: an explicit [`set_cc_timeout`]
/// override wins, else `LIMPET_CC_TIMEOUT_MS` from the environment, else
/// [`DEFAULT_CC_TIMEOUT`].
pub fn cc_timeout() -> Duration {
    let ms = CC_TIMEOUT_MS.load(Ordering::Relaxed);
    if ms != 0 {
        return Duration::from_millis(ms);
    }
    static ENV: OnceLock<Option<u64>> = OnceLock::new();
    match ENV.get_or_init(|| {
        std::env::var("LIMPET_CC_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    }) {
        Some(ms) => Duration::from_millis((*ms).max(1)),
        None => DEFAULT_CC_TIMEOUT,
    }
}

/// True when `kernel` can be promoted: the scalar (width-1) tier over
/// AoS storage. Vectorized configurations never promote — their bytecode
/// already is the optimized artifact under measurement, and the serial C
/// ABI is defined over AoS indexing only.
pub fn native_eligible(kernel: &Kernel, layout: StateLayout) -> bool {
    kernel.width() == 1 && layout == StateLayout::Aos
}

/// Probes once for a working C toolchain (`cc` on `PATH`).
pub fn toolchain_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::process::Command::new("cc")
            .arg("--version")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    })
}

/// Content fingerprint of an emitted native translation unit: FNV-1a
/// over the C source, seeded with the emitter version so an ABI change
/// re-keys every cached shared object.
pub fn native_fingerprint(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ u64::from(NATIVE_EMITTER_VERSION);
    for b in source.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Emits the native C for `kernel` and returns `(fingerprint, source)`.
///
/// # Errors
///
/// Propagates the emitter's rejection message.
pub fn emit_for_kernel(kernel: &Kernel) -> Result<(u64, String), String> {
    let source = emit_c_native(kernel.program(), kernel.name())?;
    let fp = native_fingerprint(&source);
    Ok((fp, source))
}

// ---------------------------------------------------------------------
// dlopen FFI (std-only; no crates)
// ---------------------------------------------------------------------

mod dl {
    use std::os::raw::{c_char, c_int, c_void};

    pub const RTLD_NOW: c_int = 2;

    #[link(name = "dl")]
    extern "C" {
        pub fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        pub fn dlclose(handle: *mut c_void) -> c_int;
        pub fn dlerror() -> *mut c_char;
    }

    /// The thread's last `dl*` error as a Rust string.
    pub fn last_error() -> String {
        // Safety: dlerror returns a thread-local NUL-terminated string
        // (or null when no error is pending).
        unsafe {
            let p = dlerror();
            if p.is_null() {
                "unknown dl error".to_string()
            } else {
                std::ffi::CStr::from_ptr(p).to_string_lossy().into_owned()
            }
        }
    }
}

/// An owned `dlopen` handle; `dlclose`d on drop.
struct DlHandle(*mut std::os::raw::c_void);

impl std::fmt::Debug for DlHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DlHandle({:p})", self.0)
    }
}

impl Drop for DlHandle {
    fn drop(&mut self) {
        // Safety: the handle came from a successful dlopen and is closed
        // exactly once.
        unsafe {
            dl::dlclose(self.0);
        }
    }
}

// ---------------------------------------------------------------------
// The call table the emitted C executes through
// ---------------------------------------------------------------------

/// LUT-callback context: a raw view of the kernel's table array. The C
/// side treats it as opaque and passes it straight back.
#[derive(Debug)]
struct LutCtx {
    luts: *const LutData,
    n: usize,
}

impl LutCtx {
    fn tables(&self) -> &[LutData] {
        // Safety: `luts`/`n` describe the owning kernel's LUT slice,
        // which the NativeKernel keeps alive (it owns a Kernel clone).
        unsafe { std::slice::from_raw_parts(self.luts, self.n) }
    }
}

unsafe extern "C" fn lut_linear_cb(ctx: *const (), table: i64, col: i64, key: f64) -> f64 {
    let ctx = &*(ctx as *const LutCtx);
    // Same math as the interpreter's `LutVec`/`LutScalar` at width 1:
    // `interp_one` and `interp_block` share the clamp and blend exactly.
    ctx.tables()[table as usize].interp_one(key, col as usize)
}

unsafe extern "C" fn lut_cubic_cb(ctx: *const (), table: i64, col: i64, key: f64) -> f64 {
    let ctx = &*(ctx as *const LutCtx);
    let mut out = [0.0];
    ctx.tables()[table as usize].interp_block_cubic(&[key], col as usize, &mut out);
    out[0]
}

/// The Rust mirror of the emitted `limpet_mtab` struct: the function
/// pointer table the native code calls for transcendentals and LUT
/// reads. Layout must match the C typedef field-for-field.
#[repr(C)]
#[derive(Debug)]
struct MathTable {
    fns: [NativeBinFn; NATIVE_TABLE_SLOTS],
    lut_linear: NativeLutFn,
    lut_cubic: NativeLutFn,
    lut_ctx: *const (),
}

/// Signature of the emitted entry symbol — see
/// [`limpet_codegen::emit_c_native`] for the C-side declaration.
type NativeEntryFn = unsafe extern "C" fn(
    *mut f64,        // state (AoS raw storage)
    *const *mut f64, // ext (one base pointer per external array)
    *const f64,      // params
    f64,             // dt
    f64,             // t
    i64,             // cell_begin
    i64,             // cell_end
    i64,             // stride (state vars per cell in storage)
    *const MathTable,
);

/// How a native kernel came to exist, for stats and incident detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeProvenance {
    /// Compiled by the toolchain in this process.
    Compiled,
    /// Reloaded from the persisted `.so` container (no compiler ran).
    Disk,
}

impl NativeProvenance {
    /// Short label for incident messages.
    pub fn label(self) -> &'static str {
        match self {
            NativeProvenance::Compiled => "compiled",
            NativeProvenance::Disk => "disk",
        }
    }
}

/// A loaded, probation-validated native kernel: the `dlopen` handle, the
/// resolved entry point, and the call table the code executes through.
/// Holds a clone of the bytecode kernel it was emitted from, so the LUT
/// storage the callbacks index stays alive.
#[derive(Debug)]
pub struct NativeKernel {
    entry: NativeEntryFn,
    /// Boxed so the address handed to C is stable.
    table: Box<MathTable>,
    /// Keeps `table.lut_ctx` alive.
    _lut_ctx: Box<LutCtx>,
    /// Keeps the LUT data (and program identity) alive.
    kernel: Kernel,
    fingerprint: u64,
    provenance: NativeProvenance,
    /// Closed (dlclose) when the kernel drops — declared last so the
    /// entry pointer dies before the library unmaps.
    _lib: DlHandle,
}

// Safety: the entry function is a pure function over the pointers passed
// per call; the table and context are immutable after construction; the
// dl handle is only used at drop. Concurrent `run_step` calls on
// disjoint storage are safe, matching `Kernel`.
unsafe impl Send for NativeKernel {}
unsafe impl Sync for NativeKernel {}

impl NativeKernel {
    /// Wraps a freshly `dlopen`ed library whose entry has been resolved.
    fn assemble(
        lib: DlHandle,
        entry: NativeEntryFn,
        kernel: Kernel,
        fingerprint: u64,
        provenance: NativeProvenance,
    ) -> NativeKernel {
        let lut_ctx = Box::new(LutCtx {
            luts: kernel.luts().as_ptr(),
            n: kernel.luts().len(),
        });
        let table = Box::new(MathTable {
            fns: native_math_table(),
            lut_linear: lut_linear_cb,
            lut_cubic: lut_cubic_cb,
            lut_ctx: &*lut_ctx as *const LutCtx as *const (),
        });
        NativeKernel {
            entry,
            table,
            _lut_ctx: lut_ctx,
            kernel,
            fingerprint,
            provenance,
            _lib: lib,
        }
    }

    /// The content fingerprint of the C source this kernel was built
    /// from (the persistence key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this kernel was compiled in-process or reloaded from the
    /// disk cache.
    pub fn provenance(&self) -> NativeProvenance {
        self.provenance
    }

    /// The bytecode kernel this native code was emitted from.
    pub fn bytecode(&self) -> &Kernel {
        &self.kernel
    }

    /// Runs one compute step over all (padded) cells — the native twin
    /// of [`Kernel::run_step`], covering the same `[0, padded)` range so
    /// trajectories stay bit-identical including padding lanes.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the storage is not AoS — eligibility
    /// ([`native_eligible`]) must have been checked at promotion time.
    pub fn run_step(
        &self,
        state: &mut CellStates,
        ext: &mut ExtArrays,
        params: &[f64],
        ctx: SimContext,
    ) {
        debug_assert_eq!(state.layout(), StateLayout::Aos, "native tier is AoS-only");
        let cells = state.padded_cells() as i64;
        let stride = state.n_vars() as i64;
        let ext_ptrs = ext.raw_mut_ptrs();
        // Safety: the entry was resolved from a library probated against
        // this exact program; state/ext are sized for `cells` with AoS
        // stride `stride`; the table outlives the call.
        unsafe {
            (self.entry)(
                state.raw_mut().as_mut_ptr(),
                ext_ptrs.as_ptr(),
                params.as_ptr(),
                ctx.dt,
                ctx.t,
                0,
                cells,
                stride,
                &*self.table,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Toolchain driver
// ---------------------------------------------------------------------

/// A temp file that best-effort deletes itself.
struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp_path(ext: &str, fingerprint: u64) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "limpet-native-{fingerprint:016x}-{}-{}.{ext}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Marker prefix on compile-timeout errors, and the quarantine reason
/// tag, so [`NativeRegistry::build`] classifies them as
/// [`IncidentKind::NativeCcTimeout`] rather than a plain compiler error.
pub const CC_TIMEOUT_MARKER: &str = "cc-timeout";

/// Runs a compiler subprocess under a wall-clock watchdog: `spawn` +
/// `try_wait` polling instead of a blocking `output()`, so a wedged
/// toolchain is killed at the [`cc_timeout`] budget instead of hanging
/// the builder thread (and with it the slot) forever.
fn run_with_watchdog(
    cmd: &mut std::process::Command,
    timeout: Duration,
) -> Result<std::process::Output, String> {
    use std::process::Stdio;
    // stderr stays piped but undrained during the poll loop: compiler
    // diagnostics beyond the pipe buffer would stall the child, which
    // the watchdog then treats as a hang. Acceptable — the only reader
    // is the first diagnostic line, and the degrade path is the same
    // quarantine either way.
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn cc: {e}"))?;
    let deadline = std::time::Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) => {
                if std::time::Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!(
                        "{CC_TIMEOUT_MARKER}: compiler exceeded its {}ms budget and was killed",
                        timeout.as_millis()
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("cannot poll cc: {e}"));
            }
        }
    }
    child
        .wait_with_output()
        .map_err(|e| format!("cannot collect cc output: {e}"))
}

/// Compiles `source` to a shared object with the system toolchain and
/// returns its bytes. The [`FaultKind::CcFail`] and
/// [`FaultKind::CompileHang`] injection points live here, upstream of
/// the real compiler.
fn compile_so(source: &str, fingerprint: u64) -> Result<Vec<u8>, String> {
    if faults::take(FaultKind::CcFail).is_some() {
        return Err("injected C compiler failure".to_string());
    }
    let hang = faults::take(FaultKind::CompileHang).is_some();
    if !hang && !toolchain_available() {
        return Err("no C toolchain: `cc` not found on PATH".to_string());
    }
    let c_file = TempFile(temp_path("c", fingerprint));
    let so_file = TempFile(temp_path("so", fingerprint));
    std::fs::write(&c_file.0, source).map_err(|e| format!("cannot write C source: {e}"))?;
    // The CompileHang injection swaps the toolchain for a command that
    // sleeps far past any budget, so the real spawn/poll/kill watchdog
    // path is exercised even on hosts with no compiler at all.
    let mut cmd = if hang {
        let mut c = std::process::Command::new("sh");
        c.args(["-c", "sleep 600"]);
        c
    } else {
        let mut c = std::process::Command::new("cc");
        c.args(["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-o"])
            .arg(&so_file.0)
            .arg(&c_file.0);
        c
    };
    let out = run_with_watchdog(&mut cmd, cc_timeout())?;
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        let first = stderr.lines().next().unwrap_or("no diagnostics");
        return Err(format!("cc failed ({}): {first}", out.status));
    }
    std::fs::read(&so_file.0).map_err(|e| format!("cannot read compiled object: {e}"))
}

/// `dlopen`s a shared object from `bytes` (via a transient temp file,
/// unlinked immediately after the map) and resolves the entry symbol.
/// The [`FaultKind::DlopenFail`] injection point lives here.
fn load_so_bytes(bytes: &[u8], fingerprint: u64) -> Result<(DlHandle, NativeEntryFn), String> {
    if faults::take(FaultKind::DlopenFail).is_some() {
        return Err("injected dlopen failure".to_string());
    }
    let so_file = TempFile(temp_path("so", fingerprint));
    std::fs::write(&so_file.0, bytes).map_err(|e| format!("cannot stage object: {e}"))?;
    let c_path = std::ffi::CString::new(so_file.0.as_os_str().as_encoded_bytes())
        .map_err(|_| "object path contains NUL".to_string())?;
    // Safety: plain dlopen of a regular file path; failure is a null
    // handle, reported via dlerror.
    let handle = unsafe { dl::dlopen(c_path.as_ptr(), dl::RTLD_NOW) };
    if handle.is_null() {
        return Err(format!("dlopen failed: {}", dl::last_error()));
    }
    let lib = DlHandle(handle);
    let sym = std::ffi::CString::new(NATIVE_ENTRY_SYMBOL).expect("symbol has no NUL");
    // Safety: handle is live; a missing symbol comes back null.
    let entry = unsafe { dl::dlsym(lib.0, sym.as_ptr()) };
    if entry.is_null() {
        return Err(format!(
            "dlsym({NATIVE_ENTRY_SYMBOL}) failed: {}",
            dl::last_error()
        ));
    }
    // Safety: the symbol was emitted with exactly this signature by
    // emit_c_native (version-stamped; mismatches are re-keyed away).
    let entry = unsafe { std::mem::transmute::<*mut std::os::raw::c_void, NativeEntryFn>(entry) };
    Ok((lib, entry))
}

/// Runs the bit-identity probation differential: a few cells stepped a
/// few times through the interpreter and the native code side by side,
/// comparing *all* raw storage bits (padding lanes included). The
/// [`FaultKind::NativeDivergent`] injection point corrupts the native
/// side's observed bits so the real comparison trips.
///
/// # Errors
///
/// Returns a description of the first diverging word.
pub fn probation(native: &NativeKernel, kernel: &Kernel) -> Result<(), String> {
    let mut ref_state = kernel.new_states(PROBATION_CELLS, StateLayout::Aos);
    let mut ref_ext = kernel.new_ext(PROBATION_CELLS);
    let mut nat_state = ref_state.clone();
    let mut nat_ext = ref_ext.clone();
    let dt = 0.01;
    for step in 0..PROBATION_STEPS {
        let ctx = SimContext {
            dt,
            t: step as f64 * dt,
        };
        kernel.run_step(&mut ref_state, &mut ref_ext, None, ctx);
        native.run_step(&mut nat_state, &mut nat_ext, kernel.param_values(), ctx);
    }
    let mut nat_bits: Vec<u64> = nat_state.raw().iter().map(|v| v.to_bits()).collect();
    for var in 0..nat_ext.n_vars() {
        for cell in 0..nat_ext.n_cells() {
            nat_bits.push(nat_ext.get(cell, var).to_bits());
        }
    }
    if faults::take(FaultKind::NativeDivergent).is_some() {
        if let Some(word) = nat_bits.first_mut() {
            *word ^= 1;
        }
    }
    let mut ref_bits: Vec<u64> = ref_state.raw().iter().map(|v| v.to_bits()).collect();
    for var in 0..ref_ext.n_vars() {
        for cell in 0..ref_ext.n_cells() {
            ref_bits.push(ref_ext.get(cell, var).to_bits());
        }
    }
    if let Some(at) = (0..ref_bits.len()).find(|&i| ref_bits[i] != nat_bits[i]) {
        return Err(format!(
            "probation divergence at word {at}: bytecode {:#018x} vs native {:#018x}",
            ref_bits[at], nat_bits[at]
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The slot registry (background compilation + publication)
// ---------------------------------------------------------------------

/// The state of one native compilation slot.
#[derive(Debug, Clone)]
pub enum NativeSlot {
    /// A build is in flight on a background thread.
    Pending,
    /// Probation passed; ready to hot-swap.
    Ready(Arc<NativeKernel>),
    /// The build or probation failed; bytecode stays authoritative. The
    /// failure is sticky for the process so a broken toolchain costs one
    /// attempt, not one per simulation.
    Quarantined(Arc<str>),
}

/// Everything a background build needs, captured by value.
#[derive(Debug)]
pub struct NativeRequest {
    /// Fingerprint of the emitted C ([`native_fingerprint`]).
    pub fingerprint: u64,
    /// The emitted C source.
    pub source: String,
    /// Model name for incidents.
    pub model: String,
    /// The bytecode kernel (probation reference + LUT owner).
    pub kernel: Kernel,
    /// The disk tier, when attached, for `.so` persistence.
    pub disk: Option<Arc<crate::persist::DiskCache>>,
}

/// Counter snapshot of a [`NativeRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Toolchain compilations that produced a validated kernel.
    pub compiles: u64,
    /// Validated kernels reloaded from the persisted container (no
    /// compiler ran).
    pub disk_hits: u64,
    /// Containers persisted.
    pub disk_writes: u64,
    /// Slots currently ready.
    pub ready: usize,
    /// Slots currently quarantined.
    pub quarantined: usize,
    /// Compiler invocations killed by the watchdog ([`cc_timeout`]).
    pub cc_timeouts: u64,
}

/// The process-wide ledger of native compilations: one slot per emitted
/// C fingerprint, built on background threads, published atomically.
/// Owned by [`crate::KernelCache`] so stats and incidents surface
/// through the same channels as the bytecode tiers.
#[derive(Debug, Default)]
pub struct NativeRegistry {
    slots: Mutex<HashMap<u64, NativeSlot>>,
    /// Model name → fingerprint of the most recent build request for
    /// that model, so an external watchdog (which knows only which
    /// *job* wedged) can quarantine the right slot without re-emitting C.
    by_model: Mutex<HashMap<String, u64>>,
    compiles: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
    cc_timeouts: AtomicU64,
    incidents: Mutex<Vec<Incident>>,
}

impl NativeRegistry {
    /// An empty registry.
    pub fn new() -> NativeRegistry {
        NativeRegistry::default()
    }

    /// The current state of the slot for `fingerprint`, if any build was
    /// ever requested.
    pub fn poll(&self, fingerprint: u64) -> Option<NativeSlot> {
        self.lock_slots().get(&fingerprint).cloned()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NativeStats {
        let (ready, quarantined) = {
            let slots = self.lock_slots();
            (
                slots
                    .values()
                    .filter(|s| matches!(s, NativeSlot::Ready(_)))
                    .count(),
                slots
                    .values()
                    .filter(|s| matches!(s, NativeSlot::Quarantined(_)))
                    .count(),
            )
        };
        NativeStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            ready,
            quarantined,
            cc_timeouts: self.cc_timeouts.load(Ordering::Relaxed),
        }
    }

    /// Incidents recorded by builds (failures and their reasons).
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Drops every slot and incident (counters survive). Tests only.
    pub fn clear(&self) {
        self.lock_slots().clear();
        self.incidents
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    fn lock_slots(&self) -> std::sync::MutexGuard<'_, HashMap<u64, NativeSlot>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn remember_model(&self, model: &str, fingerprint: u64) {
        self.by_model
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(model.to_string(), fingerprint);
    }

    /// Quarantines the native slot most recently requested for `model`,
    /// on behalf of an external watchdog that caught the slot's code
    /// wedging a worker. The bytecode `(model, config)` cache entry is
    /// deliberately untouched: the interpreter is still trusted, so
    /// subsequent jobs rerun on bytecode bit-identically instead of
    /// falling all the way back to the Baseline pipeline. Returns false
    /// when no build was ever requested for `model`.
    pub fn quarantine_for_model(&self, model: &str, reason: &str) -> bool {
        let fp = {
            let by_model = self.by_model.lock().unwrap_or_else(|p| p.into_inner());
            match by_model.get(model) {
                Some(&fp) => fp,
                None => return false,
            }
        };
        self.lock_slots()
            .insert(fp, NativeSlot::Quarantined(Arc::from(reason)));
        self.log(Incident::new(
            IncidentKind::DeadlineExceeded,
            model,
            format!("watchdog quarantined native kernel {fp:016x}: {reason}"),
        ));
        true
    }

    fn log(&self, incident: Incident) {
        self.incidents
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(incident);
    }

    /// Begins a background build for the request's fingerprint if no
    /// slot exists yet. Returns immediately; the simulation keeps
    /// stepping bytecode and polls for the published slot.
    pub fn request(self: &Arc<Self>, req: NativeRequest) {
        self.remember_model(&req.model, req.fingerprint);
        {
            let mut slots = self.lock_slots();
            if slots.contains_key(&req.fingerprint) {
                return;
            }
            slots.insert(req.fingerprint, NativeSlot::Pending);
        }
        let fingerprint = req.fingerprint;
        let registry = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name(format!("native-cc-{:08x}", fingerprint as u32))
            .spawn(move || {
                let slot = registry.build_contained(&req);
                registry.lock_slots().insert(req.fingerprint, slot);
            });
        // Thread exhaustion degrades like any other build failure.
        if let Err(e) = spawned {
            self.lock_slots().insert(
                fingerprint,
                NativeSlot::Quarantined(Arc::from(format!("cannot spawn builder: {e}"))),
            );
        }
    }

    /// Synchronous [`NativeRegistry::request`]: builds (or reuses) the
    /// slot on the calling thread and returns its final state. Benches
    /// and tests use this to reach the native tier deterministically.
    pub fn request_blocking(self: &Arc<Self>, req: NativeRequest) -> NativeSlot {
        self.remember_model(&req.model, req.fingerprint);
        {
            let mut slots = self.lock_slots();
            match slots.get(&req.fingerprint) {
                None | Some(NativeSlot::Pending) => {
                    slots.insert(req.fingerprint, NativeSlot::Pending);
                }
                Some(done) => return done.clone(),
            }
        }
        let slot = self.build_contained(&req);
        self.lock_slots().insert(req.fingerprint, slot.clone());
        slot
    }

    /// Runs a build with panic containment: a panicking builder
    /// quarantines its slot instead of leaving it `Pending` forever.
    fn build_contained(&self, req: &NativeRequest) -> NativeSlot {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.build(req))).unwrap_or_else(
            |payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                self.log(Incident::new(
                    IncidentKind::NativeCcFail,
                    &req.model,
                    format!("native builder panicked ({msg}); staying on bytecode"),
                ));
                NativeSlot::Quarantined(Arc::from(format!("builder panicked: {msg}")))
            },
        )
    }

    /// The full build pipeline: disk reload → (else) emit+cc → dlopen →
    /// probation → persist → publish. Every failure returns a
    /// `Quarantined` slot and an incident; nothing propagates.
    fn build(&self, req: &NativeRequest) -> NativeSlot {
        // Warm path: a persisted container skips the compiler, but not
        // probation — disk bytes earn trust the same way fresh ones do.
        if let Some(disk) = &req.disk {
            match disk.load_native(req.fingerprint) {
                crate::persist::NativeDiskLoad::Hit(bytes) => {
                    match self.validate(&bytes, req, NativeProvenance::Disk) {
                        Ok(native) => {
                            self.disk_hits.fetch_add(1, Ordering::Relaxed);
                            self.log(Incident::new(
                                IncidentKind::NativePromoted,
                                &req.model,
                                format!(
                                    "native kernel {:016x} reloaded from disk cache (0 compiles)",
                                    req.fingerprint
                                ),
                            ));
                            return NativeSlot::Ready(Arc::new(native));
                        }
                        Err((kind, reason)) => {
                            // A bad persisted object self-heals: drop it
                            // and fall through to a fresh compile.
                            disk.remove_native(req.fingerprint);
                            self.log(Incident::new(
                                kind,
                                &req.model,
                                format!("persisted native object rejected ({reason}); recompiling"),
                            ));
                        }
                    }
                }
                crate::persist::NativeDiskLoad::Miss => {}
                crate::persist::NativeDiskLoad::Rejected(reason) => {
                    disk.remove_native(req.fingerprint);
                    self.log(Incident::new(
                        IncidentKind::NativeDlopenFail,
                        &req.model,
                        format!("native container rejected ({reason}); recompiling"),
                    ));
                }
            }
        }
        // Cold path: invoke the toolchain.
        let bytes = match compile_so(&req.source, req.fingerprint) {
            Ok(bytes) => bytes,
            Err(reason) => {
                let kind = if reason.starts_with(CC_TIMEOUT_MARKER) {
                    self.cc_timeouts.fetch_add(1, Ordering::Relaxed);
                    IncidentKind::NativeCcTimeout
                } else {
                    IncidentKind::NativeCcFail
                };
                self.log(Incident::new(
                    kind,
                    &req.model,
                    format!("{reason}; staying on bytecode"),
                ));
                return NativeSlot::Quarantined(Arc::from(reason));
            }
        };
        match self.validate(&bytes, req, NativeProvenance::Compiled) {
            Ok(native) => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                // Persist only what survived probation: a quarantined
                // object must never outlive the process.
                if let Some(disk) = &req.disk {
                    match disk.store_native(req.fingerprint, &bytes) {
                        Ok(()) => {
                            self.disk_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => self.log(Incident::new(
                            IncidentKind::DiskCacheDegraded,
                            &req.model,
                            format!("could not persist native object ({e}); in-memory only"),
                        )),
                    }
                }
                self.log(Incident::new(
                    IncidentKind::NativePromoted,
                    &req.model,
                    format!(
                        "native kernel {:016x} compiled and validated",
                        req.fingerprint
                    ),
                ));
                NativeSlot::Ready(Arc::new(native))
            }
            Err((kind, reason)) => {
                self.log(Incident::new(
                    kind,
                    &req.model,
                    format!("{reason}; staying on bytecode"),
                ));
                NativeSlot::Quarantined(Arc::from(reason))
            }
        }
    }

    /// Loads object bytes and runs probation; the shared tail of the
    /// cold and warm paths.
    fn validate(
        &self,
        bytes: &[u8],
        req: &NativeRequest,
        provenance: NativeProvenance,
    ) -> Result<NativeKernel, (IncidentKind, String)> {
        let (lib, entry) = load_so_bytes(bytes, req.fingerprint)
            .map_err(|reason| (IncidentKind::NativeDlopenFail, reason))?;
        let native =
            NativeKernel::assemble(lib, entry, req.kernel.clone(), req.fingerprint, provenance);
        probation(&native, &req.kernel)
            .map_err(|reason| (IncidentKind::NativeDivergent, reason))?;
        Ok(native)
    }
}

/// Persists nothing, compiles nothing: a one-call helper that emits,
/// builds, and validates a native kernel for `kernel` through
/// `registry`, returning the final slot. The blocking entry used by
/// benches, tests, and `Simulation::promote_native_blocking`.
pub fn build_blocking(
    registry: &Arc<NativeRegistry>,
    kernel: &Kernel,
    model: &str,
    disk: Option<Arc<crate::persist::DiskCache>>,
) -> Result<NativeSlot, String> {
    let (fingerprint, source) = emit_for_kernel(kernel)?;
    Ok(registry.request_blocking(NativeRequest {
        fingerprint,
        source,
        model: model.to_string(),
        kernel: kernel.clone(),
        disk,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{model_info, PipelineKind};
    use limpet_models::model;

    fn scalar_kernel(name: &str) -> Kernel {
        let m = model(name);
        let module = PipelineKind::Baseline.build(&m);
        Kernel::from_module(&module, &model_info(&m)).expect("baseline compiles")
    }

    #[test]
    fn eligibility_is_width1_aos_only() {
        let k = scalar_kernel("HodgkinHuxley");
        assert!(native_eligible(&k, StateLayout::Aos));
        assert!(!native_eligible(&k, StateLayout::AoSoA { block: 8 }));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let k = scalar_kernel("HodgkinHuxley");
        let (fp1, src1) = emit_for_kernel(&k).unwrap();
        let (fp2, _) = emit_for_kernel(&k).unwrap();
        assert_eq!(fp1, fp2, "same program, same fingerprint");
        assert_ne!(fp1, native_fingerprint(&format!("{src1} ")));
    }

    #[test]
    fn native_kernel_matches_bytecode_bit_for_bit() {
        if !toolchain_available() {
            eprintln!("skipping: no C toolchain in this environment");
            return;
        }
        let k = scalar_kernel("HodgkinHuxley");
        let registry = Arc::new(NativeRegistry::new());
        let slot = build_blocking(&registry, &k, "HodgkinHuxley", None).unwrap();
        let NativeSlot::Ready(native) = slot else {
            panic!("expected ready slot, got {slot:?}");
        };
        assert_eq!(native.provenance(), NativeProvenance::Compiled);
        // Longer differential than probation, fresh storage.
        let mut sa = k.new_states(13, StateLayout::Aos);
        let mut ea = k.new_ext(13);
        let mut sb = sa.clone();
        let mut eb = ea.clone();
        for step in 0..200 {
            let ctx = SimContext {
                dt: 0.01,
                t: step as f64 * 0.01,
            };
            k.run_step(&mut sa, &mut ea, None, ctx);
            native.run_step(&mut sb, &mut eb, k.param_values(), ctx);
        }
        let bits = |s: &CellStates| s.raw().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&sa), bits(&sb), "state diverged");
        for var in 0..ea.n_vars() {
            for cell in 0..ea.n_cells() {
                assert_eq!(
                    ea.get(cell, var).to_bits(),
                    eb.get(cell, var).to_bits(),
                    "ext {var} cell {cell} diverged"
                );
            }
        }
        assert_eq!(registry.stats().compiles, 1);
    }

    #[test]
    fn injected_cc_failure_quarantines_with_incident() {
        let _guard = faults::TEST_SERIAL
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        faults::arm("cc-fail@1").unwrap();
        let k = scalar_kernel("Plonsey");
        let registry = Arc::new(NativeRegistry::new());
        let slot = build_blocking(&registry, &k, "Plonsey", None).unwrap();
        assert!(matches!(slot, NativeSlot::Quarantined(_)), "{slot:?}");
        assert!(registry
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::NativeCcFail));
        faults::disarm_all();
    }

    #[test]
    fn hung_compile_times_out_quarantines_and_bytecode_continues() {
        let _guard = faults::TEST_SERIAL
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        faults::arm("compile-hang@1").unwrap();
        set_cc_timeout(Duration::from_millis(200));
        let k = scalar_kernel("Plonsey");
        let registry = Arc::new(NativeRegistry::new());
        let started = std::time::Instant::now();
        let slot = build_blocking(&registry, &k, "Plonsey", None).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "watchdog must kill the hung compiler, not wait it out"
        );
        let NativeSlot::Quarantined(reason) = slot else {
            panic!("expected quarantined slot, got {slot:?}");
        };
        assert!(
            reason.starts_with(CC_TIMEOUT_MARKER),
            "quarantine reason must be tagged {CC_TIMEOUT_MARKER}: {reason}"
        );
        assert!(registry
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::NativeCcTimeout));
        // The simulation carries on, on the bytecode tier, bit-identical
        // to a run that never attempted promotion.
        let mut attempted = k.new_states(7, StateLayout::Aos);
        let mut attempted_ext = k.new_ext(7);
        let mut control = attempted.clone();
        let mut control_ext = attempted_ext.clone();
        for step in 0..50 {
            let ctx = SimContext {
                dt: 0.01,
                t: step as f64 * 0.01,
            };
            k.run_step(&mut attempted, &mut attempted_ext, None, ctx);
            k.run_step(&mut control, &mut control_ext, None, ctx);
        }
        let bits = |s: &CellStates| s.raw().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&attempted), bits(&control));
        set_cc_timeout(DEFAULT_CC_TIMEOUT);
        faults::disarm_all();
    }

    #[test]
    fn watchdog_quarantine_by_model_lands_on_the_requested_slot() {
        let _guard = faults::TEST_SERIAL
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        // cc-fail keeps the build away from the real toolchain; the
        // watchdog quarantine below overwrites the slot either way.
        faults::arm("cc-fail@1").unwrap();
        let k = scalar_kernel("MitchellSchaeffer");
        let registry = Arc::new(NativeRegistry::new());
        assert!(
            !registry.quarantine_for_model("MitchellSchaeffer", "stuck worker"),
            "unknown model must report false"
        );
        let (fp, source) = emit_for_kernel(&k).unwrap();
        registry.request_blocking(NativeRequest {
            fingerprint: fp,
            source,
            model: "MitchellSchaeffer".to_string(),
            kernel: k,
            disk: None,
        });
        faults::disarm_all();
        assert!(registry.quarantine_for_model("MitchellSchaeffer", "stuck worker"));
        assert!(matches!(
            registry.poll(fp),
            Some(NativeSlot::Quarantined(reason)) if reason.as_ref() == "stuck worker"
        ));
        assert!(registry
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::DeadlineExceeded));
    }

    #[test]
    fn injected_dlopen_failure_quarantines_with_incident() {
        if !toolchain_available() {
            eprintln!("skipping: no C toolchain in this environment");
            return;
        }
        let _guard = faults::TEST_SERIAL
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        faults::arm("dlopen-fail@1").unwrap();
        let k = scalar_kernel("Plonsey");
        let registry = Arc::new(NativeRegistry::new());
        let slot = build_blocking(&registry, &k, "Plonsey", None).unwrap();
        assert!(matches!(slot, NativeSlot::Quarantined(_)), "{slot:?}");
        assert!(registry
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::NativeDlopenFail));
        faults::disarm_all();
    }

    #[test]
    fn injected_divergence_quarantines_and_never_persists() {
        if !toolchain_available() {
            eprintln!("skipping: no C toolchain in this environment");
            return;
        }
        let _guard = faults::TEST_SERIAL
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        faults::arm("native-divergent@1").unwrap();
        let dir = std::env::temp_dir().join(format!("limpet-native-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = Arc::new(crate::persist::DiskCache::open(&dir).unwrap());
        let k = scalar_kernel("Plonsey");
        let registry = Arc::new(NativeRegistry::new());
        let slot = build_blocking(&registry, &k, "Plonsey", Some(Arc::clone(&disk))).unwrap();
        assert!(matches!(slot, NativeSlot::Quarantined(_)), "{slot:?}");
        assert!(registry
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::NativeDivergent));
        // The quarantined object must not have been persisted.
        let (fp, _) = emit_for_kernel(&k).unwrap();
        assert!(matches!(
            disk.load_native(fp),
            crate::persist::NativeDiskLoad::Miss
        ));
        faults::disarm_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_process_reloads_from_disk_without_compiling() {
        if !toolchain_available() {
            eprintln!("skipping: no C toolchain in this environment");
            return;
        }
        let dir = std::env::temp_dir().join(format!("limpet-native-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = Arc::new(crate::persist::DiskCache::open(&dir).unwrap());
        let k = scalar_kernel("MitchellSchaeffer");
        let cold = Arc::new(NativeRegistry::new());
        let slot = build_blocking(&cold, &k, "MitchellSchaeffer", Some(Arc::clone(&disk))).unwrap();
        assert!(matches!(slot, NativeSlot::Ready(_)));
        assert_eq!(cold.stats().compiles, 1);
        assert_eq!(cold.stats().disk_writes, 1);
        // A second registry models a warm process: no compiler run.
        let warm = Arc::new(NativeRegistry::new());
        let slot = build_blocking(&warm, &k, "MitchellSchaeffer", Some(Arc::clone(&disk))).unwrap();
        let NativeSlot::Ready(native) = slot else {
            panic!("warm reload failed");
        };
        assert_eq!(native.provenance(), NativeProvenance::Disk);
        assert_eq!(warm.stats().compiles, 0, "warm start must not compile");
        assert_eq!(warm.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_persisted_container_self_heals() {
        if !toolchain_available() {
            eprintln!("skipping: no C toolchain in this environment");
            return;
        }
        let dir = std::env::temp_dir().join(format!("limpet-native-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = Arc::new(crate::persist::DiskCache::open(&dir).unwrap());
        let k = scalar_kernel("Plonsey");
        let cold = Arc::new(NativeRegistry::new());
        build_blocking(&cold, &k, "Plonsey", Some(Arc::clone(&disk))).unwrap();
        let (fp, _) = emit_for_kernel(&k).unwrap();
        // Flip a payload byte on disk.
        let path = dir.join(crate::persist::native_file_name(fp));
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 7;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // The warm process rejects the container, recompiles, re-stores.
        let warm = Arc::new(NativeRegistry::new());
        let slot = build_blocking(&warm, &k, "Plonsey", Some(Arc::clone(&disk))).unwrap();
        assert!(matches!(slot, NativeSlot::Ready(_)));
        assert_eq!(warm.stats().compiles, 1, "corrupt container must recompile");
        assert!(matches!(
            disk.load_native(fp),
            crate::persist::NativeDiskLoad::Hit(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
