//! The simulation driver: the counterpart of openCARP's `bench` binary
//! (paper §4), which steps an ionic model over a population of cells.
//!
//! Each step runs the two-stage flow of §3.1:
//!
//! 1. **compute stage** — the compiled kernel advances every cell's state
//!    and writes `Iion`;
//! 2. **membrane update** — `Vm ← Vm + dt·(−Iion + I_stim)/Cm` per cell
//!    (the `bench` single-cell protocol), or an implicit monodomain
//!    diffusion solve when tissue coupling is enabled.

use limpet_codegen::pipeline::{self, Layout, VectorIsa};
use limpet_easyml::Model;
use limpet_models::SizeClass;
use limpet_passes::RunReport;
use limpet_solver::Monodomain;
use limpet_vm::{CellStates, ExtArrays, Kernel, ModelInfo, Profile, SimContext, StateLayout};

/// Extracts the storage-binding facts from a checked model.
pub fn model_info(model: &Model) -> ModelInfo {
    ModelInfo {
        state_names: model.states.iter().map(|s| s.name.clone()).collect(),
        state_inits: model.states.iter().map(|s| s.init).collect(),
        ext_names: model.externals.iter().map(|e| e.name.clone()).collect(),
        ext_inits: model.externals.iter().map(|e| e.init).collect(),
        params: model
            .params
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect(),
    }
}

/// The code-generation configurations compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// openCARP limpetC++-style scalar code (the 1x reference).
    Baseline,
    /// limpetMLIR at an ISA width with the AoSoA layout.
    LimpetMlir(VectorIsa),
    /// limpetMLIR without the data-layout transformation (§4.4).
    LimpetMlirAos(VectorIsa),
    /// limpetMLIR without LUTs (§3.4.2 ablation).
    LimpetMlirNoLut(VectorIsa),
    /// icc-style auto-vectorization: vector arith, scalar LUT, AoS (§5).
    CompilerSimd(VectorIsa),
    /// limpetMLIR with Catmull-Rom spline LUTs on 4x-coarser tables
    /// (the paper's §7 future-work extension).
    LimpetMlirSpline(VectorIsa),
}

impl PipelineKind {
    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            PipelineKind::Baseline => "baseline".into(),
            PipelineKind::LimpetMlir(isa) => format!("limpetMLIR-{}", isa.name()),
            PipelineKind::LimpetMlirAos(isa) => format!("limpetMLIR-AoS-{}", isa.name()),
            PipelineKind::LimpetMlirNoLut(isa) => format!("limpetMLIR-noLUT-{}", isa.name()),
            PipelineKind::CompilerSimd(isa) => format!("compiler-simd-{}", isa.name()),
            PipelineKind::LimpetMlirSpline(isa) => {
                format!("limpetMLIR-spline-{}", isa.name())
            }
        }
    }

    /// Builds the IR module for a model under this configuration.
    pub fn build(self, model: &Model) -> limpet_ir::Module {
        self.build_with_report(model).0
    }

    /// Builds the IR module and returns the pass manager's execution
    /// report alongside it (per-pass wall time and counters — what a
    /// cold compile actually spent).
    pub fn build_with_report(self, model: &Model) -> (limpet_ir::Module, RunReport) {
        self.try_build_with_report(model)
            .unwrap_or_else(|e| panic!("{} pipeline failed for {}: {e}", self.label(), model.name))
    }

    /// Non-panicking [`PipelineKind::build_with_report`]: pipeline
    /// verification failures come back as a structured
    /// [`limpet_pm::PipelineError`] for the fault-tolerant compile chain.
    pub fn try_build_with_report(
        self,
        model: &Model,
    ) -> Result<(limpet_ir::Module, RunReport), limpet_pm::PipelineError> {
        let (lowered, report) = match self {
            PipelineKind::Baseline => pipeline::try_baseline_with_report(model)?,
            PipelineKind::LimpetMlir(isa) => {
                let block = isa.lanes();
                pipeline::try_limpet_mlir_with_report(model, isa, Layout::AoSoA { block })?
            }
            PipelineKind::LimpetMlirAos(isa) => {
                pipeline::try_limpet_mlir_with_report(model, isa, Layout::Aos)?
            }
            PipelineKind::LimpetMlirNoLut(isa) => {
                pipeline::try_limpet_mlir_no_lut_with_report(model, isa)?
            }
            PipelineKind::CompilerSimd(isa) => pipeline::try_compiler_simd_with_report(model, isa)?,
            PipelineKind::LimpetMlirSpline(isa) => {
                pipeline::try_limpet_mlir_spline_with_report(model, isa)?
            }
        };
        Ok((lowered.module, report))
    }
}

/// Maps a module's layout attribute to the storage layout.
pub fn storage_layout(module: &limpet_ir::Module) -> StateLayout {
    match pipeline::parse_layout(module) {
        Layout::Aos => StateLayout::Aos,
        Layout::AoSoA { block } => StateLayout::AoSoA {
            block: block as usize,
        },
    }
}

/// Workload parameters for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of cells (the paper uses 8192).
    pub n_cells: usize,
    /// Number of time steps (the paper's `bench` default is 100 000).
    pub steps: usize,
    /// Time step in ms (the paper uses 0.01).
    pub dt: f64,
}

impl Default for Workload {
    fn default() -> Workload {
        Workload {
            n_cells: 1024,
            steps: 50,
            dt: 0.01,
        }
    }
}

/// The periodic stimulus protocol of the `bench` binary: a depolarizing
/// current pulse at a basic cycle length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stimulus {
    /// Cycle length in ms.
    pub period: f64,
    /// Pulse duration in ms.
    pub duration: f64,
    /// Pulse amplitude added directly to dVm/dt (mV/ms).
    pub amplitude: f64,
}

impl Default for Stimulus {
    fn default() -> Stimulus {
        Stimulus {
            period: 500.0,
            duration: 2.0,
            amplitude: 60.0,
        }
    }
}

impl Stimulus {
    /// The stimulus contribution to `dVm/dt` at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        if t % self.period < self.duration {
            self.amplitude
        } else {
            0.0
        }
    }
}

/// The runtime half of the fault-tolerant chain: everything a guarded
/// simulation needs to detect non-finite state and descend the
/// optimized → raw → reference ladder mid-run.
#[derive(Debug)]
struct GuardState {
    policy: crate::HealthPolicy,
    /// The model, kept so the reference tier can be (re)compiled.
    model: Model,
    /// The compiled entry currently executing (holds the raw sibling).
    entry: std::sync::Arc<crate::CompiledKernel>,
    tier: crate::Tier,
    /// Completed guarded steps (1-based after the first step).
    step_count: usize,
    incidents: Vec<crate::Incident>,
    /// Armed NaN injection: `(step, seed)` from a
    /// [`crate::FaultKind::StateNan`] plan.
    nan_plan: Option<(usize, u64)>,
}

/// Native-promotion bookkeeping, armed on eligible simulations: watches
/// the kernel's executed-step counter, files one background build
/// request past the threshold, and polls for the published slot.
#[derive(Debug)]
struct NativeCtl {
    /// Fingerprint of the emitted C (the registry/persistence key).
    fingerprint: u64,
    /// The emitted C source, handed to the registry with the request.
    source: String,
    /// Executed-step count that triggers the build request.
    threshold: u64,
    /// Steps taken since arming (the counter-check is amortized: the
    /// registry is only consulted every 16th step).
    ticks: u64,
    /// Whether the build request has been filed.
    requested: bool,
}

/// A ready-to-run simulation: compiled kernel plus storage.
#[derive(Debug)]
pub struct Simulation {
    kernel: Kernel,
    state: CellStates,
    ext: ExtArrays,
    /// Index of `Vm` in the external arrays, when present.
    vm_index: Option<usize>,
    /// Index of `Iion` in the external arrays, when present.
    iion_index: Option<usize>,
    stim: Stimulus,
    dt: f64,
    t: f64,
    /// Optional tissue coupling.
    tissue: Option<Monodomain>,
    /// Health-guard state; present only on guarded simulations.
    guard: Option<Box<GuardState>>,
    /// Hot-swapped native kernel; present only after promotion to
    /// [`crate::Tier::Native`]. The bytecode kernel stays authoritative
    /// (emission source, fallback target); native runs beside it.
    native: Option<std::sync::Arc<crate::native::NativeKernel>>,
    /// Native-promotion bookkeeping; present while promotion is armed.
    native_ctl: Option<Box<NativeCtl>>,
    /// Cooperative cancellation/deadline token, polled by
    /// [`Simulation::step_guarded`] *before* each step so cancellation
    /// always lands at a step boundary (no torn mid-step state).
    cancel: Option<crate::CancelToken>,
}

impl Simulation {
    /// Builds a simulation for `model` under `config`, compiling through
    /// the process-wide [`crate::KernelCache`]: the first call for a
    /// `(model, config)` pair compiles, every later call reuses that
    /// compilation and only allocates fresh cell storage.
    ///
    /// # Panics
    ///
    /// Panics when the module fails bytecode compilation (roster models
    /// are tested not to).
    pub fn new(model: &Model, config: PipelineKind, workload: &Workload) -> Simulation {
        let entry = crate::KernelCache::global().get_or_compile(model, config);
        Simulation::with_kernel(entry.kernel().clone(), entry.layout(), workload)
    }

    /// Builds a simulation with a fresh compilation, bypassing every
    /// cache (the cold path: compile-time benchmarks, cache-validation
    /// tests, `figures --no-cache`).
    ///
    /// # Panics
    ///
    /// Panics when the module fails bytecode compilation.
    pub fn new_uncached(model: &Model, config: PipelineKind, workload: &Workload) -> Simulation {
        let module = config.build(model);
        let info = model_info(model);
        let kernel = Kernel::from_module(&module, &info)
            .unwrap_or_else(|e| panic!("kernel compilation failed for {}: {e}", model.name));
        let layout = storage_layout(&module);
        Simulation::with_kernel(kernel, layout, workload)
    }

    /// Builds a simulation from an already-compiled kernel (e.g. a
    /// [`crate::KernelCache`] entry), allocating storage for the
    /// workload. The kernel clone is cheap: compiled programs and LUTs
    /// are shared behind `Arc`.
    pub fn with_kernel(kernel: Kernel, layout: StateLayout, workload: &Workload) -> Simulation {
        let state = kernel.new_states(workload.n_cells, layout);
        let ext = kernel.new_ext(workload.n_cells);
        let vm_index = kernel.info().ext_names.iter().position(|n| n == "Vm");
        let iion_index = kernel.info().ext_names.iter().position(|n| n == "Iion");
        let mut sim = Simulation {
            kernel,
            state,
            ext,
            vm_index,
            iion_index,
            stim: Stimulus::default(),
            dt: workload.dt,
            t: 0.0,
            tissue: None,
            guard: None,
            native: None,
            native_ctl: None,
            cancel: None,
        };
        if crate::native::promotion_enabled() {
            sim.arm_native(crate::native::promotion_threshold());
        }
        sim
    }

    /// Builds a *guarded* simulation: compiles through the cache's
    /// degradation-aware lookup (falling back to the reference pipeline
    /// if the requested one fails), and arms per-step health checks with
    /// the given policy — use [`Simulation::step_guarded`] /
    /// [`Simulation::run_guarded`] to step it. Compile-time incidents are
    /// carried over into [`Simulation::incidents`].
    ///
    /// # Errors
    ///
    /// Returns the quarantine entry when even the reference pipeline
    /// fails to compile.
    pub fn new_resilient(
        model: &Model,
        config: PipelineKind,
        workload: &Workload,
        policy: crate::HealthPolicy,
    ) -> Result<Simulation, std::sync::Arc<crate::QuarantineEntry>> {
        let rk = crate::KernelCache::global().get_or_compile_resilient(model, config)?;
        let mut sim = Simulation::with_kernel(rk.kernel().clone(), rk.entry.layout(), workload);
        let nan_plan = crate::faults::take(crate::FaultKind::StateNan)
            .map(|seed| (crate::faults::nan_step(seed), seed));
        sim.guard = Some(Box::new(GuardState {
            policy,
            model: model.clone(),
            entry: rk.entry,
            tier: rk.tier,
            step_count: 0,
            incidents: rk.incidents,
            nan_plan,
        }));
        Ok(sim)
    }

    /// Replaces the stimulus protocol.
    pub fn set_stimulus(&mut self, stim: Stimulus) {
        self.stim = stim;
    }

    /// Attaches a cooperative [`crate::CancelToken`]: every
    /// [`Simulation::step_guarded`] / [`Simulation::run_guarded`] call
    /// polls it before stepping, and a tripped token stops the run at
    /// that step boundary with a typed
    /// [`crate::IncidentKind::DeadlineExceeded`] incident. Clones of the
    /// token (held by a watchdog, a scheduler, a client) all observe and
    /// control the same latch.
    pub fn set_cancel_token(&mut self, token: crate::CancelToken) {
        self.cancel = Some(token);
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&crate::CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls the attached token; on a trip, records (when guarded) and
    /// returns the typed deadline incident for the *upcoming* step.
    fn check_cancel(&mut self) -> Option<crate::Incident> {
        let cause = self.cancel.as_ref()?.checked()?;
        let tier = self.tier();
        let (model, step) = match self.guard.as_ref() {
            Some(g) => (g.model.name.clone(), g.step_count),
            None => (self.kernel.name().to_string(), 0),
        };
        let incident = crate::Incident::new(
            crate::IncidentKind::DeadlineExceeded,
            model,
            format!("{cause}: stopped cooperatively after {step} completed step(s)"),
        )
        .at_step(step)
        .to_tier(tier);
        if let Some(g) = self.guard.as_mut() {
            g.incidents.push(incident.clone());
        }
        Some(incident)
    }

    /// Enables 1-D monodomain tissue coupling with the given conductivity
    /// (replacing the independent-cell membrane update).
    pub fn enable_tissue(&mut self, sigma: f64) {
        self.tissue = Some(Monodomain::new(self.state.n_cells(), sigma, 1.0, self.dt));
    }

    /// The compiled kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Current simulation time (ms).
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Reads the membrane potential of a cell.
    pub fn vm(&self, cell: usize) -> f64 {
        self.vm_index.map_or(0.0, |i| self.ext.get(cell, i))
    }

    /// Reads the ionic current of a cell.
    pub fn iion(&self, cell: usize) -> f64 {
        self.iion_index.map_or(0.0, |i| self.ext.get(cell, i))
    }

    /// Reads a state variable by name.
    pub fn state_of(&self, cell: usize, var: &str) -> Option<f64> {
        let idx = self
            .kernel
            .info()
            .state_names
            .iter()
            .position(|n| n == var)?;
        Some(self.state.get(cell, idx))
    }

    /// Guarded steps completed so far — the guard's own step counter,
    /// which survives a snapshot/restore round-trip. This is the count a
    /// checkpoint must record: a deadline can stop a chunk early, so a
    /// caller's chunk-granular tally may overstate what actually ran.
    /// Returns 0 for unguarded simulations.
    pub fn guarded_steps(&self) -> usize {
        self.guard.as_ref().map_or(0, |g| g.step_count)
    }

    /// Bit pattern of every logical cell's full visible state — each
    /// state variable, then every external (`Vm`, `Iion`, …) — in cell
    /// order. Two runs are bit-identical iff their vectors are equal;
    /// this is the payload of the real-thread differential gate (compare
    /// a `ShardedSimulation::state_bits` against a single-thread run's).
    pub fn state_bits(&self) -> Vec<u64> {
        let n_state = self.kernel.info().state_names.len();
        let n_ext = self.kernel.info().ext_names.len();
        let mut bits = Vec::with_capacity(self.n_cells() * (n_state + n_ext));
        for cell in 0..self.n_cells() {
            for var in 0..n_state {
                bits.push(self.state.get(cell, var).to_bits());
            }
            for ext in 0..n_ext {
                bits.push(self.ext.get(cell, ext).to_bits());
            }
        }
        bits
    }

    /// Captures everything needed to continue this run bit-identically
    /// in a [`crate::checkpoint::Snapshot`]: the logical state bits, the
    /// sim clock, the executing tier, the kernel's executed-step counter,
    /// and any pending seeded-fault plan. `config_label` is the pipeline
    /// label the simulation was built under (the sim does not retain it);
    /// `steps_done` is the caller's completed-step count, echoed back by
    /// resume so chunk loops can continue where they stopped.
    ///
    /// Call at a step boundary only — mid-step there is no coherent
    /// state to capture (guarded stepping already lands cancellation at
    /// boundaries, so every natural snapshot point qualifies).
    pub fn snapshot(&self, config_label: &str, steps_done: u64) -> crate::checkpoint::Snapshot {
        let model = self
            .guard
            .as_ref()
            .map_or_else(|| self.kernel.name().to_string(), |g| g.model.name.clone());
        crate::checkpoint::Snapshot {
            model,
            config: config_label.to_string(),
            n_cells: self.n_cells(),
            dt_bits: self.dt.to_bits(),
            t_bits: self.t.to_bits(),
            steps_done,
            tier: self.tier().to_string(),
            executed_steps: self.kernel.executed_steps(),
            nan_plan: self
                .guard
                .as_ref()
                .and_then(|g| g.nan_plan)
                .map(|(step, seed)| (step as u64, seed)),
            shards: Vec::new(),
            meta: None,
            state: self.state_bits(),
        }
    }

    /// Writes a flat run of logical-cell bits (the [`Simulation::state_bits`]
    /// layout) into this simulation's storage. The shard-level restore
    /// primitive: key validation and counter restore live in
    /// [`Simulation::restore`]; sharded resume slices one snapshot across
    /// shards with this.
    ///
    /// # Errors
    ///
    /// Returns a description when `bits` is not exactly
    /// `n_cells * (n_state + n_ext)` values.
    pub fn restore_cells(&mut self, bits: &[u64]) -> Result<(), String> {
        let n_state = self.kernel.info().state_names.len();
        let n_ext = self.kernel.info().ext_names.len();
        let expect = self.n_cells() * (n_state + n_ext);
        if bits.len() != expect {
            return Err(format!(
                "snapshot carries {} state values, this simulation needs {expect}",
                bits.len()
            ));
        }
        let mut it = bits.iter();
        for cell in 0..self.n_cells() {
            for var in 0..n_state {
                self.state
                    .set(cell, var, f64::from_bits(*it.next().unwrap()));
            }
            for ext in 0..n_ext {
                self.ext.set(cell, ext, f64::from_bits(*it.next().unwrap()));
            }
        }
        Ok(())
    }

    /// Restores a snapshot into this (freshly built) simulation: state
    /// bits, sim clock, guard step counter, pending fault plan, and the
    /// kernel's executed-step floor. When the snapshot was executing on
    /// [`crate::Tier::Native`], re-promotion is attempted best-effort —
    /// on failure the run continues on bytecode, which is bit-identical
    /// by construction, so the trajectory is unaffected either way.
    /// Snapshots taken below [`crate::Tier::Optimized`] likewise resume
    /// on the optimized tier (all tiers compute identical bits; the
    /// ladder re-descends only if the original fault recurs).
    ///
    /// # Errors
    ///
    /// Returns a description when the snapshot's shape does not match
    /// this simulation (wrong cell count or state width).
    pub fn restore(&mut self, snap: &crate::checkpoint::Snapshot) -> Result<(), String> {
        if snap.n_cells != self.n_cells() {
            return Err(format!(
                "snapshot has {} cells, this simulation has {}",
                snap.n_cells,
                self.n_cells()
            ));
        }
        self.restore_cells(&snap.state)?;
        self.t = f64::from_bits(snap.t_bits);
        self.kernel.restore_executed_steps(snap.executed_steps);
        if let Some(g) = self.guard.as_mut() {
            g.step_count = snap.steps_done as usize;
            g.nan_plan = snap.nan_plan.map(|(step, seed)| (step as usize, seed));
        }
        if snap.tier == crate::Tier::Native.to_string() && self.native.is_none() {
            // Best-effort: a missing toolchain or quarantined build just
            // means the resumed run re-earns native later (or never) —
            // the bits are the same either way.
            let _ = self.promote_native_blocking(crate::KernelCache::global());
        }
        Ok(())
    }

    /// Builds a guarded simulation and restores `snap` into it — the
    /// one-call resume path. The snapshot's key echo (model, config,
    /// cell count, dt bits) must match what is being built; a mismatch
    /// is an error, never a silently different trajectory.
    ///
    /// # Errors
    ///
    /// Returns a description on key mismatch, compile failure, or shape
    /// mismatch.
    pub fn resume_from(
        model: &Model,
        config: PipelineKind,
        workload: &Workload,
        policy: crate::HealthPolicy,
        snap: &crate::checkpoint::Snapshot,
    ) -> Result<Simulation, String> {
        snap.key_matches(&model.name, &config.label(), workload.n_cells, workload.dt)?;
        let mut sim = Simulation::new_resilient(model, config, workload, policy)
            .map_err(|q| format!("resume compile failed: {}", q.error))?;
        sim.restore(snap)?;
        Ok(sim)
    }

    /// Applies a voltage perturbation to one cell (e.g. a local stimulus
    /// in tissue runs).
    pub fn perturb_vm(&mut self, cell: usize, delta: f64) {
        if let Some(i) = self.vm_index {
            let v = self.ext.get(cell, i);
            self.ext.set(cell, i, v + delta);
        }
    }

    /// Advances one step: compute stage, then membrane/tissue update.
    ///
    /// When a validated native kernel has been hot-swapped in
    /// ([`crate::Tier::Native`]), the compute stage runs through it;
    /// the native code is bit-identical to the bytecode tier by
    /// construction (emitted from the same `Program`, probated before
    /// the swap), so trajectories are unchanged.
    pub fn step(&mut self) {
        let ctx = SimContext {
            dt: self.dt,
            t: self.t,
        };
        if let Some(native) = &self.native {
            native.run_step(
                &mut self.state,
                &mut self.ext,
                self.kernel.param_values(),
                ctx,
            );
        } else {
            self.kernel
                .run_step(&mut self.state, &mut self.ext, None, ctx);
            if self.native_ctl.is_some() {
                self.maybe_promote_native();
            }
        }
        self.update_vm();
        self.t += self.dt;
    }

    /// Arms native-tier promotion on this simulation: once the kernel's
    /// executed-step counter crosses `threshold`, a background build is
    /// requested through the process-wide [`crate::KernelCache`]'s
    /// native registry, and the resulting kernel is hot-swapped in at a
    /// step boundary once it passes probation. Returns whether the
    /// simulation is eligible (native is width-1 AoS only) and armed.
    pub fn arm_native(&mut self, threshold: u64) -> bool {
        if self.native.is_some() || self.native_ctl.is_some() {
            return true;
        }
        if !crate::native::native_eligible(&self.kernel, self.state.layout()) {
            return false;
        }
        let Ok((fingerprint, source)) = crate::native::emit_for_kernel(&self.kernel) else {
            return false;
        };
        self.native_ctl = Some(Box::new(NativeCtl {
            fingerprint,
            source,
            threshold: threshold.max(1),
            ticks: 0,
            requested: false,
        }));
        true
    }

    /// The amortized promotion poll: every 16th step, check the
    /// executed-step counter against the threshold (filing the build
    /// request on crossing) and then the registry slot (hot-swapping on
    /// `Ready`, disarming on `Quarantined` — the registry has already
    /// recorded the incident and the slot stays quarantined for the
    /// process lifetime, so this simulation simply stays on bytecode).
    fn maybe_promote_native(&mut self) {
        let Some(ctl) = self.native_ctl.as_mut() else {
            return;
        };
        ctl.ticks += 1;
        if ctl.ticks & 0xF != 0 {
            return;
        }
        let cache = crate::KernelCache::global();
        if !ctl.requested {
            if self.kernel.executed_steps() < ctl.threshold {
                return;
            }
            let req = crate::native::NativeRequest {
                fingerprint: ctl.fingerprint,
                source: std::mem::take(&mut ctl.source),
                model: self.kernel.name().to_string(),
                kernel: self.kernel.clone(),
                disk: cache.disk_cache(),
            };
            cache.native_registry().request(req);
            ctl.requested = true;
            return;
        }
        match cache.native_registry().poll(ctl.fingerprint) {
            Some(crate::native::NativeSlot::Ready(native)) => self.adopt_native(native),
            Some(crate::native::NativeSlot::Pending) => {}
            Some(crate::native::NativeSlot::Quarantined(_)) | None => {
                self.native_ctl = None;
            }
        }
    }

    /// Hot-swaps a validated native kernel in at a step boundary.
    fn adopt_native(&mut self, native: std::sync::Arc<crate::native::NativeKernel>) {
        self.native_ctl = None;
        self.native = Some(native);
        if let Some(g) = self.guard.as_mut() {
            g.incidents.push(
                crate::Incident::new(
                    crate::IncidentKind::NativePromoted,
                    &g.model.name,
                    "hot-swapped validated native kernel at step boundary",
                )
                .at_step(g.step_count)
                .to_tier(crate::Tier::Native),
            );
            g.tier = crate::Tier::Native;
        }
    }

    /// Drives native promotion synchronously through `cache`: emits C
    /// for the kernel, compiles it (or loads the shared object from the
    /// disk cache), probates it, and hot-swaps it in before returning.
    /// The deterministic counterpart of the background promotion path,
    /// for benches and differential tests.
    ///
    /// # Errors
    ///
    /// Returns the quarantine reason (toolchain missing, compile or
    /// load failure, probation divergence) or the eligibility failure;
    /// the simulation keeps running on bytecode in every such case.
    pub fn promote_native_blocking(&mut self, cache: &crate::KernelCache) -> Result<(), String> {
        if self.native.is_some() {
            return Ok(());
        }
        if !crate::native::native_eligible(&self.kernel, self.state.layout()) {
            return Err("not eligible: native tier is width-1 AoS only".into());
        }
        let slot = crate::native::build_blocking(
            cache.native_registry(),
            &self.kernel,
            self.kernel.name(),
            cache.disk_cache(),
        )?;
        match slot {
            crate::native::NativeSlot::Ready(native) => {
                self.adopt_native(native);
                Ok(())
            }
            crate::native::NativeSlot::Quarantined(reason) => Err(reason.to_string()),
            crate::native::NativeSlot::Pending => {
                Err("native build already in flight for this fingerprint".into())
            }
        }
    }

    /// Advances one step over `[lo, hi)` cells only (compute stage), used
    /// by the threaded driver; the membrane update must be applied
    /// separately with [`Simulation::update_vm`].
    pub fn step_range(&mut self, lo: usize, hi: usize) {
        let ctx = SimContext {
            dt: self.dt,
            t: self.t,
        };
        self.kernel
            .run_range(&mut self.state, &mut self.ext, None, ctx, lo, hi);
    }

    /// The membrane / tissue stage of a step.
    pub fn update_vm(&mut self) {
        let (Some(vm_i), Some(ii_i)) = (self.vm_index, self.iion_index) else {
            return;
        };
        let stim = self.stim.at(self.t);
        let dt = self.dt;
        match &mut self.tissue {
            None => {
                let n = self.ext.n_cells();
                for cell in 0..n {
                    let v = self.ext.get(cell, vm_i);
                    let i = self.ext.get(cell, ii_i);
                    self.ext.set(cell, vm_i, v + dt * (-i + stim));
                }
            }
            Some(md) => {
                let n = md.n_cells();
                let mut vm: Vec<f64> = (0..n).map(|c| self.ext.get(c, vm_i)).collect();
                let iion: Vec<f64> = (0..n).map(|c| self.ext.get(c, ii_i)).collect();
                // Reaction: explicit Iion + stimulus; diffusion: implicit.
                for (v, i) in vm.iter_mut().zip(&iion) {
                    *v += dt * (-i + stim);
                }
                md.step(&mut vm, &iion).expect("monodomain solve failed");
                for (c, v) in vm.iter().enumerate() {
                    self.ext.set(c, vm_i, *v);
                }
            }
        }
    }

    /// Advances the clock without computing (used by the threaded driver,
    /// which sequences the stages itself).
    pub fn advance_time(&mut self) {
        self.t += self.dt;
    }

    /// The logical cell count of this simulation.
    pub fn n_cells(&self) -> usize {
        self.state.n_cells()
    }

    /// The padded cell count of the state storage (a multiple of the
    /// kernel chunk width).
    pub fn padded_cells(&self) -> usize {
        self.state.padded_cells()
    }

    /// Runs `steps` steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// The tier of the degradation ladder this simulation is executing
    /// on. Unguarded simulations report [`crate::Tier::Optimized`]
    /// (or [`crate::Tier::Native`] after promotion).
    pub fn tier(&self) -> crate::Tier {
        if self.native.is_some() {
            return crate::Tier::Native;
        }
        self.guard
            .as_ref()
            .map_or(crate::Tier::Optimized, |g| g.tier)
    }

    /// Every incident this simulation has recorded — compile-time
    /// fallbacks inherited from the cache lookup plus runtime health
    /// events — in order. The compile-time counterpart of the pass
    /// report: where [`crate::CompiledKernel::pass_report`] says what the
    /// compiler did, this says what went wrong and how it was absorbed.
    pub fn incidents(&self) -> &[crate::Incident] {
        self.guard.as_ref().map_or(&[], |g| &g.incidents)
    }

    /// Advances one step under the health guard: runs [`Simulation::step`],
    /// then scans the logical cells' state and externals for non-finite
    /// values and applies the configured [`crate::HealthPolicy`].
    ///
    /// On an unguarded simulation this is plain [`Simulation::step`].
    ///
    /// # Errors
    ///
    /// Returns the recorded incident when the policy is
    /// [`crate::HealthPolicy::Abort`], when every tier below the
    /// current one has been exhausted under
    /// [`crate::HealthPolicy::FallbackRaw`], or when an attached
    /// [`crate::CancelToken`] has tripped (deadline or explicit cancel)
    /// — in that last case the step is *not* taken, so the state is
    /// whole up to the previous boundary.
    pub fn step_guarded(&mut self) -> Result<(), crate::Incident> {
        use crate::{HealthPolicy, Incident, IncidentKind};
        if let Some(incident) = self.check_cancel() {
            return Err(incident);
        }
        let Some(mut g) = self.guard.take() else {
            self.step();
            return Ok(());
        };
        // Snapshot for rollback/clamping; Abort never restores.
        let snapshot = if g.policy == HealthPolicy::Abort {
            None
        } else {
            Some((self.state.clone(), self.ext.clone(), self.t))
        };
        self.step();
        g.step_count += 1;
        // Deterministic fault injection: a seeded NaN "blow-up" at the
        // planned step, written into one cell's membrane potential.
        if let Some((step, seed)) = g.nan_plan {
            if step == g.step_count {
                g.nan_plan = None;
                let cell = seed as usize % self.n_cells();
                if let Some(vm_i) = self.vm_index {
                    self.ext.set(cell, vm_i, f64::NAN);
                } else {
                    self.state.set(cell, 0, f64::NAN);
                }
            }
        }
        if self.all_finite() {
            self.guard = Some(g);
            return Ok(());
        }
        let result = match g.policy {
            HealthPolicy::Abort => {
                let incident = Incident::new(
                    IncidentKind::NonFiniteState,
                    &g.model.name,
                    "non-finite value in cell state; aborting (policy abort)",
                )
                .at_step(g.step_count)
                .to_tier(g.tier);
                g.incidents.push(incident.clone());
                Err(incident)
            }
            HealthPolicy::ClampAndWarn => {
                let (state, ext, _) = snapshot.as_ref().expect("snapshot taken for clamping");
                let clamped = self.restore_non_finite(state, ext);
                let incident = Incident::new(
                    IncidentKind::NonFiniteState,
                    &g.model.name,
                    format!("{clamped} non-finite value(s) reset to pre-step values (policy clamp-and-warn)"),
                )
                .at_step(g.step_count)
                .to_tier(g.tier);
                g.incidents.push(incident);
                Ok(())
            }
            HealthPolicy::FallbackRaw => {
                let (state, ext, t) = snapshot.expect("snapshot taken for fallback");
                self.fall_back_and_retry(&mut g, state, ext, t)
            }
        };
        self.guard = Some(g);
        result
    }

    /// Rolls the step back and retries it on successively lower tiers
    /// until the state comes out finite or the ladder is exhausted.
    fn fall_back_and_retry(
        &mut self,
        g: &mut GuardState,
        state: CellStates,
        ext: ExtArrays,
        t: f64,
    ) -> Result<(), crate::Incident> {
        use crate::{Incident, IncidentKind, Tier};
        let failed_step = g.step_count;
        self.state = state;
        self.ext = ext;
        self.t = t;
        g.step_count -= 1;
        g.incidents.push(
            Incident::new(
                IncidentKind::NonFiniteState,
                &g.model.name,
                "non-finite value in cell state; rolled back one step",
            )
            .at_step(failed_step)
            .to_tier(g.tier),
        );
        loop {
            let Some(next) = g.tier.next_down() else {
                let incident = Incident::new(
                    IncidentKind::NonFiniteState,
                    &g.model.name,
                    "non-finite state persists on the reference tier; giving up",
                )
                .at_step(failed_step)
                .to_tier(g.tier);
                g.incidents.push(incident.clone());
                return Err(incident);
            };
            // Adopt the lower tier's kernel, carrying the rolled-back
            // per-cell values across (layouts may differ).
            match next {
                Tier::Raw => {
                    self.adopt_kernel(g.entry.raw_kernel().clone(), g.entry.layout());
                }
                Tier::Reference => {
                    let entry = match crate::KernelCache::global()
                        .try_get_or_compile(&g.model, PipelineKind::Baseline)
                    {
                        Ok(entry) => entry,
                        Err(q) => {
                            let incident = Incident::new(
                                IncidentKind::NonFiniteState,
                                &g.model.name,
                                format!("reference pipeline unavailable: {}", q.error),
                            )
                            .at_step(failed_step)
                            .to_tier(g.tier);
                            g.incidents.push(incident.clone());
                            return Err(incident);
                        }
                    };
                    // The raw program of the reference entry: the most
                    // conservative executable we have.
                    self.adopt_kernel(entry.raw_kernel().clone(), entry.layout());
                    g.entry = entry;
                }
                Tier::Optimized => {
                    // Falling off the native tier: drop the native code
                    // and resume on the bytecode kernel it was compiled
                    // from (same compilation, same arithmetic).
                    self.native = None;
                    self.adopt_kernel(g.entry.kernel().clone(), g.entry.layout());
                }
                Tier::Native => unreachable!("native is entered by promotion, never by descent"),
            }
            g.tier = next;
            g.incidents.push(
                Incident::new(
                    IncidentKind::TierFallback,
                    &g.model.name,
                    format!("retrying step {failed_step} on tier {next}"),
                )
                .at_step(failed_step)
                .to_tier(next),
            );
            let snapshot = (self.state.clone(), self.ext.clone(), self.t);
            self.step();
            g.step_count += 1;
            if self.all_finite() {
                return Ok(());
            }
            // Still bad: roll back again and descend further.
            self.state = snapshot.0;
            self.ext = snapshot.1;
            self.t = snapshot.2;
            g.step_count -= 1;
            g.incidents.push(
                Incident::new(
                    IncidentKind::NonFiniteState,
                    &g.model.name,
                    format!("non-finite state persists on tier {next}; rolled back again"),
                )
                .at_step(failed_step)
                .to_tier(next),
            );
        }
    }

    /// Runs `steps` guarded steps, stopping at the first unrecoverable
    /// incident.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Simulation::step_guarded`] error.
    pub fn run_guarded(&mut self, steps: usize) -> Result<(), crate::Incident> {
        for _ in 0..steps {
            self.step_guarded()?;
        }
        Ok(())
    }

    /// True when every logical cell's state variables and externals are
    /// finite.
    fn all_finite(&self) -> bool {
        let n = self.n_cells();
        let n_state = self.kernel.info().state_names.len();
        let n_ext = self.kernel.info().ext_names.len();
        (0..n).all(|cell| {
            (0..n_state).all(|v| self.state.get(cell, v).is_finite())
                && (0..n_ext).all(|v| self.ext.get(cell, v).is_finite())
        })
    }

    /// Overwrites every non-finite entry with its value from the
    /// snapshot, returning how many entries were restored.
    fn restore_non_finite(&mut self, state: &CellStates, ext: &ExtArrays) -> usize {
        let n = self.n_cells();
        let n_state = self.kernel.info().state_names.len();
        let n_ext = self.kernel.info().ext_names.len();
        let mut restored = 0;
        for cell in 0..n {
            for v in 0..n_state {
                if !self.state.get(cell, v).is_finite() {
                    self.state.set(cell, v, state.get(cell, v));
                    restored += 1;
                }
            }
            for v in 0..n_ext {
                if !self.ext.get(cell, v).is_finite() {
                    self.ext.set(cell, v, ext.get(cell, v));
                    restored += 1;
                }
            }
        }
        restored
    }

    /// Swaps in a different compiled kernel mid-run, migrating the
    /// logical cells' state and external values into storage shaped for
    /// the new kernel (layout and padding may differ).
    fn adopt_kernel(&mut self, kernel: Kernel, layout: StateLayout) {
        let n = self.n_cells();
        let mut state = kernel.new_states(n, layout);
        let mut ext = kernel.new_ext(n);
        let n_state = kernel.info().state_names.len();
        let n_ext = kernel.info().ext_names.len();
        for cell in 0..n {
            for v in 0..n_state {
                state.set(cell, v, self.state.get(cell, v));
            }
            for v in 0..n_ext {
                ext.set(cell, v, self.ext.get(cell, v));
            }
        }
        self.kernel = kernel;
        self.state = state;
        self.ext = ext;
    }

    /// Runs one step with operation counting (for the roofline model).
    pub fn step_profiled(&mut self) -> Profile {
        let ctx = SimContext {
            dt: self.dt,
            t: self.t,
        };
        let p = self
            .kernel
            .run_step_profiled(&mut self.state, &mut self.ext, None, ctx);
        self.update_vm();
        self.t += self.dt;
        p
    }
}

/// Per-class default workloads: larger models get the same cell count but
/// their kernels are intrinsically more expensive, mirroring the paper's
/// fixed 8192-cell workload.
pub fn class_workload(_class: SizeClass, n_cells: usize, steps: usize) -> Workload {
    Workload {
        n_cells,
        steps,
        dt: 0.01,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_models::model;

    #[test]
    fn hodgkin_huxley_fires_action_potential() {
        let m = model("HodgkinHuxley");
        let wl = Workload {
            n_cells: 8,
            steps: 0,
            dt: 0.01,
        };
        let mut sim = Simulation::new(&m, PipelineKind::Baseline, &wl);
        sim.set_stimulus(Stimulus {
            period: 50.0,
            duration: 1.0,
            amplitude: 80.0,
        });
        let mut peak = f64::MIN;
        for _ in 0..4000 {
            sim.step();
            peak = peak.max(sim.vm(0));
        }
        // An HH action potential overshoots above +10 mV.
        assert!(peak > 10.0, "no action potential: peak {peak}");
        // And repolarizes back below -50 mV.
        assert!(sim.vm(0) < -50.0, "did not repolarize: {}", sim.vm(0));
    }

    #[test]
    fn baseline_and_mlir_trajectories_agree() {
        let m = model("BeelerReuter");
        let wl = Workload {
            n_cells: 16,
            steps: 0,
            dt: 0.01,
        };
        let mut a = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let mut b = Simulation::new(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), &wl);
        for _ in 0..2000 {
            a.step();
            b.step();
        }
        let (va, vb) = (a.vm(3), b.vm(3));
        assert!(
            (va - vb).abs() < 1e-4 * va.abs().max(1.0),
            "trajectories diverged: {va} vs {vb}"
        );
    }

    #[test]
    fn tissue_propagates_excitation() {
        let m = model("MitchellSchaeffer");
        let wl = Workload {
            n_cells: 64,
            steps: 0,
            dt: 0.05,
        };
        let mut sim = Simulation::new(&m, PipelineKind::Baseline, &wl);
        sim.set_stimulus(Stimulus {
            period: 1e9,
            duration: 0.0,
            amplitude: 0.0,
        });
        sim.enable_tissue(0.5);
        // Excite the left end only.
        for c in 0..4 {
            sim.perturb_vm(c, 40.0);
        }
        let mut reached = false;
        for _ in 0..20000 {
            sim.step();
            if sim.vm(32) > 30.0 {
                reached = true;
                break;
            }
        }
        assert!(reached, "wave did not propagate to mid-cable");
    }

    #[test]
    fn profiled_step_reports_work() {
        let m = model("Pathmanathan");
        let wl = Workload {
            n_cells: 32,
            steps: 0,
            dt: 0.01,
        };
        let mut sim = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let p = sim.step_profiled();
        assert!(p.flops > 0);
        assert!(p.bytes_read > 0);
        assert!(p.bytes_written > 0);
    }

    #[test]
    fn cancel_token_stops_guarded_run_at_step_boundary() {
        let m = model("HodgkinHuxley");
        let wl = Workload {
            n_cells: 4,
            steps: 0,
            dt: 0.01,
        };
        let mut sim =
            Simulation::new_resilient(&m, PipelineKind::Baseline, &wl, crate::HealthPolicy::Abort)
                .expect("baseline compiles");
        let token = crate::CancelToken::new();
        sim.set_cancel_token(token.clone());
        sim.run_guarded(10).expect("live token does not interfere");
        let bits = sim.state_bits();
        token.cancel();
        let err = sim
            .run_guarded(10)
            .expect_err("tripped token stops the run");
        assert_eq!(err.kind, crate::IncidentKind::DeadlineExceeded);
        assert_eq!(err.step, Some(10), "cancellation lands at the boundary");
        assert_eq!(
            sim.state_bits(),
            bits,
            "no step ran after the trip: state is whole"
        );
        assert!(
            sim.incidents()
                .iter()
                .any(|i| i.kind == crate::IncidentKind::DeadlineExceeded),
            "incident recorded on the guard"
        );
    }

    #[test]
    fn expired_deadline_stops_even_unguarded_runs() {
        let m = model("HodgkinHuxley");
        let wl = Workload {
            n_cells: 4,
            steps: 0,
            dt: 0.01,
        };
        let mut sim = Simulation::new(&m, PipelineKind::Baseline, &wl);
        sim.set_cancel_token(crate::CancelToken::with_budget(std::time::Duration::ZERO));
        let err = sim.run_guarded(5).expect_err("expired budget");
        assert_eq!(err.kind, crate::IncidentKind::DeadlineExceeded);
        assert!(err.detail.contains("deadline-exceeded"), "{}", err.detail);
    }

    #[test]
    fn all_pipeline_kinds_run_on_a_roster_model() {
        let m = model("DrouhardRoberge");
        let wl = Workload {
            n_cells: 16,
            steps: 10,
            dt: 0.01,
        };
        for kind in [
            PipelineKind::Baseline,
            PipelineKind::LimpetMlir(VectorIsa::Sse),
            PipelineKind::LimpetMlir(VectorIsa::Avx2),
            PipelineKind::LimpetMlir(VectorIsa::Avx512),
            PipelineKind::LimpetMlirAos(VectorIsa::Avx512),
            PipelineKind::LimpetMlirNoLut(VectorIsa::Avx512),
            PipelineKind::CompilerSimd(VectorIsa::Avx512),
        ] {
            let mut sim = Simulation::new(&m, kind, &wl);
            sim.run(wl.steps);
            assert!(sim.vm(0).is_finite(), "{:?} produced NaN", kind);
        }
    }
}
