//! Crash-recovery integration test: run the real `limpet-serve` binary,
//! `kill -9` it with a job mid-run, restart it over the same journal,
//! and assert the resumed job completes with a trajectory digest
//! bit-identical to an uninterrupted in-process run.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use limpet_harness::{trajectory_digest, PipelineKind, Workload};
use serve::Json;

/// Kills the child on drop so a panicking assertion never leaks a
/// daemon process.
struct Daemon {
    child: Child,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(socket: &Path, journal: &Path, cache: &Path, workers: usize) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_limpet-serve"))
        .args([
            "--unix",
            &socket.display().to_string(),
            "--journal",
            &journal.display().to_string(),
            "--cache-dir",
            &cache.display().to_string(),
            "--workers",
            &workers.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn limpet-serve");
    // Wait for the readiness line before connecting.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let ready = lines.next().expect("daemon printed a line").unwrap();
    assert!(ready.starts_with("listening on"), "unexpected: {ready}");
    // Keep draining stdout in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    Daemon { child }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(socket: &Path) -> Client {
        let deadline = Instant::now() + Duration::from_secs(30);
        let stream = loop {
            match UnixStream::connect(socket) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("connect {}: {e}", socket.display()),
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read event");
        assert!(n > 0, "connection closed unexpectedly");
        Json::parse(line.trim()).expect("event is valid JSON")
    }

    fn recv_until(&mut self, event: &str) -> Json {
        loop {
            let v = self.recv();
            if v.get("event").and_then(Json::as_str) == Some(event) {
                return v;
            }
        }
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("limpet-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_daemon_resumes_jobs_with_identical_digests() {
    let dir = tmp_dir("resume");
    let socket = dir.join("serve.sock");
    let journal = dir.join("jobs.journal");
    let cache = dir.join("cache");

    let cells = 16;
    let steps = 20_000;
    let wl = Workload {
        n_cells: cells,
        steps,
        dt: 0.01,
    };
    // The ground truth: an uninterrupted single-process run.
    let model = limpet_models::model("HodgkinHuxley");
    let expected = trajectory_digest(&model, PipelineKind::Baseline, &wl, steps)
        .expect("healthy model digests");
    let expected = format!("{expected:016x}");

    // ---- incarnation 1: stall a job mid-run, then kill -9 ----
    let daemon = spawn_daemon(&socket, &journal, &cache, 2);

    // The victim job streams one event per step and its connection never
    // reads them: the socket buffers fill and the worker blocks mid-run,
    // so the job is deterministically in flight when the kill lands.
    let mut stalled = Client::connect(&socket);
    stalled.send(&format!(
        r#"{{"verb":"submit","id":"victim","tenant":"crash","model":"HodgkinHuxley","config":"baseline","cells":{cells},"steps":{steps},"chunk":1}}"#
    ));
    stalled.recv_until("accepted");

    // A second job on the other worker runs to completion before the
    // kill; its journaled outcome must NOT be re-run on restart.
    let mut fine = Client::connect(&socket);
    fine.send(&format!(
        r#"{{"verb":"submit","id":"finished","tenant":"crash","model":"HodgkinHuxley","config":"baseline","cells":{cells},"steps":{steps},"chunk":{steps}}}"#
    ));
    let done = fine.recv_until("done");
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        done.get("digest").and_then(Json::as_str),
        Some(expected.as_str()),
        "daemon digest matches the single-process driver"
    );

    // Let the victim make progress into its stall, then SIGKILL.
    std::thread::sleep(Duration::from_millis(300));
    drop(daemon); // kill -9 (SIGKILL via Child::kill) + reap

    // ---- incarnation 2: resume over the same journal ----
    let daemon2 = spawn_daemon(&socket, &journal, &cache, 2);
    let mut c = Client::connect(&socket);

    // The resumed job is headless; poll `result` until it lands.
    let deadline = Instant::now() + Duration::from_secs(120);
    let outcome = loop {
        c.send(r#"{"verb":"result","id":"victim"}"#);
        let v = c.recv();
        match v.get("event").and_then(Json::as_str) {
            Some("done") => break v,
            Some("pending") => {
                assert!(Instant::now() < deadline, "resumed job never finished");
                std::thread::sleep(Duration::from_millis(100));
            }
            other => panic!("unexpected result event {other:?}: {v}"),
        }
    };
    assert_eq!(outcome.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        outcome.get("digest").and_then(Json::as_str),
        Some(expected.as_str()),
        "resumed run is bit-identical to the uninterrupted one"
    );

    // Only the unfinished job was resumed.
    c.send(r#"{"verb":"stats"}"#);
    let stats = c.recv();
    let resumed = stats
        .get("jobs")
        .and_then(|j| j.get("resumed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(resumed, 1, "only the victim resumes: {stats}");

    // Graceful shutdown path: the daemon acknowledges and exits cleanly.
    c.send(r#"{"verb":"shutdown"}"#);
    c.recv_until("stopping");
    let mut daemon2 = daemon2;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match daemon2.child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "clean exit, got {status}");
                break;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            None => panic!("daemon did not exit after shutdown verb"),
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
