//! Property tests for the NDJSON wire layer: hostile request lines must
//! never panic the daemon's parser, and malformed input must come back
//! as a typed `Err` (which `dispatch` turns into a typed `error` event),
//! never as a crash or an unbounded allocation.
//!
//! The socket-level counterparts — invalid UTF-8 on the wire, torn
//! frames, byte-at-a-time slow writes — live in `service.rs` where a
//! real daemon is running; these tests attack the codec itself.

use proptest::prelude::*;
use serve::{JobSpec, Json};

/// A representative submit frame, used as the seed for truncation and
/// mutation attacks.
const SUBMIT: &str = r#"{"verb":"submit","id":"j-1","tenant":"alice","model":"HodgkinHuxley","config":"limpetMLIR-avx512","cells":256,"steps":1000,"dt":0.01,"chunk":32,"inject":"verify-fail@7","deadline_ms":30000}"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable soup: parse returns Ok or Err, never panics.
    #[test]
    fn arbitrary_text_never_panics(src in "\\PC{0,300}") {
        if let Ok(v) = Json::parse(&src) {
            // Whatever parsed must survive the spec decoder too.
            let _ = JobSpec::from_json(&v, "fuzz");
            // And print/reparse must round-trip.
            let reparsed = Json::parse(&v.to_string()).expect("printed JSON reparses");
            prop_assert_eq!(reparsed, v);
        }
    }

    /// JSON-flavored token soup: denser coverage of parser state
    /// transitions (nesting, commas, colons) than fully random text.
    #[test]
    fn json_token_soup_never_panics(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just("[".to_owned()),
                Just("]".to_owned()),
                Just(":".to_owned()),
                Just(",".to_owned()),
                Just("\"verb\"".to_owned()),
                Just("\"submit\"".to_owned()),
                Just("\"\\u00".to_owned()),   // truncated unicode escape
                Just("\"\\x\"".to_owned()),   // invalid escape
                Just("null".to_owned()),
                Just("true".to_owned()),
                Just("-1e999".to_owned()),    // overflowing number
                Just("0.01".to_owned()),
                Just("nul".to_owned()),       // truncated keyword
            ],
            0..40,
        )
    ) {
        let src = tokens.concat();
        if let Ok(v) = Json::parse(&src) {
            let _ = JobSpec::from_json(&v, "soup");
        }
    }

    /// Truncation at every prefix length: a torn frame parses to a typed
    /// error (or, for a few lucky cut points, a valid value) — never a
    /// panic, and never a spec with fields the full frame didn't carry.
    #[test]
    fn truncated_submit_frames_never_panic(cut in 0usize..190) {
        let cut = cut.min(SUBMIT.len());
        if let Some(prefix) = SUBMIT.get(..cut) {
            match Json::parse(prefix) {
                Ok(v) => { let _ = JobSpec::from_json(&v, "cut"); }
                Err(e) => prop_assert!(!e.is_empty(), "error must say something"),
            }
        }
    }

    /// Single-byte corruption anywhere in a valid frame.
    #[test]
    fn mutated_submit_frames_never_panic(pos in 0usize..190, byte in 0usize..256) {
        let mut bytes = SUBMIT.as_bytes().to_vec();
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = byte as u8;
        if let Ok(src) = std::str::from_utf8(&bytes) {
            if let Ok(v) = Json::parse(src) {
                let _ = JobSpec::from_json(&v, "mut");
            }
        }
    }

    /// Nesting close to the cap parses; past the cap gets a typed error
    /// (not a stack overflow). The parser's documented limit is 64.
    #[test]
    fn nesting_depth_is_enforced(depth in 1usize..100) {
        let src = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let parsed = Json::parse(&src);
        if depth <= 64 {
            prop_assert!(parsed.is_ok(), "depth {depth} should parse");
        } else {
            prop_assert!(parsed.is_err(), "depth {depth} must be rejected");
        }
    }
}

/// A megabyte of unclosed brackets must come back as a fast typed error,
/// not a stack overflow or minutes of work — the classic depth bomb.
#[test]
fn depth_bomb_fails_fast() {
    let bomb = "[".repeat(1_000_000);
    let started = std::time::Instant::now();
    assert!(Json::parse(&bomb).is_err());
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "depth bomb took {:?}",
        started.elapsed()
    );
    let obj_bomb = "{\"a\":".repeat(200_000);
    assert!(Json::parse(&obj_bomb).is_err());
}

/// Invalid escape sequences and bare control characters inside strings
/// are rejected with typed errors.
#[test]
fn hostile_strings_are_rejected() {
    for bad in [
        "\"\\q\"",     // unknown escape
        "\"\\u12\"",   // short unicode escape
        "\"\\uZZZZ\"", // non-hex unicode escape
        "\"\\ud800\"", // lone surrogate
        "\"abc",       // unterminated
        "\"a\u{0}b\"", // raw NUL in a string
    ] {
        match Json::parse(bad) {
            Ok(v) => {
                // A parser may legitimately accept some of these (e.g.
                // replacement-character surrogates); what it must never
                // do is produce a value that fails to round-trip.
                let reparsed = Json::parse(&v.to_string()).expect("round-trip");
                assert_eq!(reparsed, v, "round-trip drift for {bad:?}");
            }
            Err(e) => assert!(!e.is_empty()),
        }
    }
}
