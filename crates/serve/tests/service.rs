//! In-process integration tests for the service daemon: wire protocol,
//! admission control, and backpressure.
//!
//! These start a real [`serve::Server`] inside the test process (crash
//! recovery, which needs `kill -9`, lives in `crash_recovery.rs` and
//! drives the actual binary). Tests that rely on a stalled reader use a
//! Unix socket: its kernel buffer is a fixed ~200 KiB, so a
//! high-volume chunk stream reliably backs up into the daemon's bounded
//! outbox, whereas TCP auto-tunes its buffers into the megabytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serve::{Json, Listen, QuotaConfig, Server, ServerConfig};

fn unique_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "limpet-serve-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ))
}

/// Starts a daemon; returns where to connect. The server thread is
/// detached — it only exits on process-global shutdown, which these
/// tests never request.
fn start_server(listen: Listen, workers: usize, quotas: QuotaConfig, outbox_cap: usize) -> Listen {
    let server = Server::start(ServerConfig {
        listen,
        workers,
        quotas,
        outbox_cap,
        journal: None,
        cache_dir: None,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_owned();
    let listen = match &server_kind(&addr) {
        Kind::Tcp => Listen::Tcp(addr),
        Kind::Unix => Listen::Unix(PathBuf::from(addr)),
    };
    std::thread::spawn(move || server.serve_forever());
    listen
}

enum Kind {
    Tcp,
    Unix,
}

fn server_kind(addr: &str) -> Kind {
    if addr.contains(':') && !addr.contains('/') {
        Kind::Tcp
    } else {
        Kind::Unix
    }
}

struct Client {
    reader: Box<dyn BufRead>,
    writer: Box<dyn Write>,
}

impl Client {
    fn connect(listen: &Listen) -> Client {
        fn halves<S: Read + Write + 'static>(a: S, b: S) -> (Box<dyn BufRead>, Box<dyn Write>) {
            (Box::new(BufReader::new(a)), Box::new(b))
        }
        let (reader, writer) = match listen {
            Listen::Tcp(addr) => {
                let s = TcpStream::connect(addr).expect("connect tcp");
                s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                halves(s.try_clone().unwrap(), s)
            }
            Listen::Unix(path) => {
                let s = UnixStream::connect(path).expect("connect unix");
                s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                halves(s.try_clone().unwrap(), s)
            }
        };
        Client { reader, writer }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read event");
        assert!(n > 0, "connection closed unexpectedly");
        Json::parse(line.trim()).expect("event is valid JSON")
    }

    /// Reads events until one matches `event`, returning it.
    fn recv_until(&mut self, event: &str) -> Json {
        loop {
            let v = self.recv();
            if v.get("event").and_then(Json::as_str) == Some(event) {
                return v;
            }
        }
    }
}

fn submit_line(id: &str, tenant: &str, cells: usize, steps: usize, chunk: usize) -> String {
    format!(
        r#"{{"verb":"submit","id":"{id}","tenant":"{tenant}","model":"HodgkinHuxley","config":"baseline","cells":{cells},"steps":{steps},"chunk":{chunk}}}"#
    )
}

#[test]
fn ping_health_and_bad_requests() {
    let listen = start_server(
        Listen::Tcp("127.0.0.1:0".into()),
        1,
        QuotaConfig::default(),
        16,
    );
    let mut c = Client::connect(&listen);
    c.send(r#"{"verb":"ping"}"#);
    assert_eq!(c.recv().get("event").and_then(Json::as_str), Some("pong"));
    c.send(r#"{"verb":"health"}"#);
    let h = c.recv();
    assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"));
    c.send("this is not json");
    let e = c.recv();
    assert_eq!(e.get("event").and_then(Json::as_str), Some("error"));
    c.send(r#"{"verb":"warp"}"#);
    let e = c.recv();
    assert_eq!(e.get("event").and_then(Json::as_str), Some("error"));
    // A broken request must not kill the connection.
    c.send(r#"{"verb":"ping"}"#);
    assert_eq!(c.recv().get("event").and_then(Json::as_str), Some("pong"));
}

#[test]
fn submit_streams_chunks_then_done_with_digest() {
    let listen = start_server(
        Listen::Tcp("127.0.0.1:0".into()),
        2,
        QuotaConfig::default(),
        16,
    );
    let mut c = Client::connect(&listen);
    c.send(&submit_line("j1", "alice", 16, 12, 4));
    let accepted = c.recv();
    assert_eq!(
        accepted.get("event").and_then(Json::as_str),
        Some("accepted")
    );
    let mut chunks = 0;
    let done = loop {
        let v = c.recv();
        match v.get("event").and_then(Json::as_str) {
            Some("chunk") => chunks += 1,
            Some("done") => break v,
            other => panic!("unexpected event {other:?}"),
        }
    };
    assert_eq!(chunks, 3, "12 steps / chunk 4");
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    let digest = done
        .get("digest")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    assert_eq!(digest.len(), 16, "16 hex chars: {digest}");
    assert_eq!(done.get("tier").and_then(Json::as_str), Some("optimized"));

    // The result verb replays the outcome after the fact.
    c.send(r#"{"verb":"result","id":"j1"}"#);
    let replay = c.recv();
    assert_eq!(
        replay.get("digest").and_then(Json::as_str),
        Some(digest.as_str())
    );
}

/// A job big enough (in events, not compute) to reliably stall on an
/// unread Unix-socket connection: ~20k chunk events ≈ 2.4 MB, an order
/// of magnitude past the socketpair buffers plus any outbox.
const STALL_STEPS: usize = 20_000;

#[test]
fn over_quota_and_oversized_submissions_get_typed_rejections() {
    let quotas = QuotaConfig {
        max_jobs_per_tenant: 1,
        max_job_cost: 2_000_000,
        max_queue_depth: 8,
    };
    // One worker and a tiny outbox: bob's first job blocks its worker on
    // the unread stream, so it is deterministically still in flight when
    // the follow-up submissions arrive.
    let listen = start_server(Listen::Unix(unique_path("quota.sock")), 1, quotas, 2);
    let mut pinned = Client::connect(&listen);
    pinned.send(&submit_line("big", "bob", 16, STALL_STEPS, 1));
    pinned.recv_until("accepted");
    // Stop reading `pinned`: its outbox fills and the job stalls.
    std::thread::sleep(Duration::from_millis(300));

    // Same tenant, fresh connection: over the per-tenant limit.
    let mut c = Client::connect(&listen);
    c.send(&submit_line("second", "bob", 4, 4, 4));
    let rejected = c.recv_until("rejected");
    assert_eq!(rejected.get("code").and_then(Json::as_u64), Some(429));
    // Another tenant is not affected by bob's quota (the job queues
    // behind the stalled one on the single worker).
    c.send(&submit_line("carol-1", "carol", 4, 4, 4));
    c.recv_until("accepted");
    // An oversized job is 413 regardless of load.
    c.send(&submit_line("huge", "dave", 8192, 1_000_000, 10));
    let rejected = c.recv_until("rejected");
    assert_eq!(rejected.get("code").and_then(Json::as_u64), Some(413));

    // Dropping the pinned connection aborts bob's stalled job, freeing
    // the worker for carol's queued one.
    drop(pinned);
    let done = c.recv_until("done");
    assert_eq!(done.get("id").and_then(Json::as_str), Some("carol-1"));
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
}

#[test]
fn slow_reader_throttles_only_its_own_stream() {
    // Tiny outbox so the slow connection backs up quickly; two workers
    // so both jobs run concurrently.
    let listen = start_server(
        Listen::Unix(unique_path("slow.sock")),
        2,
        QuotaConfig {
            max_job_cost: 2_000_000,
            ..QuotaConfig::default()
        },
        2,
    );

    // Slow client: submits a many-chunk job and then does not read.
    let mut slow = Client::connect(&listen);
    slow.send(&submit_line("slow", "sloth", 16, STALL_STEPS, 1));

    // Give the slow job time to fill its buffers and block its worker.
    std::thread::sleep(Duration::from_millis(300));

    // Fast client: same workload, read eagerly — must finish while the
    // slow job is stalled.
    let started = Instant::now();
    let mut fast = Client::connect(&listen);
    fast.send(&submit_line("fast", "cheetah", 16, STALL_STEPS, 500));
    let done = fast.recv_until("done");
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    let fast_elapsed = started.elapsed();

    // The slow job must still be unfinished: its worker is blocked on
    // the full outbox, not burning steps.
    let mut probe = Client::connect(&listen);
    probe.send(r#"{"verb":"result","id":"slow"}"#);
    let pending = probe.recv();
    assert_eq!(
        pending.get("event").and_then(Json::as_str),
        Some("pending"),
        "slow job should still be stalled after the fast one finished \
         (fast took {fast_elapsed:?})"
    );

    // Once the slow client starts reading, its job completes too — the
    // stream was throttled, not broken — and both digests agree (chunk
    // size does not change the trajectory).
    let slow_done = slow.recv_until("done");
    assert_eq!(slow_done.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        slow_done.get("digest").and_then(Json::as_str),
        done.get("digest").and_then(Json::as_str)
    );
}

/// Hostile bytes on the wire: invalid UTF-8, oversized and torn frames,
/// byte-at-a-time slow writes. Malformed input must produce a typed
/// `error` event (or at worst close that one connection); the daemon
/// itself must keep serving.
#[test]
fn hostile_wire_input_yields_typed_errors_and_daemon_survives() {
    let listen = start_server(
        Listen::Tcp("127.0.0.1:0".into()),
        1,
        QuotaConfig::default(),
        16,
    );
    let addr = match &listen {
        Listen::Tcp(a) => a.clone(),
        Listen::Unix(_) => unreachable!(),
    };

    // Invalid UTF-8 in a framed line: typed error, connection usable.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        s.write_all(b"\xff\xfe not utf8 \xc0\n").unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let e = Json::parse(line.trim()).unwrap();
        assert_eq!(e.get("event").and_then(Json::as_str), Some("error"));
        assert!(e
            .get("reason")
            .and_then(Json::as_str)
            .unwrap()
            .contains("UTF-8"));
        s.write_all(b"{\"verb\":\"ping\"}\n").unwrap();
        line.clear();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("pong"), "connection must survive: {line}");
    }

    // A depth bomb inside one frame: typed error, connection usable.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let bomb = format!("{}\n", "[".repeat(50_000));
        s.write_all(bomb.as_bytes()).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let e = Json::parse(line.trim()).unwrap();
        assert_eq!(e.get("event").and_then(Json::as_str), Some("error"));
        s.write_all(b"{\"verb\":\"ping\"}\n").unwrap();
        line.clear();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("pong"));
    }

    // A frame past the 1 MiB line cap: typed error, then the daemon
    // closes this connection (the frame boundary is untrustworthy).
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let huge = vec![b'x'; (1 << 20) + 4096];
        // The daemon may close mid-write; a send error is acceptable.
        let _ = s.write_all(&huge);
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        if r.read_line(&mut line).is_ok() && !line.is_empty() {
            assert!(line.contains("error"), "got: {line}");
        }
    }

    // Slow-loris: a valid ping written one byte at a time, slower than
    // the daemon's 200ms read timeout ticks. Partial lines accumulate.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        for b in b"{\"verb\":\"ping\"}\n" {
            s.write_all(&[*b]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("pong"), "slow-loris ping answered: {line}");
    }

    // Torn frame then hard close: the daemon must shrug it off.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"{\"verb\":\"sub").unwrap();
        drop(s);
    }

    // After all of the above, a fresh client gets normal service.
    let mut c = Client::connect(&listen);
    c.send(&submit_line("sane", "t", 8, 8, 4));
    let done = c.recv_until("done");
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
}

/// A deliberately wedged worker (non-cooperative hang, injected) must be
/// detected by the watchdog: its job ends with a typed `deadline` event
/// (code 504), a replacement worker is spawned, and the very next job on
/// the same connection succeeds. This is the end-to-end survivability
/// contract of the deadline/watchdog layer.
#[test]
fn wedged_worker_gets_504_and_daemon_keeps_serving() {
    let server = Server::start(ServerConfig {
        listen: Listen::Tcp("127.0.0.1:0".into()),
        workers: 1,
        outbox_cap: 16,
        // Aggressive timings so the test runs in well under a second of
        // watchdog latency: 50ms budget, 60ms reclaim grace.
        default_deadline_ms: Some(50),
        watchdog_ms: Some(60),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let listen = Listen::Tcp(server.local_addr().to_owned());
    std::thread::spawn(move || server.serve_forever());

    let mut c = Client::connect(&listen);
    // The injected hang ignores the cancel token for 5s — only the
    // watchdog can get this worker's slot back.
    c.send(
        r#"{"verb":"submit","id":"wedge","tenant":"t","model":"HodgkinHuxley","config":"baseline","cells":8,"steps":400,"chunk":4,"inject":"worker-hang@5000"}"#,
    );
    c.recv_until("accepted");
    let deadline_event = c.recv_until("deadline");
    assert_eq!(deadline_event.get("code").and_then(Json::as_u64), Some(504));
    assert_eq!(
        deadline_event.get("id").and_then(Json::as_str),
        Some("wedge")
    );
    let done = c.recv_until("done");
    assert_eq!(done.get("id").and_then(Json::as_str), Some("wedge"));
    assert_eq!(done.get("status").and_then(Json::as_str), Some("deadline"));
    assert!(done.get("digest").is_none_or(|d| *d == Json::Null));

    // Same connection, fresh job: the respawned worker serves it. The
    // explicit per-job deadline overrides the aggressive 50ms default so
    // a cold kernel compile cannot trip it.
    c.send(
        r#"{"verb":"submit","id":"after","tenant":"t","model":"HodgkinHuxley","config":"baseline","cells":8,"steps":8,"chunk":4,"deadline_ms":60000}"#,
    );
    c.recv_until("accepted");
    let done = c.recv_until("done");
    assert_eq!(done.get("id").and_then(Json::as_str), Some("after"));
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));

    // The stall is visible to operators in both stats and health.
    c.send(r#"{"verb":"stats"}"#);
    let stats = c.recv_until("stats");
    let surv = stats.get("survivability").expect("survivability in stats");
    assert_eq!(surv.get("watchdog_stalls").and_then(Json::as_u64), Some(1));
    assert_eq!(
        surv.get("workers_respawned").and_then(Json::as_u64),
        Some(1)
    );
    assert!(surv.get("deadlines").and_then(Json::as_u64) >= Some(1));
    c.send(r#"{"verb":"health"}"#);
    let health = c.recv_until("health");
    assert!(health.get("survivability").is_some());
}

#[test]
fn concurrent_tenants_share_one_cache_and_agree_on_digests() {
    let listen = start_server(
        Listen::Tcp("127.0.0.1:0".into()),
        4,
        QuotaConfig::default(),
        32,
    );
    // Two tenants, each submitting the same job shape on its own
    // connection: digests must agree (same deterministic simulation,
    // same shared kernel cache).
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for tenant in ["t-a", "t-b"] {
        let listen = listen.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(&listen);
            barrier.wait();
            for i in 0..2 {
                c.send(&submit_line(&format!("{tenant}-{i}"), tenant, 24, 10, 5));
            }
            let mut digests = Vec::new();
            for _ in 0..2 {
                let done = c.recv_until("done");
                assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
                digests.push(
                    done.get("digest")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_owned(),
                );
            }
            digests
        }));
    }
    let all: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first = &all[0][0];
    for digests in &all {
        for d in digests {
            assert_eq!(d, first, "same job, same digest, every tenant");
        }
    }

    // Stats reflect both tenants.
    let mut c = Client::connect(&listen);
    c.send(r#"{"verb":"stats"}"#);
    let stats = c.recv();
    let tenants = stats.get("tenants").expect("tenants object");
    assert!(tenants.get("t-a").is_some() && tenants.get("t-b").is_some());
    let completed = stats
        .get("jobs")
        .and_then(|j| j.get("completed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(completed >= 4, "completed={completed}");
}
