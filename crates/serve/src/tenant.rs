//! Per-tenant admission control: the quota ledger.
//!
//! Every `submit` passes through [`Ledger::admit`] before any compute is
//! spent. Three typed limits apply, in cheapest-first order, and each
//! maps to an HTTP-flavored rejection code the wire protocol echoes:
//!
//! * **413** — the job itself is too large (`cells × steps` over the
//!   per-job budget); retrying cannot help.
//! * **429** — the tenant already has its maximum number of jobs in
//!   flight; retry after one completes.
//! * **503** — the service-wide admission queue is at depth cap; every
//!   tenant is asked to back off.
//!
//! Admission and release are the only mutation points, so the ledger's
//! invariant is simple: `active` per tenant equals admitted-minus-released,
//! and the service-wide total is the sum over tenants.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::Json;

/// The quota limits one [`Ledger`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Maximum jobs one tenant may have in flight (queued + running).
    pub max_jobs_per_tenant: usize,
    /// Maximum `cells × steps` budget of a single job.
    pub max_job_cost: u64,
    /// Maximum jobs in flight service-wide, across all tenants.
    pub max_queue_depth: usize,
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        QuotaConfig {
            max_jobs_per_tenant: 8,
            max_job_cost: 64 * 1024 * 1024,
            max_queue_depth: 64,
        }
    }
}

/// A typed admission rejection (the `429`-style wire error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// HTTP-flavored status code: 413, 429, or 503.
    pub code: u16,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code, self.reason)
    }
}

/// Monotonic per-tenant counters plus the live in-flight gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Jobs currently in flight (admitted, not yet released).
    pub active: usize,
    /// Jobs ever admitted.
    pub admitted: u64,
    /// Submissions rejected by a quota check.
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that failed or were aborted after admission.
    pub failed: u64,
    /// Total `cells × steps` of completed jobs.
    pub cost_completed: u64,
}

impl TenantUsage {
    /// The usage as a JSON object (for the daemon's `stats` verb).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("active", self.active.into()),
            ("admitted", self.admitted.into()),
            ("rejected", self.rejected.into()),
            ("completed", self.completed.into()),
            ("failed", self.failed.into()),
            ("cost_completed", self.cost_completed.into()),
        ])
    }
}

/// The thread-safe admission ledger.
#[derive(Debug)]
pub struct Ledger {
    cfg: QuotaConfig,
    tenants: Mutex<BTreeMap<String, TenantUsage>>,
}

impl Ledger {
    /// An empty ledger enforcing `cfg`.
    pub fn new(cfg: QuotaConfig) -> Ledger {
        Ledger {
            cfg,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The limits this ledger enforces.
    pub fn config(&self) -> QuotaConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, TenantUsage>> {
        self.tenants.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admits one job of `cost = cells × steps` for `tenant`, or rejects
    /// it with a typed reason. On success the tenant's `active` gauge is
    /// already incremented — the caller owns a slot and must pair this
    /// with exactly one [`Ledger::release`].
    ///
    /// # Errors
    ///
    /// Returns the typed [`Rejection`] (413 job too large, 429 tenant
    /// over quota, 503 service queue full), recorded in the tenant's
    /// `rejected` counter.
    pub fn admit(&self, tenant: &str, cost: u64) -> Result<(), Rejection> {
        let mut tenants = self.lock();
        let total_active: usize = tenants.values().map(|u| u.active).sum();
        let usage = tenants.entry(tenant.to_owned()).or_default();
        let rejection = if cost > self.cfg.max_job_cost {
            Some(Rejection {
                code: 413,
                reason: format!(
                    "job cost {cost} (cells x steps) exceeds the per-job budget {}",
                    self.cfg.max_job_cost
                ),
            })
        } else if usage.active >= self.cfg.max_jobs_per_tenant {
            Some(Rejection {
                code: 429,
                reason: format!(
                    "tenant '{tenant}' already has {} job(s) in flight (limit {})",
                    usage.active, self.cfg.max_jobs_per_tenant
                ),
            })
        } else if total_active >= self.cfg.max_queue_depth {
            Some(Rejection {
                code: 503,
                reason: format!(
                    "service admission queue is full ({total_active} job(s) in flight, cap {})",
                    self.cfg.max_queue_depth
                ),
            })
        } else {
            None
        };
        match rejection {
            Some(r) => {
                usage.rejected += 1;
                Err(r)
            }
            None => {
                usage.active += 1;
                usage.admitted += 1;
                Ok(())
            }
        }
    }

    /// Admits a job recovered from the journal after a daemon restart,
    /// bypassing the quota checks — it was already admitted by the
    /// previous incarnation, and refusing it now would drop accepted
    /// work.
    pub fn admit_resumed(&self, tenant: &str) {
        let mut tenants = self.lock();
        let usage = tenants.entry(tenant.to_owned()).or_default();
        usage.active += 1;
        usage.admitted += 1;
    }

    /// Releases the slot taken by [`Ledger::admit`] /
    /// [`Ledger::admit_resumed`]. `completed` distinguishes a successful
    /// run from a failure/abort; `cost` feeds the completed-work counter.
    pub fn release(&self, tenant: &str, cost: u64, completed: bool) {
        let mut tenants = self.lock();
        let usage = tenants.entry(tenant.to_owned()).or_default();
        usage.active = usage.active.saturating_sub(1);
        if completed {
            usage.completed += 1;
            usage.cost_completed += cost;
        } else {
            usage.failed += 1;
        }
    }

    /// Jobs in flight service-wide.
    pub fn total_active(&self) -> usize {
        self.lock().values().map(|u| u.active).sum()
    }

    /// A snapshot of every tenant's usage, sorted by tenant name.
    pub fn usage(&self) -> Vec<(String, TenantUsage)> {
        self.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Per-tenant usage as a JSON object keyed by tenant name.
    pub fn usage_json(&self) -> Json {
        Json::Obj(
            self.usage()
                .into_iter()
                .map(|(name, u)| (name, u.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> Ledger {
        Ledger::new(QuotaConfig {
            max_jobs_per_tenant: 2,
            max_job_cost: 1000,
            max_queue_depth: 3,
        })
    }

    #[test]
    fn over_quota_tenant_gets_429_and_release_frees_the_slot() {
        let l = ledger();
        l.admit("a", 10).unwrap();
        l.admit("a", 10).unwrap();
        let r = l.admit("a", 10).unwrap_err();
        assert_eq!(r.code, 429);
        assert!(r.reason.contains("'a'"), "{r}");
        // Completion releases the slot; admission works again.
        l.release("a", 10, true);
        l.admit("a", 10).unwrap();
        let u = l.usage();
        assert_eq!(u[0].0, "a");
        assert_eq!(u[0].1.active, 2);
        assert_eq!(u[0].1.admitted, 3);
        assert_eq!(u[0].1.rejected, 1);
        assert_eq!(u[0].1.completed, 1);
        assert_eq!(u[0].1.cost_completed, 10);
    }

    #[test]
    fn oversized_job_gets_413_regardless_of_load() {
        let l = ledger();
        let r = l.admit("fresh", 1001).unwrap_err();
        assert_eq!(r.code, 413);
        assert_eq!(l.total_active(), 0, "no slot was taken");
    }

    #[test]
    fn queue_depth_cap_gets_503_across_tenants() {
        let l = ledger();
        l.admit("a", 1).unwrap();
        l.admit("a", 1).unwrap();
        l.admit("b", 1).unwrap();
        // Tenant c is under its own limit, but the service is full.
        let r = l.admit("c", 1).unwrap_err();
        assert_eq!(r.code, 503);
        l.release("b", 1, false);
        l.admit("c", 1).unwrap();
        assert_eq!(l.total_active(), 3);
    }

    #[test]
    fn resumed_jobs_bypass_quota_but_count_as_active() {
        let l = ledger();
        for _ in 0..5 {
            l.admit_resumed("crashed");
        }
        assert_eq!(l.total_active(), 5, "resume exceeds the live caps");
        // Live admission still enforces the caps on top.
        assert_eq!(l.admit("fresh", 1).unwrap_err().code, 503);
    }

    #[test]
    fn failed_release_counts_separately() {
        let l = ledger();
        l.admit("a", 7).unwrap();
        l.release("a", 7, false);
        let u = l.usage()[0].1;
        assert_eq!((u.completed, u.failed, u.active), (0, 1, 0));
        assert_eq!(u.cost_completed, 0);
    }
}
