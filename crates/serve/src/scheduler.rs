//! Job specifications, their wire/journal codec, and the worker pool.
//!
//! A [`JobSpec`] is the unit of work: one model (roster name or inline
//! EasyML source) × one pipeline configuration × a workload. The same
//! JSON encoding travels three paths — the client's `submit` line, the
//! daemon's journal (so a killed daemon can re-run in-flight jobs), and
//! the `result` verb — so there is exactly one codec to keep honest.
//!
//! Execution ([`run_job`]) deliberately mirrors the harness's
//! `trajectory_digest`: a resilient simulation (`HealthPolicy::FallbackRaw`,
//! so a fault degrades the job down the tier ladder instead of killing
//! the daemon), guarded stepping, then an FNV-1a digest over every cell's
//! membrane-potential bits. Chunked stepping is bit-identical to one
//! `run_guarded(steps)` call, which is what makes the service's digests
//! comparable to the single-process `figures --digest` driver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use limpet_harness::{faults, HealthPolicy, PipelineKind, Simulation, Workload};

use crate::json::Json;
use crate::queue::Bounded;

/// What model a job runs: a registry roster name, or inline EasyML
/// source compiled on arrival (cached under its content fingerprint like
/// any other model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelRef {
    /// A model from `limpet_models`' roster, by name.
    Roster(String),
    /// Inline EasyML source, with the name to register it under.
    Inline {
        /// Model name used for cache keys and incident reports.
        name: String,
        /// The EasyML source text.
        source: String,
    },
}

impl ModelRef {
    /// The model name (roster name or the inline source's given name).
    pub fn name(&self) -> &str {
        match self {
            ModelRef::Roster(n) => n,
            ModelRef::Inline { name, .. } => name,
        }
    }
}

/// One simulation job as accepted over the wire and recorded in the
/// journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id (client-chosen or daemon-generated).
    pub id: String,
    /// The tenant the job is accounted to.
    pub tenant: String,
    /// The model to simulate.
    pub model: ModelRef,
    /// Pipeline configuration label (`baseline`, `limpetMLIR-avx512`, …)
    /// or an ISA shorthand (`sse`, `avx2`, `avx512`).
    pub config: String,
    /// Number of cells.
    pub cells: usize,
    /// Number of time steps.
    pub steps: usize,
    /// Time step in ms.
    pub dt: f64,
    /// Steps per streamed trajectory chunk.
    pub chunk: usize,
    /// Optional fault-injection spec (`verify-fail@42`) armed before the
    /// job compiles — the CI hook for asserting per-job degradation.
    pub inject: Option<String>,
}

impl JobSpec {
    /// The admission cost of the job: `cells × steps`.
    pub fn cost(&self) -> u64 {
        self.cells as u64 * self.steps as u64
    }

    /// The spec as a JSON object (the wire and journal encoding).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::str(&self.id)),
            ("tenant", Json::str(&self.tenant)),
        ];
        match &self.model {
            ModelRef::Roster(name) => fields.push(("model", Json::str(name))),
            ModelRef::Inline { name, source } => {
                fields.push(("model", Json::str(name)));
                fields.push(("source", Json::str(source)));
            }
        }
        fields.push(("config", Json::str(&self.config)));
        fields.push(("cells", self.cells.into()));
        fields.push(("steps", self.steps.into()));
        fields.push(("dt", self.dt.into()));
        fields.push(("chunk", self.chunk.into()));
        if let Some(inject) = &self.inject {
            fields.push(("inject", Json::str(inject)));
        }
        Json::obj(fields)
    }

    /// Decodes a spec from a `submit` request or a journal line.
    /// `fallback_id` names the job when the client did not.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a required field is missing
    /// or a value is out of range.
    pub fn from_json(v: &Json, fallback_id: &str) -> Result<JobSpec, String> {
        let id = match v.get("id").and_then(Json::as_str) {
            Some(s) if !s.is_empty() => s.to_owned(),
            _ => fallback_id.to_owned(),
        };
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("anon")
            .to_owned();
        let name = v
            .get("model")
            .and_then(Json::as_str)
            .ok_or("missing required field 'model'")?
            .to_owned();
        if name.is_empty() {
            return Err("field 'model' must be a non-empty string".into());
        }
        let model = match v.get("source").and_then(Json::as_str) {
            Some(src) => ModelRef::Inline {
                name,
                source: src.to_owned(),
            },
            None => ModelRef::Roster(name),
        };
        let config = v
            .get("config")
            .and_then(Json::as_str)
            .unwrap_or("baseline")
            .to_owned();
        parse_config(&config)?;
        let cells = field_usize(v, "cells", 256)?;
        let steps = field_usize(v, "steps", 100)?;
        let chunk = field_usize(v, "chunk", 32)?;
        let dt = match v.get("dt") {
            None => 0.01,
            Some(j) => j
                .as_f64()
                .filter(|d| d.is_finite() && *d > 0.0)
                .ok_or("field 'dt' must be a positive number")?,
        };
        let inject = v
            .get("inject")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .filter(|s| !s.is_empty());
        Ok(JobSpec {
            id,
            tenant,
            model,
            config,
            cells,
            steps,
            dt,
            chunk,
            inject,
        })
    }
}

fn field_usize(v: &Json, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => match j.as_u64() {
            Some(n) if n >= 1 => Ok(n as usize),
            _ => Err(format!("field '{key}' must be an integer >= 1")),
        },
    }
}

/// Resolves a configuration label to a [`PipelineKind`]: the ISA
/// shorthands `sse`/`avx2`/`avx512` (the vectorized pipeline at that
/// width) or any full label from `all_pipeline_kinds`.
///
/// # Errors
///
/// Returns a message listing the accepted shorthands on an unknown label.
pub fn parse_config(label: &str) -> Result<PipelineKind, String> {
    use limpet_codegen::pipeline::VectorIsa;
    match label {
        "sse" => return Ok(PipelineKind::LimpetMlir(VectorIsa::Sse)),
        "avx2" => return Ok(PipelineKind::LimpetMlir(VectorIsa::Avx2)),
        "avx512" => return Ok(PipelineKind::LimpetMlir(VectorIsa::Avx512)),
        _ => {}
    }
    limpet_harness::all_pipeline_kinds()
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            format!("unknown config '{label}' (try baseline, sse, avx2, avx512, or a full pipeline label)")
        })
}

/// How a finished job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; the digest is valid.
    Done,
    /// Could not run (bad model, full quarantine, rejected fault spec).
    Failed,
    /// The client went away (or the daemon hard-stopped) mid-run.
    Aborted,
}

impl JobStatus {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Aborted => "aborted",
        }
    }
}

/// The terminal record of one job: what the `result` verb returns and
/// the last event streamed on the submitting connection.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job this belongs to.
    pub id: String,
    /// The tenant it was accounted to.
    pub tenant: String,
    /// How it ended.
    pub status: JobStatus,
    /// FNV-1a trajectory digest (valid for [`JobStatus::Done`]).
    pub digest: Option<u64>,
    /// The execution tier the job finished on (`optimized`, `raw`,
    /// `reference`), when a simulation was built at all.
    pub tier: Option<String>,
    /// Steps actually executed.
    pub steps_run: usize,
    /// Deduplicated incident groups, as the harness's `incidents_json`.
    pub incidents: Json,
    /// Failure description for [`JobStatus::Failed`].
    pub error: Option<String>,
}

impl JobOutcome {
    fn failed(spec: &JobSpec, error: String) -> JobOutcome {
        JobOutcome {
            id: spec.id.clone(),
            tenant: spec.tenant.clone(),
            status: JobStatus::Failed,
            digest: None,
            tier: None,
            steps_run: 0,
            incidents: Json::Arr(Vec::new()),
            error: Some(error),
        }
    }

    /// The outcome as the `{"event":"done",…}` wire object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("event", Json::str("done")),
            ("id", Json::str(&self.id)),
            ("tenant", Json::str(&self.tenant)),
            ("status", Json::str(self.status.as_str())),
        ];
        match self.digest {
            // Hex, not a JSON number: a 64-bit digest does not survive
            // the round-trip through f64.
            Some(d) => fields.push(("digest", Json::str(format!("{d:016x}")))),
            None => fields.push(("digest", Json::Null)),
        }
        match &self.tier {
            Some(t) => fields.push(("tier", Json::str(t))),
            None => fields.push(("tier", Json::Null)),
        }
        fields.push(("steps_run", self.steps_run.into()));
        fields.push(("incidents", self.incidents.clone()));
        if let Some(e) = &self.error {
            fields.push(("error", Json::str(e)));
        }
        Json::obj(fields)
    }
}

/// Per-connection event sink: job events are serialized lines pushed
/// into the connection's bounded outbox. Resumed jobs have no live
/// connection, hence the `Option`.
pub type Outbox = Option<Arc<Bounded<String>>>;

/// Runs one job to completion on the calling thread.
///
/// Streams a `{"event":"chunk",…}` line into `outbox` after every
/// `spec.chunk` steps — [`Bounded::push`] blocking on a full outbox is
/// the backpressure that slows this job (and only this job) down to its
/// reader's pace. A closed outbox (client gone) or a raised `abort` flag
/// ends the job as [`JobStatus::Aborted`].
pub fn run_job(spec: &JobSpec, outbox: &Outbox, abort: &AtomicBool) -> JobOutcome {
    let model = match &spec.model {
        ModelRef::Roster(name) => match limpet_models::entry(name) {
            Some(_) => limpet_models::model(name),
            None => {
                return JobOutcome::failed(spec, format!("unknown roster model '{name}'"));
            }
        },
        ModelRef::Inline { name, source } => match limpet_harness::compile_source(name, source) {
            Ok(m) => m,
            Err(e) => {
                return JobOutcome::failed(spec, format!("inline model rejected: {e}"));
            }
        },
    };
    let config = match parse_config(&spec.config) {
        Ok(c) => c,
        Err(e) => return JobOutcome::failed(spec, e),
    };
    if let Some(inject) = &spec.inject {
        if let Err(e) = faults::arm(inject) {
            return JobOutcome::failed(spec, format!("bad inject spec: {e}"));
        }
    }
    let wl = Workload {
        n_cells: spec.cells,
        steps: spec.steps,
        dt: spec.dt,
    };
    let mut sim = match Simulation::new_resilient(&model, config, &wl, HealthPolicy::FallbackRaw) {
        Ok(sim) => sim,
        Err(q) => {
            if spec.inject.is_some() {
                faults::disarm_all();
            }
            return JobOutcome::failed(
                spec,
                format!("model quarantined on every tier: {}", q.error),
            );
        }
    };
    let mut steps_run = 0;
    let mut aborted = false;
    while steps_run < spec.steps {
        if abort.load(Ordering::SeqCst) {
            aborted = true;
            break;
        }
        let n = spec.chunk.min(spec.steps - steps_run);
        // An Err here means even the reference tier gave up; stop
        // stepping (matching `trajectory_digest`) and digest what ran.
        let stopped = sim.run_guarded(n).is_err();
        steps_run += n;
        if let Some(out) = outbox {
            let event = Json::obj(vec![
                ("event", Json::str("chunk")),
                ("id", Json::str(&spec.id)),
                ("step", steps_run.into()),
                ("t", sim.time().into()),
                ("vm0", sim.vm(0).into()),
                ("tier", Json::str(sim.tier().to_string())),
            ]);
            if out.push(event.to_string()).is_err() {
                aborted = true;
                break;
            }
        }
        if stopped {
            break;
        }
    }
    if spec.inject.is_some() {
        // Injection is process-global in the harness; disarm here so a
        // tenant's fault spec is scoped to its own job and cannot leak
        // into later compiles on this daemon.
        faults::disarm_all();
    }
    let digest = if aborted {
        None
    } else {
        Some(vm_digest(&sim, spec.cells))
    };
    JobOutcome {
        id: spec.id.clone(),
        tenant: spec.tenant.clone(),
        status: if aborted {
            JobStatus::Aborted
        } else {
            JobStatus::Done
        },
        digest,
        tier: Some(sim.tier().to_string()),
        steps_run,
        incidents: Json::parse(&limpet_harness::incidents_json(sim.incidents()))
            .unwrap_or(Json::Arr(Vec::new())),
        error: None,
    }
}

/// FNV-1a over every cell's membrane-potential bits — byte-for-byte the
/// harness's `trajectory_digest` hash, so service digests are comparable
/// to `figures --digest` output.
fn vm_digest(sim: &Simulation, n_cells: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in 0..n_cells {
        for b in sim.vm(cell).to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// One queued unit of work: the spec plus the submitting connection's
/// outbox (absent for journal-resumed jobs, which have no live client).
#[derive(Debug)]
pub struct QueuedJob {
    /// The job to run.
    pub spec: JobSpec,
    /// Where to stream events, if anyone is listening.
    pub outbox: Outbox,
}

/// A fixed-size worker pool draining a shared bounded job queue.
pub struct Pool {
    queue: Arc<Bounded<QueuedJob>>,
    abort: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Pool {
    /// Spawns `workers` threads popping jobs from a queue of at most
    /// `queue_cap` entries. Every finished job is handed to `on_done`
    /// (journal done-line, ledger release, results map — the server's
    /// business, injected so the pool stays mechanism-only).
    pub fn new<F>(workers: usize, queue_cap: usize, on_done: F) -> Pool
    where
        F: Fn(&JobSpec, &JobOutcome) + Send + Sync + 'static,
    {
        let queue = Arc::new(Bounded::new(queue_cap.max(1)));
        let abort = Arc::new(AtomicBool::new(false));
        let on_done = Arc::new(on_done);
        let mut handles = Vec::new();
        for i in 0..workers.max(1) {
            let queue = Arc::clone(&queue);
            let abort = Arc::clone(&abort);
            let on_done = Arc::clone(&on_done);
            let handle = std::thread::Builder::new()
                .name(format!("limpet-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = queue.pop() {
                        let QueuedJob { spec, outbox } = job;
                        let outcome = run_job(&spec, &outbox, &abort);
                        if let Some(out) = &outbox {
                            // Best effort: the client may already be gone.
                            let _ = out.push(outcome.to_json().to_string());
                        }
                        on_done(&spec, &outcome);
                    }
                })
                .expect("spawning a worker thread");
            handles.push(handle);
        }
        Pool {
            queue,
            abort,
            workers: handles,
        }
    }

    /// Enqueues a job. Blocks if the queue is momentarily full (admission
    /// control caps the in-flight total well below sustained fullness).
    ///
    /// # Errors
    ///
    /// Returns the job back when the pool is already shutting down.
    pub fn submit(&self, job: QueuedJob) -> Result<(), crate::queue::Closed> {
        self.queue.push(job)
    }

    /// Jobs waiting in the queue (not counting ones being executed).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// A submit/len handle to the underlying queue, for connection
    /// threads that outlive nothing but must not own the pool.
    pub fn queue_handle(&self) -> Arc<Bounded<QueuedJob>> {
        Arc::clone(&self.queue)
    }

    /// Stops the pool. With `drain`, queued and running jobs finish
    /// first; without, running jobs abort at their next chunk boundary
    /// and still-queued jobs drain through as immediate aborts (their
    /// `on_done` fires with [`JobStatus::Aborted`], so the journal and
    /// ledger stay consistent).
    pub fn shutdown(mut self, drain: bool) {
        if !drain {
            self.abort.store(true, Ordering::SeqCst);
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn spec(id: &str, model: &str, config: &str, cells: usize, steps: usize) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant: "t".into(),
            model: ModelRef::Roster(model.into()),
            config: config.into(),
            cells,
            steps,
            dt: 0.01,
            chunk: 8,
            inject: None,
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let mut s = spec("j1", "HodgkinHuxley", "avx512", 64, 32);
        s.inject = Some("verify-fail@7".into());
        let encoded = s.to_json().to_string();
        let decoded = JobSpec::from_json(&Json::parse(&encoded).unwrap(), "fallback").unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn from_json_applies_defaults_and_validates() {
        let v = Json::parse(r#"{"model":"HodgkinHuxley"}"#).unwrap();
        let s = JobSpec::from_json(&v, "gen-1").unwrap();
        assert_eq!(s.id, "gen-1");
        assert_eq!(s.tenant, "anon");
        assert_eq!(s.config, "baseline");
        assert_eq!((s.cells, s.steps, s.chunk), (256, 100, 32));
        assert!(JobSpec::from_json(&Json::parse("{}").unwrap(), "x").is_err());
        let bad = Json::parse(r#"{"model":"HH","cells":0}"#).unwrap();
        assert!(JobSpec::from_json(&bad, "x").is_err());
        let bad = Json::parse(r#"{"model":"HH","config":"warp9"}"#).unwrap();
        assert!(JobSpec::from_json(&bad, "x").is_err());
    }

    #[test]
    fn config_shorthands_resolve() {
        assert_eq!(parse_config("baseline").unwrap().label(), "baseline");
        assert_eq!(
            parse_config("avx512").unwrap().label(),
            "limpetMLIR-AVX-512"
        );
        assert_eq!(
            parse_config("limpetMLIR-AoS-SSE").unwrap().label(),
            "limpetMLIR-AoS-SSE"
        );
        assert!(parse_config("warp9").is_err());
    }

    #[test]
    fn run_job_digest_matches_harness_driver() {
        let wl = Workload {
            n_cells: 32,
            steps: 12,
            dt: 0.01,
        };
        let m = limpet_models::model("HodgkinHuxley");
        let expected =
            limpet_harness::trajectory_digest(&m, PipelineKind::Baseline, &wl, wl.steps).unwrap();
        let outcome = run_job(
            &spec("d", "HodgkinHuxley", "baseline", wl.n_cells, wl.steps),
            &None,
            &AtomicBool::new(false),
        );
        assert_eq!(outcome.status, JobStatus::Done);
        assert_eq!(outcome.digest, Some(expected));
        assert_eq!(outcome.tier.as_deref(), Some("optimized"));
    }

    #[test]
    fn run_job_reports_unknown_model_and_bad_config() {
        let out = run_job(
            &spec("x", "NoSuchModel", "baseline", 4, 4),
            &None,
            &AtomicBool::new(false),
        );
        assert_eq!(out.status, JobStatus::Failed);
        assert!(out.error.as_deref().unwrap().contains("NoSuchModel"));
    }

    #[test]
    fn pool_runs_jobs_and_reports_done() {
        let done: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let done2 = Arc::clone(&done);
        let pool = Pool::new(2, 8, move |spec, outcome| {
            assert_eq!(outcome.status, JobStatus::Done);
            done2.lock().unwrap().push(spec.id.clone());
        });
        for i in 0..4 {
            pool.submit(QueuedJob {
                spec: spec(&format!("j{i}"), "HodgkinHuxley", "baseline", 8, 4),
                outbox: None,
            })
            .unwrap();
        }
        pool.shutdown(true);
        let mut ids = done.lock().unwrap().clone();
        ids.sort();
        assert_eq!(ids, ["j0", "j1", "j2", "j3"]);
    }
}
