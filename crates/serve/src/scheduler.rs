//! Job specifications, their wire/journal codec, and the worker pool.
//!
//! A [`JobSpec`] is the unit of work: one model (roster name or inline
//! EasyML source) × one pipeline configuration × a workload. The same
//! JSON encoding travels three paths — the client's `submit` line, the
//! daemon's journal (so a killed daemon can re-run in-flight jobs), and
//! the `result` verb — so there is exactly one codec to keep honest.
//!
//! Execution ([`run_job`]) deliberately mirrors the harness's
//! `trajectory_digest`: a resilient simulation (`HealthPolicy::FallbackRaw`,
//! so a fault degrades the job down the tier ladder instead of killing
//! the daemon), guarded stepping, then an FNV-1a digest over every cell's
//! membrane-potential bits. Chunked stepping is bit-identical to one
//! `run_guarded(steps)` call, which is what makes the service's digests
//! comparable to the single-process `figures --digest` driver.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use limpet_harness::{
    faults, CancelToken, HealthPolicy, IncidentKind, PipelineKind, Simulation, SnapshotStore,
    Workload,
};

use crate::json::Json;
use crate::queue::Bounded;

/// What model a job runs: a registry roster name, or inline EasyML
/// source compiled on arrival (cached under its content fingerprint like
/// any other model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelRef {
    /// A model from `limpet_models`' roster, by name.
    Roster(String),
    /// Inline EasyML source, with the name to register it under.
    Inline {
        /// Model name used for cache keys and incident reports.
        name: String,
        /// The EasyML source text.
        source: String,
    },
}

impl ModelRef {
    /// The model name (roster name or the inline source's given name).
    pub fn name(&self) -> &str {
        match self {
            ModelRef::Roster(n) => n,
            ModelRef::Inline { name, .. } => name,
        }
    }
}

/// One simulation job as accepted over the wire and recorded in the
/// journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id (client-chosen or daemon-generated).
    pub id: String,
    /// The tenant the job is accounted to.
    pub tenant: String,
    /// The model to simulate.
    pub model: ModelRef,
    /// Pipeline configuration label (`baseline`, `limpetMLIR-avx512`, …)
    /// or an ISA shorthand (`sse`, `avx2`, `avx512`).
    pub config: String,
    /// Number of cells.
    pub cells: usize,
    /// Number of time steps.
    pub steps: usize,
    /// Time step in ms.
    pub dt: f64,
    /// Steps per streamed trajectory chunk.
    pub chunk: usize,
    /// Optional fault-injection spec (`verify-fail@42`) armed before the
    /// job compiles — the CI hook for asserting per-job degradation.
    pub inject: Option<String>,
    /// Optional per-job wall-clock budget in milliseconds. Overrides the
    /// daemon's default budget; absent means "use the daemon default".
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// The admission cost of the job: `cells × steps`.
    pub fn cost(&self) -> u64 {
        self.cells as u64 * self.steps as u64
    }

    /// The spec as a JSON object (the wire and journal encoding).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::str(&self.id)),
            ("tenant", Json::str(&self.tenant)),
        ];
        match &self.model {
            ModelRef::Roster(name) => fields.push(("model", Json::str(name))),
            ModelRef::Inline { name, source } => {
                fields.push(("model", Json::str(name)));
                fields.push(("source", Json::str(source)));
            }
        }
        fields.push(("config", Json::str(&self.config)));
        fields.push(("cells", self.cells.into()));
        fields.push(("steps", self.steps.into()));
        fields.push(("dt", self.dt.into()));
        fields.push(("chunk", self.chunk.into()));
        if let Some(inject) = &self.inject {
            fields.push(("inject", Json::str(inject)));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", ms.into()));
        }
        Json::obj(fields)
    }

    /// Decodes a spec from a `submit` request or a journal line.
    /// `fallback_id` names the job when the client did not.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a required field is missing
    /// or a value is out of range.
    pub fn from_json(v: &Json, fallback_id: &str) -> Result<JobSpec, String> {
        let id = match v.get("id").and_then(Json::as_str) {
            Some(s) if !s.is_empty() => s.to_owned(),
            _ => fallback_id.to_owned(),
        };
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("anon")
            .to_owned();
        let name = v
            .get("model")
            .and_then(Json::as_str)
            .ok_or("missing required field 'model'")?
            .to_owned();
        if name.is_empty() {
            return Err("field 'model' must be a non-empty string".into());
        }
        let model = match v.get("source").and_then(Json::as_str) {
            Some(src) => ModelRef::Inline {
                name,
                source: src.to_owned(),
            },
            None => ModelRef::Roster(name),
        };
        let config = v
            .get("config")
            .and_then(Json::as_str)
            .unwrap_or("baseline")
            .to_owned();
        parse_config(&config)?;
        let cells = field_usize(v, "cells", 256)?;
        let steps = field_usize(v, "steps", 100)?;
        let chunk = field_usize(v, "chunk", 32)?;
        let dt = match v.get("dt") {
            None => 0.01,
            Some(j) => j
                .as_f64()
                .filter(|d| d.is_finite() && *d > 0.0)
                .ok_or("field 'dt' must be a positive number")?,
        };
        let inject = v
            .get("inject")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .filter(|s| !s.is_empty());
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(j) => match j.as_u64() {
                Some(n) if n >= 1 => Some(n),
                _ => return Err("field 'deadline_ms' must be an integer >= 1".into()),
            },
        };
        Ok(JobSpec {
            id,
            tenant,
            model,
            config,
            cells,
            steps,
            dt,
            chunk,
            inject,
            deadline_ms,
        })
    }
}

fn field_usize(v: &Json, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => match j.as_u64() {
            Some(n) if n >= 1 => Ok(n as usize),
            _ => Err(format!("field '{key}' must be an integer >= 1")),
        },
    }
}

/// Resolves a configuration label to a [`PipelineKind`]: the ISA
/// shorthands `sse`/`avx2`/`avx512` (the vectorized pipeline at that
/// width) or any full label from `all_pipeline_kinds`.
///
/// # Errors
///
/// Returns a message listing the accepted shorthands on an unknown label.
pub fn parse_config(label: &str) -> Result<PipelineKind, String> {
    use limpet_codegen::pipeline::VectorIsa;
    match label {
        "sse" => return Ok(PipelineKind::LimpetMlir(VectorIsa::Sse)),
        "avx2" => return Ok(PipelineKind::LimpetMlir(VectorIsa::Avx2)),
        "avx512" => return Ok(PipelineKind::LimpetMlir(VectorIsa::Avx512)),
        _ => {}
    }
    limpet_harness::all_pipeline_kinds()
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            format!("unknown config '{label}' (try baseline, sse, avx2, avx512, or a full pipeline label)")
        })
}

/// How a finished job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; the digest is valid.
    Done,
    /// Could not run (bad model, full quarantine, rejected fault spec).
    Failed,
    /// The client went away (or the daemon hard-stopped) mid-run.
    Aborted,
    /// The job's wall-clock budget expired: cancelled cooperatively at a
    /// step boundary, or reclaimed by the stuck-worker watchdog.
    Deadline,
}

impl JobStatus {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Aborted => "aborted",
            JobStatus::Deadline => "deadline",
        }
    }
}

/// The terminal record of one job: what the `result` verb returns and
/// the last event streamed on the submitting connection.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job this belongs to.
    pub id: String,
    /// The tenant it was accounted to.
    pub tenant: String,
    /// How it ended.
    pub status: JobStatus,
    /// FNV-1a trajectory digest (valid for [`JobStatus::Done`]).
    pub digest: Option<u64>,
    /// The execution tier the job finished on (`optimized`, `raw`,
    /// `reference`), when a simulation was built at all.
    pub tier: Option<String>,
    /// Steps actually executed.
    pub steps_run: usize,
    /// Deduplicated incident groups, as the harness's `incidents_json`.
    pub incidents: Json,
    /// Failure description for [`JobStatus::Failed`].
    pub error: Option<String>,
}

impl JobOutcome {
    fn failed(spec: &JobSpec, error: String) -> JobOutcome {
        JobOutcome {
            id: spec.id.clone(),
            tenant: spec.tenant.clone(),
            status: JobStatus::Failed,
            digest: None,
            tier: None,
            steps_run: 0,
            incidents: Json::Arr(Vec::new()),
            error: Some(error),
        }
    }

    /// The outcome as the `{"event":"done",…}` wire object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("event", Json::str("done")),
            ("id", Json::str(&self.id)),
            ("tenant", Json::str(&self.tenant)),
            ("status", Json::str(self.status.as_str())),
        ];
        match self.digest {
            // Hex, not a JSON number: a 64-bit digest does not survive
            // the round-trip through f64.
            Some(d) => fields.push(("digest", Json::str(format!("{d:016x}")))),
            None => fields.push(("digest", Json::Null)),
        }
        match &self.tier {
            Some(t) => fields.push(("tier", Json::str(t))),
            None => fields.push(("tier", Json::Null)),
        }
        fields.push(("steps_run", self.steps_run.into()));
        fields.push(("incidents", self.incidents.clone()));
        if let Some(e) = &self.error {
            fields.push(("error", Json::str(e)));
        }
        Json::obj(fields)
    }
}

/// Per-connection event sink: job events are serialized lines pushed
/// into the connection's bounded outbox. Resumed jobs have no live
/// connection, hence the `Option`.
pub type Outbox = Option<Arc<Bounded<String>>>;

/// Everything the execution loop consults besides the spec: the pool's
/// abort flag, the job's cancellation token, and the heartbeat counter
/// the stuck-worker watchdog samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCtl<'a> {
    /// Pool-global abort (daemon hard stop); checked at chunk boundaries.
    pub abort: Option<&'a AtomicBool>,
    /// Per-job cancellation/deadline token, also threaded into the
    /// simulation so expiry lands at a *step* boundary, not just a chunk.
    pub token: Option<&'a CancelToken>,
    /// Bumped once per completed chunk — a flat-lining heartbeat past
    /// the deadline is what the watchdog treats as a wedged worker.
    pub heartbeat: Option<&'a AtomicU64>,
    /// Durable snapshot store. When present, the job auto-resumes from
    /// its latest snapshot on start, checkpoints on the `ckpt_every`
    /// cadence and on abort/deadline, and removes its snapshot on `Done`.
    pub store: Option<&'a SnapshotStore>,
    /// Checkpoint cadence in chunks (0 is treated as 1: every chunk).
    pub ckpt_every: usize,
    /// Force-checkpoint request flag, polled (and cleared) at every chunk
    /// boundary — the `checkpoint` wire verb's hook into a running job.
    pub force_ckpt: Option<&'a AtomicBool>,
}

/// Runs one job to completion on the calling thread.
///
/// Streams a `{"event":"chunk",…}` line into `outbox` after every
/// `spec.chunk` steps — [`Bounded::push`] blocking on a full outbox is
/// the backpressure that slows this job (and only this job) down to its
/// reader's pace. A closed outbox (client gone) or a raised abort flag
/// ends the job as [`JobStatus::Aborted`]; a tripped cancellation token
/// ends it as [`JobStatus::Deadline`] at a step boundary, state whole.
pub fn run_job(spec: &JobSpec, outbox: &Outbox, ctl: &RunCtl) -> JobOutcome {
    let model = match &spec.model {
        ModelRef::Roster(name) => match limpet_models::entry(name) {
            Some(_) => limpet_models::model(name),
            None => {
                return JobOutcome::failed(spec, format!("unknown roster model '{name}'"));
            }
        },
        ModelRef::Inline { name, source } => match limpet_harness::compile_source(name, source) {
            Ok(m) => m,
            Err(e) => {
                return JobOutcome::failed(spec, format!("inline model rejected: {e}"));
            }
        },
    };
    let config = match parse_config(&spec.config) {
        Ok(c) => c,
        Err(e) => return JobOutcome::failed(spec, e),
    };
    if let Some(inject) = &spec.inject {
        if let Err(e) = faults::arm(inject) {
            return JobOutcome::failed(spec, format!("bad inject spec: {e}"));
        }
    }
    // The WorkerHang injection (taken after arming, so a job's own
    // inject spec wedges *this* job) stalls the thread for the payload's
    // duration in milliseconds ("worker-hang@3000" = 3s), deliberately
    // ignoring the token — a genuine non-cooperative stall only the
    // watchdog can deal with.
    if let Some(ms) = faults::take(faults::FaultKind::WorkerHang) {
        std::thread::sleep(Duration::from_millis(ms.clamp(1, 600_000)));
    }
    let wl = Workload {
        n_cells: spec.cells,
        steps: spec.steps,
        dt: spec.dt,
    };
    let mut sim = match Simulation::new_resilient(&model, config, &wl, HealthPolicy::FallbackRaw) {
        Ok(sim) => sim,
        Err(q) => {
            if spec.inject.is_some() {
                faults::disarm_all();
            }
            return JobOutcome::failed(
                spec,
                format!("model quarantined on every tier: {}", q.error),
            );
        }
    };
    if let Some(token) = ctl.token {
        // Threaded into guarded stepping so expiry stops at a step
        // boundary inside a chunk, never leaving torn mid-step state.
        sim.set_cancel_token(token.clone());
    }
    let mut steps_run = 0;
    if let Some(store) = ctl.store {
        steps_run = try_resume(store, spec, &mut sim);
    }
    let mut aborted = false;
    let mut deadline = None;
    let mut chunks_done: u64 = 0;
    let ckpt_every = ctl.ckpt_every.max(1) as u64;
    while steps_run < spec.steps {
        if ctl.abort.is_some_and(|a| a.load(Ordering::SeqCst)) {
            aborted = true;
            break;
        }
        let n = spec.chunk.min(spec.steps - steps_run);
        // An Err here means the job's budget expired (typed incident) or
        // even the reference tier gave up; stop stepping (matching
        // `trajectory_digest`) and report what ran.
        let stopped = match sim.run_guarded(n) {
            Ok(()) => false,
            Err(incident) => {
                if incident.kind == IncidentKind::DeadlineExceeded {
                    deadline = Some(incident.detail.clone());
                }
                true
            }
        };
        steps_run += n;
        chunks_done += 1;
        if let Some(hb) = ctl.heartbeat {
            hb.fetch_add(1, Ordering::SeqCst);
        }
        if let Some(store) = ctl.store {
            let forced = ctl
                .force_ckpt
                .is_some_and(|f| f.swap(false, Ordering::SeqCst));
            // Skip the final boundary: the job is about to finish and
            // remove its snapshot anyway.
            if (forced || chunks_done.is_multiple_of(ckpt_every))
                && steps_run < spec.steps
                && !stopped
            {
                save_checkpoint(store, spec, &sim);
            }
        }
        if let Some(out) = outbox {
            let event = Json::obj(vec![
                ("event", Json::str("chunk")),
                ("id", Json::str(&spec.id)),
                ("step", steps_run.into()),
                ("t", sim.time().into()),
                ("vm0", sim.vm(0).into()),
                ("tier", Json::str(sim.tier().to_string())),
            ]);
            if out.push(event.to_string()).is_err() {
                aborted = true;
                break;
            }
        }
        if stopped {
            break;
        }
    }
    if spec.inject.is_some() {
        // Injection is process-global in the harness; disarm here so a
        // tenant's fault spec is scoped to its own job and cannot leak
        // into later compiles on this daemon.
        faults::disarm_all();
    }
    let status = if deadline.is_some() {
        JobStatus::Deadline
    } else if aborted {
        JobStatus::Aborted
    } else {
        JobStatus::Done
    };
    if let Some(store) = ctl.store {
        if status == JobStatus::Done {
            // Terminal: the digest is journaled, the snapshot has served
            // its purpose. Leaving it would let a later resume of the
            // same id silently re-run from mid-trajectory.
            store.remove(&spec.id);
        } else {
            // Aborted or deadline: persist the exact step-boundary state
            // so the next incarnation (journal replay or `resume` verb)
            // continues instead of recomputing from step 0.
            save_checkpoint(store, spec, &sim);
        }
    }
    let digest = if status == JobStatus::Done {
        Some(vm_digest(&sim, spec.cells))
    } else {
        None
    };
    JobOutcome {
        id: spec.id.clone(),
        tenant: spec.tenant.clone(),
        status,
        digest,
        tier: Some(sim.tier().to_string()),
        steps_run,
        incidents: Json::parse(&limpet_harness::incidents_json(sim.incidents()))
            .unwrap_or(Json::Arr(Vec::new())),
        error: deadline,
    }
}

/// Attempts to restore the job's latest durable snapshot into `sim`.
/// Returns the step to continue from (0 when there is nothing usable).
/// Every rejected file on the load ladder is logged and already
/// self-healed (removed) by the store; a key or shape mismatch falls
/// back to step 0 rather than failing the job.
fn try_resume(store: &SnapshotStore, spec: &JobSpec, sim: &mut Simulation) -> usize {
    let outcome = store.load(&spec.id);
    for (path, reason) in &outcome.rejects {
        eprintln!(
            "limpet-serve: checkpoint: rejected snapshot {} ({}); removed",
            path.display(),
            reason.as_str()
        );
    }
    let Some(snap) = &outcome.snapshot else {
        if !outcome.rejects.is_empty() {
            eprintln!(
                "limpet-serve: checkpoint: no usable snapshot for job {}; starting from step 0",
                spec.id
            );
        }
        return 0;
    };
    let usable = snap
        .key_matches(spec.model.name(), &spec.config, spec.cells, spec.dt)
        .and_then(|()| sim.restore(snap));
    match usable {
        Ok(()) => {
            let at = (snap.steps_done as usize).min(spec.steps);
            eprintln!(
                "limpet-serve: checkpoint: resumed job {} at step {}{}",
                spec.id,
                at,
                if outcome.from_previous {
                    " (previous rotation)"
                } else {
                    ""
                }
            );
            at
        }
        Err(e) => {
            eprintln!(
                "limpet-serve: checkpoint: snapshot for job {} unusable ({e}); starting from step 0",
                spec.id
            );
            0
        }
    }
}

/// Durably snapshots `sim` under the job id, embedding the job-spec JSON
/// so the snapshot is self-contained for the `resume` wire verb. Uses the
/// guard's own step counter, not the chunk loop's tally — a deadline can
/// stop a chunk early, and recording too many steps would make the
/// resumed trajectory diverge. Failures are logged, never fatal: a job
/// must not die because its checkpoint could not be written.
fn save_checkpoint(store: &SnapshotStore, spec: &JobSpec, sim: &Simulation) {
    let mut snap = sim.snapshot(&spec.config, sim.guarded_steps() as u64);
    snap.meta = Some(spec.to_json().to_string());
    if let Err(e) = store.save(&spec.id, &snap) {
        eprintln!(
            "limpet-serve: checkpoint: save for job {} failed: {e}",
            spec.id
        );
    }
}

/// FNV-1a over every cell's membrane-potential bits — byte-for-byte the
/// harness's `trajectory_digest` hash, so service digests are comparable
/// to `figures --digest` output.
fn vm_digest(sim: &Simulation, n_cells: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in 0..n_cells {
        for b in sim.vm(cell).to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// One queued unit of work: the spec plus the submitting connection's
/// outbox (absent for journal-resumed jobs, which have no live client).
#[derive(Debug)]
pub struct QueuedJob {
    /// The job to run.
    pub spec: JobSpec,
    /// Where to stream events, if anyone is listening.
    pub outbox: Outbox,
}

/// Sizing and survivability knobs for a [`Pool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded job-queue capacity.
    pub queue_cap: usize,
    /// Default per-job wall-clock budget (ms) for specs that carry none;
    /// `None` leaves such jobs unbudgeted.
    pub default_deadline_ms: Option<u64>,
    /// Stuck-worker watchdog sweep interval; `None` disables the
    /// watchdog entirely (then a non-cooperative worker is never
    /// reclaimed — tests and embedded pools only).
    pub watchdog: Option<Duration>,
    /// Durable snapshot store shared by every worker; `None` disables
    /// checkpointing (jobs always start from step 0).
    pub snapshot_store: Option<Arc<SnapshotStore>>,
    /// Checkpoint cadence: snapshot every N completed chunks (plus on
    /// abort/deadline and on a `checkpoint` request). 0 is treated as 1.
    pub checkpoint_every_chunks: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 2,
            queue_cap: 64,
            default_deadline_ms: None,
            watchdog: None,
            snapshot_store: None,
            checkpoint_every_chunks: 1,
        }
    }
}

/// The watchdog's view of one in-flight job, published by the worker
/// into its slot before stepping begins.
#[derive(Debug)]
struct ActiveJob {
    spec: JobSpec,
    outbox: Outbox,
    token: CancelToken,
    heartbeat: Arc<AtomicU64>,
    /// Set by the watchdog when it reclaims the job; the owning worker
    /// then suppresses its own (late) completion and exits.
    abandoned: Arc<AtomicBool>,
    /// The owning worker thread's wedged flag — set so shutdown does not
    /// block joining a thread that may never return.
    thread_wedged: Arc<AtomicBool>,
    /// When the watchdog first saw the job's budget tripped; reclaim
    /// fires one full sweep interval later, giving a cooperative worker
    /// time to stop at its own step boundary.
    tripped_at: Option<Instant>,
    /// Set by [`Pool::request_checkpoint`]; the worker snapshots (and
    /// clears the flag) at its next chunk boundary.
    force_ckpt: Arc<AtomicBool>,
}

/// Completion callback: invoked once per job with its final outcome.
type DoneHook = Arc<dyn Fn(&JobSpec, &JobOutcome) + Send + Sync>;

/// Stall callback: invoked with the spec and a reason when the watchdog
/// reclaims a wedged worker.
type StallHook = Arc<dyn Fn(&JobSpec, &str) + Send + Sync>;

/// State shared between workers, the watchdog, and the pool handle.
struct PoolShared {
    queue: Arc<Bounded<QueuedJob>>,
    abort: AtomicBool,
    /// One slot per worker index; `None` when that worker is idle.
    slots: Vec<Mutex<Option<ActiveJob>>>,
    on_done: DoneHook,
    /// Invoked (with the spec and a reason) when the watchdog reclaims a
    /// wedged worker — the server's hook for counters and native-slot
    /// quarantine.
    on_stall: StallHook,
    default_deadline_ms: Option<u64>,
    snapshots: Option<Arc<SnapshotStore>>,
    ckpt_every: usize,
    /// `(handle, wedged)` for every thread ever spawned; wedged threads
    /// are left behind (not joined) at shutdown.
    threads: Mutex<Vec<(JoinHandle<()>, Arc<AtomicBool>)>>,
    watchdog_stop: AtomicBool,
    respawns: AtomicU64,
}

impl PoolShared {
    fn lock_slot(&self, i: usize) -> std::sync::MutexGuard<'_, Option<ActiveJob>> {
        self.slots[i].lock().unwrap_or_else(|p| p.into_inner())
    }
}

fn spawn_worker(shared: &Arc<PoolShared>, i: usize) {
    let sh = Arc::clone(shared);
    let wedged = Arc::new(AtomicBool::new(false));
    let my_wedged = Arc::clone(&wedged);
    let handle = std::thread::Builder::new()
        .name(format!("limpet-worker-{i}"))
        .spawn(move || {
            while let Some(job) = sh.queue.pop() {
                let QueuedJob { spec, outbox } = job;
                let token = match spec.deadline_ms.or(sh.default_deadline_ms) {
                    Some(ms) => CancelToken::with_budget(Duration::from_millis(ms.max(1))),
                    None => CancelToken::new(),
                };
                let heartbeat = Arc::new(AtomicU64::new(0));
                let abandoned = Arc::new(AtomicBool::new(false));
                let force_ckpt = Arc::new(AtomicBool::new(false));
                *sh.lock_slot(i) = Some(ActiveJob {
                    spec: spec.clone(),
                    outbox: outbox.clone(),
                    token: token.clone(),
                    heartbeat: Arc::clone(&heartbeat),
                    abandoned: Arc::clone(&abandoned),
                    thread_wedged: Arc::clone(&my_wedged),
                    tripped_at: None,
                    force_ckpt: Arc::clone(&force_ckpt),
                });
                let outcome = run_job(
                    &spec,
                    &outbox,
                    &RunCtl {
                        abort: Some(&sh.abort),
                        token: Some(&token),
                        heartbeat: Some(&heartbeat),
                        store: sh.snapshots.as_deref(),
                        ckpt_every: sh.ckpt_every,
                        force_ckpt: Some(&force_ckpt),
                    },
                );
                // Completion races the watchdog's reclaim; the slot lock
                // arbitrates. Losing means a replacement worker already
                // owns this slot and the job was reported as a deadline —
                // this thread is surplus and exits without reporting.
                let claimed = {
                    let mut slot = sh.lock_slot(i);
                    if abandoned.load(Ordering::SeqCst) {
                        false
                    } else {
                        *slot = None;
                        true
                    }
                };
                if !claimed {
                    return;
                }
                if let Some(out) = &outbox {
                    // Best effort: the client may already be gone.
                    let _ = out.push(outcome.to_json().to_string());
                }
                (sh.on_done)(&spec, &outcome);
            }
        })
        .expect("spawning a worker thread");
    shared
        .threads
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push((handle, wedged));
}

/// One watchdog sweep: reclaim every slot whose job's budget tripped at
/// least `grace` ago and whose worker still hasn't returned.
fn watchdog_sweep(sh: &Arc<PoolShared>, grace: Duration) {
    for i in 0..sh.slots.len() {
        let reclaimed = {
            let mut slot = sh.lock_slot(i);
            let Some(active) = slot.as_mut() else {
                continue;
            };
            if active.token.checked().is_none() {
                // Budget not exhausted (or no budget at all): a slow
                // chunk is not a stall. The deadline is the authority.
                active.tripped_at = None;
                continue;
            }
            match active.tripped_at {
                None => {
                    active.tripped_at = Some(Instant::now());
                    continue;
                }
                Some(t) if t.elapsed() < grace => continue,
                Some(_) => slot.take(),
            }
        };
        let Some(active) = reclaimed else { continue };
        // The worker ignored its tripped budget for a full sweep
        // interval: treat it as wedged. Cancel (idempotent), mark the
        // job abandoned so the worker's late completion is suppressed
        // and the thread exits, report the 504, and restore capacity.
        active.token.cancel();
        active.abandoned.store(true, Ordering::SeqCst);
        active.thread_wedged.store(true, Ordering::SeqCst);
        let spec = &active.spec;
        let reason = format!(
            "watchdog: worker unresponsive {}ms past its deadline; job reclaimed",
            grace.as_millis()
        );
        if let Some(out) = &active.outbox {
            // try_push, not push: a full outbox must not stall the sweep
            // that protects every other connection.
            let _ = out.try_push(
                Json::obj(vec![
                    ("event", Json::str("deadline")),
                    ("id", Json::str(&spec.id)),
                    ("code", 504u64.into()),
                    ("reason", Json::str(&reason)),
                ])
                .to_string(),
            );
        }
        let chunks = active.heartbeat.load(Ordering::SeqCst) as usize;
        let outcome = JobOutcome {
            id: spec.id.clone(),
            tenant: spec.tenant.clone(),
            status: JobStatus::Deadline,
            digest: None,
            tier: None,
            steps_run: (chunks * spec.chunk).min(spec.steps),
            incidents: Json::Arr(Vec::new()),
            error: Some(reason.clone()),
        };
        if let Some(out) = &active.outbox {
            let _ = out.try_push(outcome.to_json().to_string());
        }
        (sh.on_done)(spec, &outcome);
        (sh.on_stall)(spec, &reason);
        sh.respawns.fetch_add(1, Ordering::SeqCst);
        spawn_worker(sh, i);
    }
}

fn request_checkpoint_in(sh: &Arc<PoolShared>, id: &str) -> bool {
    for i in 0..sh.slots.len() {
        let slot = sh.lock_slot(i);
        if let Some(active) = slot.as_ref() {
            if active.spec.id == id {
                active.force_ckpt.store(true, Ordering::SeqCst);
                return true;
            }
        }
    }
    false
}

/// A cloneable capability for flagging active jobs for an immediate
/// checkpoint (see [`Pool::request_checkpoint`]), held by connection
/// threads that must not own the pool itself.
#[derive(Clone)]
pub struct CheckpointRequester {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for CheckpointRequester {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointRequester").finish()
    }
}

impl CheckpointRequester {
    /// See [`Pool::request_checkpoint`].
    pub fn request(&self, id: &str) -> bool {
        request_checkpoint_in(&self.shared, id)
    }
}

/// A fixed-size worker pool draining a shared bounded job queue, with an
/// optional stuck-worker watchdog that reclaims wedged workers.
pub struct Pool {
    shared: Arc<PoolShared>,
    watchdog: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.shared.slots.len())
            .field("queued", &self.shared.queue.len())
            .finish()
    }
}

impl Pool {
    /// Spawns the configured worker threads popping jobs from a bounded
    /// queue. Every finished job is handed to `on_done` (journal
    /// done-line, ledger release, results map — the server's business,
    /// injected so the pool stays mechanism-only); every watchdog
    /// reclaim additionally fires `on_stall` with the wedged job's spec.
    pub fn new<F, G>(config: PoolConfig, on_done: F, on_stall: G) -> Pool
    where
        F: Fn(&JobSpec, &JobOutcome) + Send + Sync + 'static,
        G: Fn(&JobSpec, &str) + Send + Sync + 'static,
    {
        let workers = config.workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Arc::new(Bounded::new(config.queue_cap.max(1))),
            abort: AtomicBool::new(false),
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            on_done: Arc::new(on_done),
            on_stall: Arc::new(on_stall),
            default_deadline_ms: config.default_deadline_ms,
            snapshots: config.snapshot_store.clone(),
            ckpt_every: config.checkpoint_every_chunks.max(1),
            threads: Mutex::new(Vec::new()),
            watchdog_stop: AtomicBool::new(false),
            respawns: AtomicU64::new(0),
        });
        for i in 0..workers {
            spawn_worker(&shared, i);
        }
        let watchdog = config.watchdog.map(|grace| {
            let sh = Arc::clone(&shared);
            // Sweep a few times per grace interval so reclaim latency is
            // bounded by ~grace, not 2×grace.
            let tick = (grace / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
            std::thread::Builder::new()
                .name("limpet-watchdog".into())
                .spawn(move || {
                    while !sh.watchdog_stop.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        watchdog_sweep(&sh, grace);
                    }
                })
                .expect("spawning the watchdog thread")
        });
        Pool { shared, watchdog }
    }

    /// Enqueues a job. Blocks if the queue is momentarily full (admission
    /// control caps the in-flight total well below sustained fullness).
    ///
    /// # Errors
    ///
    /// Returns the job back when the pool is already shutting down.
    pub fn submit(&self, job: QueuedJob) -> Result<(), crate::queue::Closed> {
        self.shared.queue.push(job)
    }

    /// Jobs waiting in the queue (not counting ones being executed).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Workers respawned by the watchdog after reclaiming a wedged one.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::SeqCst)
    }

    /// A submit/len handle to the underlying queue, for connection
    /// threads that outlive nothing but must not own the pool.
    pub fn queue_handle(&self) -> Arc<Bounded<QueuedJob>> {
        Arc::clone(&self.shared.queue)
    }

    /// Requests an immediate durable checkpoint of an active job. The
    /// owning worker snapshots at its next chunk boundary. Returns `true`
    /// when the job is currently executing on some worker; `false` means
    /// queued, finished, or unknown (queued jobs checkpoint on their
    /// normal cadence once they start).
    pub fn request_checkpoint(&self, id: &str) -> bool {
        request_checkpoint_in(&self.shared, id)
    }

    /// A detachable handle for requesting checkpoints without owning the
    /// pool — what connection threads hold.
    pub fn checkpoint_requester(&self) -> CheckpointRequester {
        CheckpointRequester {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the pool. With `drain`, queued and running jobs finish
    /// first; without, running jobs abort at their next chunk boundary
    /// and still-queued jobs drain through as immediate aborts (their
    /// `on_done` fires with [`JobStatus::Aborted`], so the journal and
    /// ledger stay consistent). Threads the watchdog marked wedged are
    /// not joined — they may never return, and their late completions
    /// are already suppressed.
    pub fn shutdown(self, drain: bool) {
        if !drain {
            self.shared.abort.store(true, Ordering::SeqCst);
        }
        self.shared.queue.close();
        self.shared.watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(w) = self.watchdog {
            let _ = w.join();
        }
        let threads = std::mem::take(
            &mut *self
                .shared
                .threads
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        for (handle, wedged) in threads {
            if wedged.load(Ordering::SeqCst) {
                drop(handle);
            } else {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that arm fault injections: the fault registry is
    /// process-global, so a concurrently running test could steal an
    /// armed plan.
    static TEST_SERIAL: Mutex<()> = Mutex::new(());

    fn spec(id: &str, model: &str, config: &str, cells: usize, steps: usize) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant: "t".into(),
            model: ModelRef::Roster(model.into()),
            config: config.into(),
            cells,
            steps,
            dt: 0.01,
            chunk: 8,
            inject: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let mut s = spec("j1", "HodgkinHuxley", "avx512", 64, 32);
        s.inject = Some("verify-fail@7".into());
        s.deadline_ms = Some(2500);
        let encoded = s.to_json().to_string();
        let decoded = JobSpec::from_json(&Json::parse(&encoded).unwrap(), "fallback").unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn from_json_applies_defaults_and_validates() {
        let v = Json::parse(r#"{"model":"HodgkinHuxley"}"#).unwrap();
        let s = JobSpec::from_json(&v, "gen-1").unwrap();
        assert_eq!(s.id, "gen-1");
        assert_eq!(s.tenant, "anon");
        assert_eq!(s.config, "baseline");
        assert_eq!((s.cells, s.steps, s.chunk), (256, 100, 32));
        assert!(JobSpec::from_json(&Json::parse("{}").unwrap(), "x").is_err());
        let bad = Json::parse(r#"{"model":"HH","cells":0}"#).unwrap();
        assert!(JobSpec::from_json(&bad, "x").is_err());
        let bad = Json::parse(r#"{"model":"HH","config":"warp9"}"#).unwrap();
        assert!(JobSpec::from_json(&bad, "x").is_err());
    }

    #[test]
    fn config_shorthands_resolve() {
        assert_eq!(parse_config("baseline").unwrap().label(), "baseline");
        assert_eq!(
            parse_config("avx512").unwrap().label(),
            "limpetMLIR-AVX-512"
        );
        assert_eq!(
            parse_config("limpetMLIR-AoS-SSE").unwrap().label(),
            "limpetMLIR-AoS-SSE"
        );
        assert!(parse_config("warp9").is_err());
    }

    #[test]
    fn run_job_digest_matches_harness_driver() {
        let wl = Workload {
            n_cells: 32,
            steps: 12,
            dt: 0.01,
        };
        let m = limpet_models::model("HodgkinHuxley");
        let expected =
            limpet_harness::trajectory_digest(&m, PipelineKind::Baseline, &wl, wl.steps).unwrap();
        let outcome = run_job(
            &spec("d", "HodgkinHuxley", "baseline", wl.n_cells, wl.steps),
            &None,
            &RunCtl::default(),
        );
        assert_eq!(outcome.status, JobStatus::Done);
        assert_eq!(outcome.digest, Some(expected));
        assert_eq!(outcome.tier.as_deref(), Some("optimized"));
    }

    #[test]
    fn run_job_reports_unknown_model_and_bad_config() {
        let out = run_job(
            &spec("x", "NoSuchModel", "baseline", 4, 4),
            &None,
            &RunCtl::default(),
        );
        assert_eq!(out.status, JobStatus::Failed);
        assert!(out.error.as_deref().unwrap().contains("NoSuchModel"));
    }

    #[test]
    fn pool_runs_jobs_and_reports_done() {
        let done: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let done2 = Arc::clone(&done);
        let pool = Pool::new(
            PoolConfig {
                workers: 2,
                queue_cap: 8,
                ..PoolConfig::default()
            },
            move |spec, outcome| {
                assert_eq!(outcome.status, JobStatus::Done);
                done2.lock().unwrap().push(spec.id.clone());
            },
            |_, _| {},
        );
        for i in 0..4 {
            pool.submit(QueuedJob {
                spec: spec(&format!("j{i}"), "HodgkinHuxley", "baseline", 8, 4),
                outbox: None,
            })
            .unwrap();
        }
        pool.shutdown(true);
        let mut ids = done.lock().unwrap().clone();
        ids.sort();
        assert_eq!(ids, ["j0", "j1", "j2", "j3"]);
    }

    #[test]
    fn expired_budget_ends_job_as_deadline_with_whole_state() {
        let mut s = spec("dl", "HodgkinHuxley", "baseline", 8, 1000);
        s.deadline_ms = Some(1);
        let token = CancelToken::with_budget(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let out = run_job(
            &s,
            &None,
            &RunCtl {
                abort: None,
                token: Some(&token),
                heartbeat: None,
                ..RunCtl::default()
            },
        );
        assert_eq!(out.status, JobStatus::Deadline);
        assert_eq!(out.digest, None);
        assert!(out.error.as_deref().unwrap().contains("deadline-exceeded"));
        assert!(out.steps_run < 1000, "must stop early, not run to the end");
    }

    /// A job interrupted mid-trajectory (client gone → abort at a chunk
    /// boundary) must leave a durable snapshot, and a re-run of the same
    /// spec over the same store must resume from it — not step 0 — and
    /// finish with the digest an uninterrupted run produces.
    #[test]
    fn run_job_resumes_from_snapshot_bit_identically() {
        let _guard = TEST_SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        let dir = std::env::temp_dir().join(format!(
            "limpet-sched-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir).unwrap();
        let s = spec("ck", "HodgkinHuxley", "baseline", 16, 40);

        let clean = run_job(
            &spec("ck-ref", "HodgkinHuxley", "baseline", 16, 40),
            &None,
            &RunCtl::default(),
        );
        assert_eq!(clean.status, JobStatus::Done);

        // Interrupt: a reader that consumes two chunk events and then
        // closes its outbox, so the job aborts at the next boundary.
        let outbox = Arc::new(crate::queue::Bounded::new(1));
        let reader_outbox = Arc::clone(&outbox);
        let reader = std::thread::spawn(move || {
            for _ in 0..2 {
                let _ = reader_outbox.pop();
            }
            reader_outbox.close();
        });
        let interrupted = run_job(
            &s,
            &Some(Arc::clone(&outbox)),
            &RunCtl {
                store: Some(&store),
                ..RunCtl::default()
            },
        );
        reader.join().unwrap();
        assert_eq!(interrupted.status, JobStatus::Aborted);
        assert!(interrupted.steps_run < 40, "must have stopped mid-run");
        assert!(store.stats().saved >= 1, "abort must leave a snapshot");
        assert!(store.has("ck"), "snapshot file must exist for the job id");

        let resumed = run_job(
            &s,
            &None,
            &RunCtl {
                store: Some(&store),
                ..RunCtl::default()
            },
        );
        assert_eq!(resumed.status, JobStatus::Done);
        assert_eq!(
            resumed.digest, clean.digest,
            "resumed trajectory must be bit-identical to uninterrupted"
        );
        assert_eq!(resumed.steps_run, 40);
        assert!(
            store.stats().loaded_current >= 1,
            "completion must have come from a snapshot resume"
        );
        assert!(!store.has("ck"), "done must remove the snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_reclaims_wedged_worker_and_pool_keeps_serving() {
        let _guard = TEST_SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        faults::disarm_all();
        let done: Arc<Mutex<Vec<(String, JobStatus)>>> = Arc::new(Mutex::new(Vec::new()));
        let stalled: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let done2 = Arc::clone(&done);
        let stalled2 = Arc::clone(&stalled);
        let pool = Pool::new(
            PoolConfig {
                workers: 1,
                queue_cap: 8,
                default_deadline_ms: Some(50),
                watchdog: Some(Duration::from_millis(60)),
                ..PoolConfig::default()
            },
            move |spec, outcome| {
                done2
                    .lock()
                    .unwrap()
                    .push((spec.id.clone(), outcome.status))
            },
            move |spec, _reason| stalled2.lock().unwrap().push(spec.id.clone()),
        );
        // First job wedges its worker for ~2s, far past the 50ms budget;
        // the second job can only ever run if the watchdog reclaims the
        // worker and spawns a replacement.
        let mut hung = spec("hung", "HodgkinHuxley", "baseline", 8, 4);
        hung.inject = Some("worker-hang@2000".into());
        pool.submit(QueuedJob {
            spec: hung,
            outbox: None,
        })
        .unwrap();
        pool.submit(QueuedJob {
            spec: spec("after", "HodgkinHuxley", "baseline", 8, 4),
            outbox: None,
        })
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            {
                let d = done.lock().unwrap();
                if d.iter().any(|(id, _)| id == "after") && d.iter().any(|(id, _)| id == "hung") {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "pool never recovered: {done:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        {
            let d = done.lock().unwrap();
            let hung_status = d.iter().find(|(id, _)| id == "hung").unwrap().1;
            let after_status = d.iter().find(|(id, _)| id == "after").unwrap().1;
            assert_eq!(hung_status, JobStatus::Deadline);
            assert_eq!(after_status, JobStatus::Done);
            assert_eq!(d.len(), 2, "no double-report from the woken worker");
        }
        assert_eq!(stalled.lock().unwrap().as_slice(), ["hung"]);
        assert_eq!(pool.respawns(), 1);
        // The wedged thread is still sleeping; shutdown must not hang on
        // it (wedged threads are skipped at join).
        pool.shutdown(true);
        faults::disarm_all();
    }
}
