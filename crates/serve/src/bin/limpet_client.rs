//! `limpet-client`: a small scriptable client for `limpet-serve`.
//!
//! One connection, newline-delimited JSON both ways. The `drive` verb is
//! the CI workhorse: it submits a models × configs matrix as concurrent
//! jobs (round-robin over tenants), waits for every terminal event, and
//! prints a sorted `model,config,digest,tier` CSV comparable
//! byte-for-byte with `figures --digest` output.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::Duration;

use serve::Json;

const USAGE: &str = "\
limpet-client — scriptable client for limpet-serve

USAGE:
    limpet-client (--connect HOST:PORT | --unix PATH) VERB [OPTIONS]

VERBS:
    ping | health | stats | shutdown
                        one request, print the JSON response
    result --id ID      fetch a finished job's outcome
    checkpoint --id ID  ask the daemon to durably snapshot a running job
                        at its next chunk boundary; prints whether the
                        job is active and a snapshot already exists
    resume --id ID      re-admit a job from its durable snapshot (the
                        snapshot embeds the job spec) and stream its
                        events; the job continues from the recorded step
    submit --model M    run one job and stream its events
        [--config C] [--cells N] [--steps N] [--chunk N] [--tenant T]
        [--id ID] [--inject SPEC] [--source FILE] [--no-wait]
        [--deadline-ms N] per-job wall-clock budget
        [--slow-ms N]   sleep N ms after reading each event (a
                        deliberately slow reader, for backpressure tests)
    drive --models A,B  submit a models x configs matrix concurrently,
        --configs X,Y   wait for all, print a sorted
        [--tenants T1,T2] model,config,digest,tier CSV
        [--cells N] [--steps N] [--chunk N]
    flood --model M --count N [--tenant T] [--cells N] [--steps N]
                        submit N jobs back-to-back without waiting for
                        completion; print accepted/rejected tallies
    chaos --models A,B  seeded hostile-client soak: baseline digests,
        [--seed N]      then rounds of faulty submissions (slow-loris
        [--configs X,Y] writes, torn frames, mid-stream disconnects,
        [--tenants ..]  wedge-the-worker injections). Asserts the daemon
        [--rounds N]    stays up and every submitted job resolves, then
        [--kill-pid P   prints the baseline model,config,digest,tier CSV
         --respawn CMD] (comparable with `figures --digest` / drive).
        [--kill-steps N] With --kill-pid/--respawn: additionally SIGKILL
                        the daemon mid-trajectory, respawn it with CMD,
                        and assert the checkpointed job resumes to the
                        same digest an uninterrupted run produces
                        (victim length --kill-steps, default 4000)

RELIABILITY OPTIONS (all verbs):
    --retry N           reconnect attempts after a transport failure
                        (default 0). For submit, each retry first asks
                        `result` for the job id and only resubmits when
                        the daemon does not know the outcome — job ids
                        make resubmission idempotent.
    --resume            for submit: before resubmitting, ask the daemon
                        to `resume` the job from its durable snapshot so
                        a reconnect continues mid-trajectory instead of
                        recomputing from step 0 (implied on retries)
    --backoff MS        base delay for jittered exponential reconnect
                        backoff (default 50)
";

/// FNV-1a, for deriving deterministic per-id jitter seeds.
fn fnv64(data: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in data.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 — the chaos driver's deterministic PRNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn split(&self) -> std::io::Result<(Box<dyn BufRead>, Box<dyn Write>)> {
        Ok(match self {
            Conn::Tcp(s) => (
                Box::new(BufReader::new(s.try_clone()?)),
                Box::new(s.try_clone()?),
            ),
            Conn::Unix(s) => (
                Box::new(BufReader::new(s.try_clone()?)),
                Box::new(s.try_clone()?),
            ),
        })
    }
}

#[derive(Clone)]
struct Opts {
    flags: BTreeMap<String, String>,
}

impl Opts {
    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn num(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }
}

fn parse_cli() -> Result<(String, Opts), String> {
    let mut verb = None;
    let mut flags = BTreeMap::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if arg == "-h" || arg == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if let Some(key) = arg.strip_prefix("--") {
            let value = match key {
                // Boolean flags. `--chaos` doubles as the verb so the
                // soak driver reads naturally as `limpet-client --chaos`.
                "no-wait" | "chaos" | "resume" => "true".to_owned(),
                _ => args
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?,
            };
            flags.insert(key.to_owned(), value);
        } else if verb.is_none() {
            verb = Some(arg);
        } else {
            return Err(format!("unexpected argument '{arg}'"));
        }
    }
    if verb.is_none() && flags.contains_key("chaos") {
        verb = Some("chaos".to_owned());
    }
    let verb = verb.ok_or("missing verb (see --help)")?;
    Ok((verb, Opts { flags }))
}

fn connect(opts: &Opts) -> Result<Conn, String> {
    if let Some(path) = opts.get("unix") {
        return UnixStream::connect(path)
            .map(Conn::Unix)
            .map_err(|e| format!("connect {path}: {e}"));
    }
    let addr = opts.get("connect").ok_or("--connect or --unix required")?;
    TcpStream::connect(addr)
        .map(Conn::Tcp)
        .map_err(|e| format!("connect {addr}: {e}"))
}

/// [`connect`] with `--retry` reconnect attempts under jittered
/// exponential backoff (`--backoff` base, deterministic jitter keyed by
/// `seed` so two clients hammering a restarting daemon spread out).
fn connect_retry(opts: &Opts, seed: u64) -> Result<Conn, String> {
    let retry = opts.num("retry", 0)? as u32;
    let base = Duration::from_millis(opts.num("backoff", 50)?.max(1));
    let cap = base.saturating_mul(32);
    let mut last = String::new();
    for attempt in 0..=retry {
        if attempt > 0 {
            let delay = limpet_harness::backoff_delay(attempt, base, cap, seed);
            eprintln!(
                "limpet-client: {last}; reconnecting in {delay:?} (attempt {attempt}/{retry})"
            );
            std::thread::sleep(delay);
        }
        match connect(opts) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
    }
    Err(format!("giving up after {} attempt(s): {last}", retry + 1))
}

fn job_json(
    opts: &Opts,
    id: &str,
    model: &str,
    config: &str,
    tenant: &str,
) -> Result<Json, String> {
    let mut fields = vec![
        ("verb", Json::str("submit")),
        ("id", Json::str(id)),
        ("tenant", Json::str(tenant)),
        ("model", Json::str(model)),
        ("config", Json::str(config)),
        ("cells", opts.num("cells", 256)?.into()),
        ("steps", opts.num("steps", 100)?.into()),
        ("chunk", opts.num("chunk", 32)?.into()),
    ];
    if let Some(path) = opts.get("source") {
        let src = std::fs::read_to_string(path).map_err(|e| format!("--source {path}: {e}"))?;
        fields.push(("source", Json::str(&src)));
    }
    if let Some(spec) = opts.get("inject") {
        fields.push(("inject", Json::str(spec)));
    }
    if let Some(ms) = opts.get("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
        fields.push(("deadline_ms", ms.into()));
    }
    Ok(Json::obj(fields))
}

/// A connected reader/writer pair with line-oriented helpers.
struct Wire {
    reader: Box<dyn BufRead>,
    writer: Box<dyn Write>,
}

impl Wire {
    fn open(opts: &Opts, seed: u64) -> Result<Wire, String> {
        let conn = connect_retry(opts, seed)?;
        let (reader, writer) = conn.split().map_err(|e| e.to_string())?;
        Ok(Wire { reader, writer })
    }

    /// One connection attempt, no retry — for deliberately disposable
    /// connections (torn frames, mid-stream disconnects).
    fn open_once(opts: &Opts) -> Result<Wire, String> {
        let conn = connect(opts)?;
        let (reader, writer) = conn.split().map_err(|e| e.to_string())?;
        Ok(Wire { reader, writer })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))
    }

    /// Sends `line` a few bytes at a time with pauses between flushes —
    /// a valid but deliberately slow (slow-loris-shaped) writer.
    fn send_slowly(&mut self, line: &str, pause: Duration) -> Result<(), String> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        for chunk in bytes.chunks(7) {
            self.writer
                .write_all(chunk)
                .and_then(|()| self.writer.flush())
                .map_err(|e| format!("send: {e}"))?;
            std::thread::sleep(pause);
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Json>, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return Json::parse(line.trim())
                .map(Some)
                .map_err(|e| format!("bad response: {e}"));
        }
    }
}

enum SubmitError {
    /// The daemon answered and the answer is bad — retrying cannot help.
    Fatal(String),
    /// The transport failed; a reconnect may succeed.
    Transport(String),
}

/// `submit --retry N`: survives transport failures by reconnecting under
/// jittered backoff. Every retry first asks `result` for the job id —
/// the daemon may have finished (or journaled and resumed) the job while
/// the client was away — and only resubmits when the outcome is unknown.
/// The stable job id makes resubmission idempotent: at worst the same
/// deterministic job runs twice, with one recorded outcome per id.
fn submit_resilient(opts: &Opts) -> Result<(), String> {
    let retry = opts.num("retry", 0)? as u32;
    let base = Duration::from_millis(opts.num("backoff", 50)?.max(1));
    let model = opts
        .get("model")
        .ok_or("submit requires --model")?
        .to_owned();
    let config = opts.get("config").unwrap_or("baseline").to_owned();
    let tenant = opts.get("tenant").unwrap_or("anon").to_owned();
    let id = match opts.get("id") {
        Some(id) if !id.is_empty() => id.to_owned(),
        _ => {
            // Stable for this invocation, distinct across invocations.
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            format!("cli-{}-{nanos:x}", std::process::id())
        }
    };
    let seed = fnv64(&id);
    let wait = opts.get("no-wait").is_none();
    let mut last = String::new();
    for attempt in 0..=retry {
        if attempt > 0 {
            let delay = limpet_harness::backoff_delay(attempt, base, base.saturating_mul(32), seed);
            eprintln!(
                "limpet-client: {last}; retrying job '{id}' in {delay:?} (attempt {attempt}/{retry})"
            );
            std::thread::sleep(delay);
        }
        match submit_attempt(opts, &id, &model, &config, &tenant, wait, attempt > 0) {
            Ok(()) => return Ok(()),
            Err(SubmitError::Fatal(e)) => return Err(e),
            Err(SubmitError::Transport(e)) => last = e,
        }
    }
    Err(format!(
        "job '{id}' unresolved after {} attempt(s): {last}",
        retry + 1
    ))
}

fn submit_attempt(
    opts: &Opts,
    id: &str,
    model: &str,
    config: &str,
    tenant: &str,
    wait: bool,
    retrying: bool,
) -> Result<(), SubmitError> {
    let mut wire = Wire::open_once(opts).map_err(SubmitError::Transport)?;
    if retrying {
        let req = Json::obj(vec![("verb", Json::str("result")), ("id", Json::str(id))]);
        wire.send(&req.to_string())
            .map_err(SubmitError::Transport)?;
        match wire.recv().map_err(SubmitError::Transport)? {
            None => return Err(SubmitError::Transport("connection closed".into())),
            Some(v) if v.get("event").and_then(Json::as_str) == Some("done") => {
                println!("{v}");
                return finish_done(&v).map_err(SubmitError::Fatal);
            }
            Some(_) => {} // pending/unknown: fall through to resume/resubmit
        }
    }
    if retrying || opts.get("resume").is_some() {
        // Before recomputing from step 0, ask the daemon to continue the
        // job from its durable mid-trajectory snapshot. An `error` reply
        // (no snapshot / checkpointing disabled) falls back to a plain
        // resubmit — bit-identical either way, just more recomputation.
        let req = Json::obj(vec![("verb", Json::str("resume")), ("id", Json::str(id))]);
        wire.send(&req.to_string())
            .map_err(SubmitError::Transport)?;
        match wire.recv().map_err(SubmitError::Transport)? {
            None => return Err(SubmitError::Transport("connection closed".into())),
            Some(v) => match v.get("event").and_then(Json::as_str).unwrap_or("") {
                "accepted" => {
                    println!("{v}");
                    if !wait {
                        return Ok(());
                    }
                    return stream_to_done(&mut wire);
                }
                "rejected" => return Err(SubmitError::Fatal(format!("resume not admitted: {v}"))),
                _ => {} // error: nothing durable to resume — resubmit
            },
        }
    }
    let req = job_json(opts, id, model, config, tenant).map_err(SubmitError::Fatal)?;
    wire.send(&req.to_string())
        .map_err(SubmitError::Transport)?;
    loop {
        match wire.recv().map_err(SubmitError::Transport)? {
            None => {
                return Err(SubmitError::Transport(
                    "connection closed mid-stream".into(),
                ))
            }
            Some(v) => {
                println!("{v}");
                match v.get("event").and_then(Json::as_str).unwrap_or("") {
                    "rejected" | "error" => {
                        return Err(SubmitError::Fatal(format!("job not accepted: {v}")))
                    }
                    "accepted" if !wait => return Ok(()),
                    "done" => return finish_done(&v).map_err(SubmitError::Fatal),
                    _ => {}
                }
            }
        }
    }
}

/// Drains an already-accepted job's event stream to its `done` event.
fn stream_to_done(wire: &mut Wire) -> Result<(), SubmitError> {
    loop {
        match wire.recv().map_err(SubmitError::Transport)? {
            None => {
                return Err(SubmitError::Transport(
                    "connection closed mid-stream".into(),
                ))
            }
            Some(v) => {
                println!("{v}");
                if v.get("event").and_then(Json::as_str) == Some("done") {
                    return finish_done(&v).map_err(SubmitError::Fatal);
                }
            }
        }
    }
}

fn finish_done(v: &Json) -> Result<(), String> {
    if v.get("status").and_then(Json::as_str) == Some("done") {
        Ok(())
    } else {
        Err(format!("job ended badly: {v}"))
    }
}

fn list(opts: &Opts, key: &str) -> Option<Vec<String>> {
    opts.get(key).map(|s| {
        s.split(',')
            .filter(|x| !x.is_empty())
            .map(str::to_owned)
            .collect()
    })
}

#[derive(Default)]
struct ChaosTally {
    resolved: u64,
    clean: u64,
    slow: u64,
    torn: u64,
    dropped: u64,
    wedged: u64,
    killed: u64,
}

impl ChaosTally {
    fn add(&mut self, o: &ChaosTally) {
        self.resolved += o.resolved;
        self.clean += o.clean;
        self.slow += o.slow;
        self.torn += o.torn;
        self.dropped += o.dropped;
        self.wedged += o.wedged;
        self.killed += o.killed;
    }
}

fn submit_and_wait(wire: &mut Wire, req: &Json) -> Result<Json, String> {
    wire.send(&req.to_string())?;
    let id = req
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_owned();
    wait_done(wire, &id)
}

fn wait_done(wire: &mut Wire, id: &str) -> Result<Json, String> {
    loop {
        let v = wire
            .recv()?
            .ok_or_else(|| format!("connection closed waiting for '{id}'"))?;
        match v.get("event").and_then(Json::as_str) {
            Some("rejected") | Some("error") => return Err(format!("job '{id}' refused: {v}")),
            Some("done") if v.get("id").and_then(Json::as_str) == Some(id) => return Ok(v),
            _ => {}
        }
    }
}

fn check_done_digest(v: &Json, expect: Option<&String>) -> Result<(), String> {
    if v.get("status").and_then(Json::as_str) != Some("done") {
        return Err(format!("job ended badly: {v}"));
    }
    let digest = v
        .get("digest")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("done without digest: {v}"))?;
    if let Some(e) = expect {
        if digest != e {
            return Err(format!("digest mismatch: got {digest}, baseline {e}: {v}"));
        }
    }
    Ok(())
}

/// Polls `result --id` until the outcome is known. `Ok(None)` after the
/// attempt budget means the daemon never learned a terminal outcome (the
/// caller resubmits — stable ids make that idempotent).
fn poll_result(
    opts: &Opts,
    id: &str,
    pause: Duration,
    attempts: u32,
) -> Result<Option<Json>, String> {
    let mut wire = Wire::open(opts, fnv64(id))?;
    for _ in 0..attempts {
        let req = Json::obj(vec![("verb", Json::str("result")), ("id", Json::str(id))]);
        wire.send(&req.to_string())?;
        match wire.recv()? {
            None => return Err("connection closed during result poll".into()),
            Some(v) if v.get("event").and_then(Json::as_str) == Some("done") => return Ok(Some(v)),
            Some(_) => std::thread::sleep(pause),
        }
    }
    Ok(None)
}

/// One tenant's chaos thread: `rounds` passes over the model × config
/// matrix, each job with a PRNG-chosen hostile flavor. Returns the tally
/// or the first hard failure (unresolved job, digest mismatch, refusal).
fn chaos_tenant(
    opts: &Opts,
    tenant: &str,
    models: &[String],
    configs: &[String],
    baseline: &BTreeMap<(String, String), String>,
    rounds: u64,
    rng: &mut u64,
) -> Result<ChaosTally, String> {
    let mut tally = ChaosTally::default();
    let mut wire = Wire::open(opts, fnv64(tenant))?;
    for round in 0..rounds {
        for model in models {
            for config in configs {
                let flavor = splitmix(rng) % 8;
                let id = format!("c{round}|{tenant}|{model}|{config}|{flavor}");
                let expect = baseline.get(&(model.clone(), config.clone()));
                let mut req = job_json(opts, &id, model, config, tenant)?;
                match flavor {
                    2 => {
                        // Torn frame: half a submit line, then vanish.
                        // The daemon never sees a full frame, so nothing
                        // was submitted; follow up with a clean run so
                        // this slot still produces a digest.
                        if let Ok(mut torn) = Wire::open_once(opts) {
                            let line = req.to_string();
                            let _ = torn.writer.write_all(&line.as_bytes()[..line.len() / 2]);
                            let _ = torn.writer.flush();
                        }
                        tally.torn += 1;
                        let v = submit_and_wait(&mut wire, &req)?;
                        check_done_digest(&v, expect)?;
                        tally.resolved += 1;
                    }
                    3 | 7 => {
                        // Mid-stream disconnect: get the job accepted on
                        // a throwaway connection, then vanish. The
                        // daemon aborts the orphan; recovery goes
                        // through `result` polling, with an idempotent
                        // resubmit if the outcome never materializes.
                        {
                            let mut drop_wire = Wire::open_once(opts)?;
                            drop_wire.send(&req.to_string())?;
                            loop {
                                let v = drop_wire.recv()?.ok_or("closed before job acceptance")?;
                                match v.get("event").and_then(Json::as_str) {
                                    Some("accepted") => break,
                                    Some("rejected") | Some("error") => {
                                        return Err(format!("chaos job refused: {v}"))
                                    }
                                    _ => {}
                                }
                            }
                        }
                        let outcome = match poll_result(opts, &id, Duration::from_millis(50), 200)?
                        {
                            Some(v) => v,
                            None => submit_and_wait(&mut wire, &req)?,
                        };
                        // Aborted is a legitimate resolution for an
                        // abandoned job; a completed one must agree with
                        // the baseline bit-for-bit.
                        if outcome.get("status").and_then(Json::as_str) == Some("done") {
                            check_done_digest(&outcome, expect)?;
                        }
                        tally.dropped += 1;
                        tally.resolved += 1;
                    }
                    4 => {
                        // Wedge the worker: a non-cooperative hang with a
                        // short budget; only the daemon's watchdog can
                        // resolve this one.
                        if let Json::Obj(map) = &mut req {
                            map.insert("inject".into(), Json::str("worker-hang@2500"));
                            map.insert("deadline_ms".into(), 200.0.into());
                        }
                        let v = submit_and_wait(&mut wire, &req)?;
                        match v.get("status").and_then(Json::as_str) {
                            Some("deadline") => {}
                            // A concurrent job can steal the armed hang;
                            // a clean finish is also a resolution.
                            Some("done") => check_done_digest(&v, expect)?,
                            other => return Err(format!("wedged job '{id}' ended {other:?}: {v}")),
                        }
                        tally.wedged += 1;
                        tally.resolved += 1;
                    }
                    1 | 6 => {
                        wire.send_slowly(&req.to_string(), Duration::from_millis(2))?;
                        let v = wait_done(&mut wire, &id)?;
                        check_done_digest(&v, expect)?;
                        tally.slow += 1;
                        tally.resolved += 1;
                    }
                    _ => {
                        let v = submit_and_wait(&mut wire, &req)?;
                        check_done_digest(&v, expect)?;
                        tally.clean += 1;
                        tally.resolved += 1;
                    }
                }
            }
        }
    }
    Ok(tally)
}

/// The chaos soak's kill -9 flavor. Runs one long "victim" job, SIGKILLs
/// the daemon (`--kill-pid`) after a couple of streamed chunks — no
/// journal `done` line, no final snapshot, only the cadence checkpoints
/// survive — respawns it with `--respawn` (a shell command that must
/// reuse the same journal/snapshot dirs and listen address), and asserts:
///
/// 1. the respawned daemon's journal replay resumes the victim from its
///    durable snapshot (survivability `resumes` goes positive), and
/// 2. the resumed run's digest equals a clean uninterrupted run of the
///    identical spec, bit for bit.
fn kill_and_resume(opts: &Opts, model: &str, config: &str, tenant: &str) -> Result<(), String> {
    let pid = opts.get("kill-pid").expect("caller checked");
    let respawn = opts
        .get("respawn")
        .ok_or("--kill-pid requires --respawn CMD")?;
    let steps = opts.num("kill-steps", 4000)?;
    let with_steps = |mut req: Json| -> Json {
        if let Json::Obj(map) = &mut req {
            map.insert("steps".into(), steps.into());
        }
        req
    };

    // Uninterrupted reference digest for the victim's exact spec.
    let mut wire = Wire::open(opts, fnv64("kill-ref"))?;
    let ref_req = with_steps(job_json(opts, "chaos-kill-ref", model, config, tenant)?);
    let v = submit_and_wait(&mut wire, &ref_req)?;
    check_done_digest(&v, None)?;
    let expect = v
        .get("digest")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_owned();

    // The victim: wait for acceptance and a couple of chunk events so the
    // daemon has durably checkpointed mid-trajectory state, then SIGKILL.
    let victim = "chaos-kill-victim";
    let req = with_steps(job_json(opts, victim, model, config, tenant)?);
    {
        let mut w = Wire::open_once(opts)?;
        w.send(&req.to_string())?;
        let mut chunks = 0u32;
        loop {
            let v = w.recv()?.ok_or("daemon closed before the kill point")?;
            match v.get("event").and_then(Json::as_str) {
                Some("rejected") | Some("error") => {
                    return Err(format!("kill victim refused: {v}"))
                }
                Some("chunk") => {
                    chunks += 1;
                    if chunks >= 2 {
                        break;
                    }
                }
                Some("done") => {
                    return Err(format!(
                        "kill victim finished before the kill; raise --kill-steps (ran {steps})"
                    ))
                }
                _ => {}
            }
        }
    }
    let killed = std::process::Command::new("kill")
        .args(["-9", pid])
        .status()
        .map_err(|e| format!("kill -9 {pid}: {e}"))?;
    if !killed.success() {
        return Err(format!("kill -9 {pid} failed: {killed}"));
    }
    eprintln!("chaos: killed daemon pid {pid} mid-trajectory; respawning");
    std::thread::sleep(Duration::from_millis(200));
    std::process::Command::new("sh")
        .args(["-c", respawn])
        .spawn()
        .map_err(|e| format!("respawn '{respawn}': {e}"))?;

    // Wait for the respawned daemon to answer, then for the journal
    // replay to finish the resumed victim headless.
    let mut alive = false;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(100));
        if let Ok(mut w) = Wire::open_once(opts) {
            if w.send(r#"{"verb":"ping"}"#).is_ok() {
                if let Ok(Some(v)) = w.recv() {
                    if v.get("event").and_then(Json::as_str) == Some("pong") {
                        alive = true;
                        break;
                    }
                }
            }
        }
    }
    if !alive {
        return Err("respawned daemon never answered ping".into());
    }
    let outcome = poll_result(opts, victim, Duration::from_millis(100), 600)?
        .ok_or("kill victim never resolved after the daemon respawn")?;
    if outcome.get("status").and_then(Json::as_str) != Some("done") {
        return Err(format!("resumed kill victim ended badly: {outcome}"));
    }
    check_done_digest(&outcome, Some(&expect))?;

    // The digest match proves bit-identity; the survivability counter
    // proves it came from a snapshot rather than a silent step-0 re-run.
    let mut w = Wire::open(opts, fnv64("kill-stats"))?;
    w.send(r#"{"verb":"stats"}"#)?;
    let stats = w.recv()?.ok_or("connection closed reading stats")?;
    let resumes = stats
        .get("survivability")
        .and_then(|s| s.get("resumes"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if resumes == 0 {
        return Err("daemon reports zero snapshot resumes after the kill".into());
    }
    eprintln!(
        "chaos: victim resumed from durable snapshot and matched the uninterrupted digest {expect}"
    );
    Ok(())
}

/// The seeded hostile-client soak (`--chaos`). Three phases:
///
/// 1. **Baseline** — one clean submission per model × config records the
///    reference digest.
/// 2. **Chaos rounds** — one thread per tenant, each submitting the full
///    matrix per round with PRNG-chosen hostile flavors: clean,
///    slow-loris writes, torn frames, mid-stream disconnects recovered
///    via `result`, and wedge-the-worker injections that must end as
///    `deadline`.
/// 3. **Verdict** — the daemon must still answer `ping`, every submitted
///    job must have resolved, and every digest observed must equal the
///    baseline bit-for-bit.
///
/// Prints the baseline CSV (sorted `model,config,digest`) on stdout —
/// byte-comparable with `drive` and `figures --digest` — and a summary
/// on stderr. Any leak, mismatch, or daemon death is a hard error.
fn chaos(opts: &Opts) -> Result<(), String> {
    let seed = opts.num("seed", 1)?;
    let rounds = opts.num("rounds", 2)?;
    let models = list(opts, "models").ok_or("chaos requires --models")?;
    let configs = list(opts, "configs").unwrap_or_else(|| vec!["baseline".to_owned()]);
    let tenants =
        list(opts, "tenants").unwrap_or_else(|| vec!["chaos-a".to_owned(), "chaos-b".to_owned()]);

    // Phase 1: baseline digests (and finishing tiers) over one clean
    // connection.
    let mut baseline: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut tiers: BTreeMap<(String, String), String> = BTreeMap::new();
    {
        let mut wire = Wire::open(opts, seed)?;
        for model in &models {
            for config in &configs {
                let id = format!("base|{model}|{config}");
                let req = job_json(opts, &id, model, config, &tenants[0])?;
                let v = submit_and_wait(&mut wire, &req)?;
                check_done_digest(&v, None)?;
                let digest = v.get("digest").and_then(Json::as_str).unwrap().to_owned();
                let tier = v
                    .get("tier")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned();
                baseline.insert((model.clone(), config.clone()), digest);
                tiers.insert((model.clone(), config.clone()), tier);
            }
        }
    }

    // Phase 2: chaos rounds, one thread per tenant.
    let mut handles = Vec::new();
    for (ti, tenant) in tenants.iter().enumerate() {
        let opts = opts.clone();
        let tenant = tenant.clone();
        let models = models.clone();
        let configs = configs.clone();
        let baseline = baseline.clone();
        let mut rng = seed ^ ((ti as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
        handles.push(std::thread::spawn(move || {
            chaos_tenant(
                &opts, &tenant, &models, &configs, &baseline, rounds, &mut rng,
            )
        }));
    }
    let mut tally = ChaosTally::default();
    for h in handles {
        let t = h.join().map_err(|_| "chaos thread panicked".to_owned())??;
        tally.add(&t);
    }

    // Phase 2.5 (opt-in): SIGKILL the daemon mid-trajectory, respawn it,
    // and prove the checkpointed victim resumes to the digest an
    // uninterrupted run produces. Runs after the tenant threads so the
    // kill cannot abort their in-flight jobs.
    if opts.get("kill-pid").is_some() {
        kill_and_resume(opts, &models[0], &configs[0], &tenants[0])?;
        tally.killed += 1;
    }

    // Phase 3: the daemon must still be alive and answering.
    let mut wire = Wire::open(opts, seed ^ 0xff)?;
    wire.send(r#"{"verb":"ping"}"#)?;
    match wire.recv()? {
        Some(v) if v.get("event").and_then(Json::as_str) == Some("pong") => {}
        other => return Err(format!("daemon not answering ping after chaos: {other:?}")),
    }

    eprintln!(
        "chaos: seed={seed} rounds={rounds} tenants={} resolved={} \
         (clean={} slow={} torn={} dropped={} wedged={} killed={})",
        tenants.len(),
        tally.resolved,
        tally.clean,
        tally.slow,
        tally.torn,
        tally.dropped,
        tally.wedged,
        tally.killed
    );
    println!("model,config,digest,tier");
    for ((model, config), digest) in &baseline {
        let tier = tiers
            .get(&(model.clone(), config.clone()))
            .map(String::as_str)
            .unwrap_or("");
        println!("{model},{config},{digest},{tier}");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let (verb, opts) = parse_cli()?;
    if verb == "chaos" {
        return chaos(&opts);
    }
    if verb == "submit" && (opts.num("retry", 0)? > 0 || opts.get("resume").is_some()) {
        return submit_resilient(&opts);
    }
    let conn = connect_retry(&opts, 0x636c69)?;
    let (mut reader, mut writer) = conn.split().map_err(|e| e.to_string())?;
    let slow_ms = opts.num("slow-ms", 0)?;
    let mut send = |line: &str| -> Result<(), String> {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))
    };
    let recv = |reader: &mut Box<dyn BufRead>| -> Result<Option<Json>, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            if slow_ms > 0 {
                std::thread::sleep(Duration::from_millis(slow_ms));
            }
            return Json::parse(line.trim())
                .map(Some)
                .map_err(|e| format!("bad response: {e}"));
        }
    };

    match verb.as_str() {
        "ping" | "health" | "stats" | "shutdown" => {
            send(&Json::obj(vec![("verb", Json::str(&verb))]).to_string())?;
            match recv(&mut reader)? {
                Some(v) => println!("{v}"),
                None => return Err("connection closed before response".into()),
            }
        }
        "result" | "checkpoint" => {
            let id = opts.get("id").ok_or("result/checkpoint requires --id")?;
            let req = Json::obj(vec![("verb", Json::str(&verb)), ("id", Json::str(id))]);
            send(&req.to_string())?;
            match recv(&mut reader)? {
                Some(v) => println!("{v}"),
                None => return Err("connection closed before response".into()),
            }
        }
        "resume" => {
            let id = opts.get("id").ok_or("resume requires --id")?;
            let req = Json::obj(vec![("verb", Json::str("resume")), ("id", Json::str(id))]);
            send(&req.to_string())?;
            let wait = opts.get("no-wait").is_none();
            while let Some(v) = recv(&mut reader)? {
                println!("{v}");
                let event = v.get("event").and_then(Json::as_str).unwrap_or("");
                if matches!(event, "rejected" | "error") {
                    return Err(format!("resume refused: {v}"));
                }
                if !wait && event == "accepted" {
                    break;
                }
                if event == "done" {
                    if v.get("status").and_then(Json::as_str) != Some("done") {
                        return Err(format!("resumed job ended badly: {v}"));
                    }
                    break;
                }
            }
        }
        "submit" => {
            let model = opts.get("model").ok_or("submit requires --model")?;
            let config = opts.get("config").unwrap_or("baseline");
            let tenant = opts.get("tenant").unwrap_or("anon");
            let id = opts.get("id").map(str::to_owned).unwrap_or_default();
            let req = job_json(&opts, &id, model, config, tenant)?;
            send(&req.to_string())?;
            let wait = opts.get("no-wait").is_none();
            while let Some(v) = recv(&mut reader)? {
                println!("{v}");
                let event = v.get("event").and_then(Json::as_str).unwrap_or("");
                if matches!(event, "rejected" | "error") {
                    return Err(format!("job not accepted: {v}"));
                }
                if !wait && event == "accepted" {
                    break;
                }
                if event == "done" {
                    if v.get("status").and_then(Json::as_str) != Some("done") {
                        return Err(format!("job ended badly: {v}"));
                    }
                    break;
                }
            }
        }
        "drive" => {
            let models: Vec<&str> = opts
                .get("models")
                .ok_or("drive requires --models")?
                .split(',')
                .filter(|s| !s.is_empty())
                .collect();
            let configs: Vec<&str> = opts
                .get("configs")
                .ok_or("drive requires --configs")?
                .split(',')
                .filter(|s| !s.is_empty())
                .collect();
            let tenants: Vec<&str> = opts
                .get("tenants")
                .unwrap_or("anon")
                .split(',')
                .filter(|s| !s.is_empty())
                .collect();
            let mut pending = Vec::new();
            let mut i = 0usize;
            for model in &models {
                for config in &configs {
                    let id = format!("{model}|{config}");
                    let tenant = tenants[i % tenants.len()];
                    send(&job_json(&opts, &id, model, config, tenant)?.to_string())?;
                    pending.push(id);
                    i += 1;
                }
            }
            let mut rows = Vec::new();
            while !pending.is_empty() {
                let Some(v) = recv(&mut reader)? else {
                    return Err(format!(
                        "connection closed with {} job(s) pending",
                        pending.len()
                    ));
                };
                let event = v.get("event").and_then(Json::as_str).unwrap_or("");
                if matches!(event, "rejected" | "error") {
                    return Err(format!("drive job refused: {v}"));
                }
                if event != "done" {
                    continue;
                }
                let id = v.get("id").and_then(Json::as_str).unwrap_or("").to_owned();
                if v.get("status").and_then(Json::as_str) != Some("done") {
                    return Err(format!("drive job ended badly: {v}"));
                }
                let digest = v
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("done event without digest: {v}"))?
                    .to_owned();
                let tier = v
                    .get("tier")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned();
                let (model, config) = id
                    .split_once('|')
                    .ok_or_else(|| format!("unexpected job id '{id}'"))?;
                rows.push(format!("{model},{config},{digest},{tier}"));
                pending.retain(|p| p != &id);
            }
            rows.sort();
            println!("model,config,digest,tier");
            for row in rows {
                println!("{row}");
            }
        }
        "flood" => {
            let model = opts.get("model").ok_or("flood requires --model")?;
            let tenant = opts.get("tenant").unwrap_or("anon");
            let count = opts.num("count", 8)?;
            for i in 0..count {
                let req = job_json(&opts, &format!("flood-{i}"), model, "baseline", tenant)?;
                send(&req.to_string())?;
            }
            let (mut accepted, mut rejected_by_code) = (0u64, BTreeMap::<u64, u64>::new());
            let mut seen = 0;
            while seen < count {
                let Some(v) = recv(&mut reader)? else { break };
                match v.get("event").and_then(Json::as_str) {
                    Some("accepted") => {
                        accepted += 1;
                        seen += 1;
                    }
                    Some("rejected") => {
                        let code = v.get("code").and_then(Json::as_u64).unwrap_or(0);
                        *rejected_by_code.entry(code).or_default() += 1;
                        seen += 1;
                    }
                    _ => {}
                }
            }
            println!("accepted {accepted}");
            for (code, n) in rejected_by_code {
                println!("rejected-{code} {n}");
            }
        }
        other => return Err(format!("unknown verb '{other}' (see --help)")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("limpet-client: {e}");
            ExitCode::FAILURE
        }
    }
}
