//! `limpet-client`: a small scriptable client for `limpet-serve`.
//!
//! One connection, newline-delimited JSON both ways. The `drive` verb is
//! the CI workhorse: it submits a models × configs matrix as concurrent
//! jobs (round-robin over tenants), waits for every terminal event, and
//! prints a sorted `model,config,digest` CSV comparable byte-for-byte
//! with `figures --digest` output.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::Duration;

use serve::Json;

const USAGE: &str = "\
limpet-client — scriptable client for limpet-serve

USAGE:
    limpet-client (--connect HOST:PORT | --unix PATH) VERB [OPTIONS]

VERBS:
    ping | health | stats | shutdown
                        one request, print the JSON response
    result --id ID      fetch a finished job's outcome
    submit --model M    run one job and stream its events
        [--config C] [--cells N] [--steps N] [--chunk N] [--tenant T]
        [--id ID] [--inject SPEC] [--source FILE] [--no-wait]
        [--slow-ms N]   sleep N ms after reading each event (a
                        deliberately slow reader, for backpressure tests)
    drive --models A,B  submit a models x configs matrix concurrently,
        --configs X,Y   wait for all, print sorted model,config,digest CSV
        [--tenants T1,T2] [--cells N] [--steps N] [--chunk N]
    flood --model M --count N [--tenant T] [--cells N] [--steps N]
                        submit N jobs back-to-back without waiting for
                        completion; print accepted/rejected tallies
";

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn split(&self) -> std::io::Result<(Box<dyn BufRead>, Box<dyn Write>)> {
        Ok(match self {
            Conn::Tcp(s) => (
                Box::new(BufReader::new(s.try_clone()?)),
                Box::new(s.try_clone()?),
            ),
            Conn::Unix(s) => (
                Box::new(BufReader::new(s.try_clone()?)),
                Box::new(s.try_clone()?),
            ),
        })
    }
}

struct Opts {
    flags: BTreeMap<String, String>,
}

impl Opts {
    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn num(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }
}

fn parse_cli() -> Result<(String, Opts), String> {
    let mut verb = None;
    let mut flags = BTreeMap::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if arg == "-h" || arg == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if let Some(key) = arg.strip_prefix("--") {
            let value = match key {
                // Boolean flags.
                "no-wait" => "true".to_owned(),
                _ => args
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?,
            };
            flags.insert(key.to_owned(), value);
        } else if verb.is_none() {
            verb = Some(arg);
        } else {
            return Err(format!("unexpected argument '{arg}'"));
        }
    }
    let verb = verb.ok_or("missing verb (see --help)")?;
    Ok((verb, Opts { flags }))
}

fn connect(opts: &Opts) -> Result<Conn, String> {
    if let Some(path) = opts.get("unix") {
        return UnixStream::connect(path)
            .map(Conn::Unix)
            .map_err(|e| format!("connect {path}: {e}"));
    }
    let addr = opts.get("connect").ok_or("--connect or --unix required")?;
    TcpStream::connect(addr)
        .map(Conn::Tcp)
        .map_err(|e| format!("connect {addr}: {e}"))
}

fn job_json(
    opts: &Opts,
    id: &str,
    model: &str,
    config: &str,
    tenant: &str,
) -> Result<Json, String> {
    let mut fields = vec![
        ("verb", Json::str("submit")),
        ("id", Json::str(id)),
        ("tenant", Json::str(tenant)),
        ("model", Json::str(model)),
        ("config", Json::str(config)),
        ("cells", opts.num("cells", 256)?.into()),
        ("steps", opts.num("steps", 100)?.into()),
        ("chunk", opts.num("chunk", 32)?.into()),
    ];
    if let Some(path) = opts.get("source") {
        let src = std::fs::read_to_string(path).map_err(|e| format!("--source {path}: {e}"))?;
        fields.push(("source", Json::str(&src)));
    }
    if let Some(spec) = opts.get("inject") {
        fields.push(("inject", Json::str(spec)));
    }
    Ok(Json::obj(fields))
}

fn run() -> Result<(), String> {
    let (verb, opts) = parse_cli()?;
    let conn = connect(&opts)?;
    let (mut reader, mut writer) = conn.split().map_err(|e| e.to_string())?;
    let slow_ms = opts.num("slow-ms", 0)?;
    let mut send = |line: &str| -> Result<(), String> {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))
    };
    let recv = |reader: &mut Box<dyn BufRead>| -> Result<Option<Json>, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            if slow_ms > 0 {
                std::thread::sleep(Duration::from_millis(slow_ms));
            }
            return Json::parse(line.trim())
                .map(Some)
                .map_err(|e| format!("bad response: {e}"));
        }
    };

    match verb.as_str() {
        "ping" | "health" | "stats" | "shutdown" => {
            send(&Json::obj(vec![("verb", Json::str(&verb))]).to_string())?;
            match recv(&mut reader)? {
                Some(v) => println!("{v}"),
                None => return Err("connection closed before response".into()),
            }
        }
        "result" => {
            let id = opts.get("id").ok_or("result requires --id")?;
            let req = Json::obj(vec![("verb", Json::str("result")), ("id", Json::str(id))]);
            send(&req.to_string())?;
            match recv(&mut reader)? {
                Some(v) => println!("{v}"),
                None => return Err("connection closed before response".into()),
            }
        }
        "submit" => {
            let model = opts.get("model").ok_or("submit requires --model")?;
            let config = opts.get("config").unwrap_or("baseline");
            let tenant = opts.get("tenant").unwrap_or("anon");
            let id = opts.get("id").map(str::to_owned).unwrap_or_default();
            let req = job_json(&opts, &id, model, config, tenant)?;
            send(&req.to_string())?;
            let wait = opts.get("no-wait").is_none();
            while let Some(v) = recv(&mut reader)? {
                println!("{v}");
                let event = v.get("event").and_then(Json::as_str).unwrap_or("");
                if matches!(event, "rejected" | "error") {
                    return Err(format!("job not accepted: {v}"));
                }
                if !wait && event == "accepted" {
                    break;
                }
                if event == "done" {
                    if v.get("status").and_then(Json::as_str) != Some("done") {
                        return Err(format!("job ended badly: {v}"));
                    }
                    break;
                }
            }
        }
        "drive" => {
            let models: Vec<&str> = opts
                .get("models")
                .ok_or("drive requires --models")?
                .split(',')
                .filter(|s| !s.is_empty())
                .collect();
            let configs: Vec<&str> = opts
                .get("configs")
                .ok_or("drive requires --configs")?
                .split(',')
                .filter(|s| !s.is_empty())
                .collect();
            let tenants: Vec<&str> = opts
                .get("tenants")
                .unwrap_or("anon")
                .split(',')
                .filter(|s| !s.is_empty())
                .collect();
            let mut pending = Vec::new();
            let mut i = 0usize;
            for model in &models {
                for config in &configs {
                    let id = format!("{model}|{config}");
                    let tenant = tenants[i % tenants.len()];
                    send(&job_json(&opts, &id, model, config, tenant)?.to_string())?;
                    pending.push(id);
                    i += 1;
                }
            }
            let mut rows = Vec::new();
            while !pending.is_empty() {
                let Some(v) = recv(&mut reader)? else {
                    return Err(format!(
                        "connection closed with {} job(s) pending",
                        pending.len()
                    ));
                };
                let event = v.get("event").and_then(Json::as_str).unwrap_or("");
                if matches!(event, "rejected" | "error") {
                    return Err(format!("drive job refused: {v}"));
                }
                if event != "done" {
                    continue;
                }
                let id = v.get("id").and_then(Json::as_str).unwrap_or("").to_owned();
                if v.get("status").and_then(Json::as_str) != Some("done") {
                    return Err(format!("drive job ended badly: {v}"));
                }
                let digest = v
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("done event without digest: {v}"))?
                    .to_owned();
                let (model, config) = id
                    .split_once('|')
                    .ok_or_else(|| format!("unexpected job id '{id}'"))?;
                rows.push(format!("{model},{config},{digest}"));
                pending.retain(|p| p != &id);
            }
            rows.sort();
            println!("model,config,digest");
            for row in rows {
                println!("{row}");
            }
        }
        "flood" => {
            let model = opts.get("model").ok_or("flood requires --model")?;
            let tenant = opts.get("tenant").unwrap_or("anon");
            let count = opts.num("count", 8)?;
            for i in 0..count {
                let req = job_json(&opts, &format!("flood-{i}"), model, "baseline", tenant)?;
                send(&req.to_string())?;
            }
            let (mut accepted, mut rejected_by_code) = (0u64, BTreeMap::<u64, u64>::new());
            let mut seen = 0;
            while seen < count {
                let Some(v) = recv(&mut reader)? else { break };
                match v.get("event").and_then(Json::as_str) {
                    Some("accepted") => {
                        accepted += 1;
                        seen += 1;
                    }
                    Some("rejected") => {
                        let code = v.get("code").and_then(Json::as_u64).unwrap_or(0);
                        *rejected_by_code.entry(code).or_default() += 1;
                        seen += 1;
                    }
                    _ => {}
                }
            }
            println!("accepted {accepted}");
            for (code, n) in rejected_by_code {
                println!("rejected-{code} {n}");
            }
        }
        other => return Err(format!("unknown verb '{other}' (see --help)")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("limpet-client: {e}");
            ExitCode::FAILURE
        }
    }
}
