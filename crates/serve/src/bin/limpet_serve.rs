//! The `limpet-serve` daemon binary: argument parsing and lifecycle.
//!
//! ```text
//! limpet-serve --listen 127.0.0.1:7070 --workers 4 \
//!     --cache-dir /var/cache/limpet --journal /var/lib/limpet/jobs.journal
//! ```
//!
//! Prints `listening on <addr>` once ready (scripts parse this to learn
//! the port when `--listen` uses port 0) and exits cleanly on
//! SIGINT/SIGTERM: in-flight jobs abort at their next chunk boundary and
//! stay journaled, so the next start resumes them.

use std::path::PathBuf;
use std::process::ExitCode;

use limpet_harness::shutdown;
use serve::{Listen, QuotaConfig, Server, ServerConfig};

const USAGE: &str = "\
limpet-serve — multi-tenant simulation service daemon

USAGE:
    limpet-serve [OPTIONS]

OPTIONS:
    --listen ADDR       TCP listen address (default 127.0.0.1:0; port 0
                        picks a free port, printed on startup)
    --unix PATH         listen on a Unix-domain socket instead of TCP
    --workers N         worker threads (default 2)
    --cache-dir DIR     attach the disk cache tier rooted at DIR
    --journal PATH      job journal for crash recovery
    --max-jobs N        per-tenant concurrent-job limit (default 8)
    --max-cost N        per-job cells*steps budget (default 67108864)
    --queue-depth N     service-wide in-flight cap (default 64)
    --outbox-cap N      per-connection event buffer (default 64)
    --deadline-ms N     default wall-clock budget per job in ms
                        (default 300000; 0 = jobs without their own
                        deadline run unbounded)
    --watchdog-ms N     stuck-worker watchdog grace period in ms
                        (default 1000; 0 disables the watchdog)
    --snapshot-dir DIR  durable mid-trajectory checkpoint store (default
                        <cache-dir>/checkpoints when --cache-dir is set;
                        with neither, checkpointing is disabled)
    --checkpoint-every N
                        checkpoint cadence in completed chunks
                        (default 1: every chunk boundary)
    -h, --help          this help
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut quotas = QuotaConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => config.listen = Listen::Tcp(value("--listen")?),
            "--unix" => config.listen = Listen::Unix(PathBuf::from(value("--unix")?)),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--journal" => config.journal = Some(PathBuf::from(value("--journal")?)),
            "--max-jobs" => {
                quotas.max_jobs_per_tenant = value("--max-jobs")?
                    .parse()
                    .map_err(|e| format!("--max-jobs: {e}"))?;
            }
            "--max-cost" => {
                quotas.max_job_cost = value("--max-cost")?
                    .parse()
                    .map_err(|e| format!("--max-cost: {e}"))?;
            }
            "--queue-depth" => {
                quotas.max_queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--outbox-cap" => {
                config.outbox_cap = value("--outbox-cap")?
                    .parse()
                    .map_err(|e| format!("--outbox-cap: {e}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                config.default_deadline_ms = (ms > 0).then_some(ms);
            }
            "--watchdog-ms" => {
                let ms: u64 = value("--watchdog-ms")?
                    .parse()
                    .map_err(|e| format!("--watchdog-ms: {e}"))?;
                config.watchdog_ms = (ms > 0).then_some(ms);
            }
            "--snapshot-dir" => {
                config.snapshot_dir = Some(PathBuf::from(value("--snapshot-dir")?));
            }
            "--checkpoint-every" => {
                config.checkpoint_every_chunks = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (see --help)")),
        }
    }
    config.quotas = quotas;
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("limpet-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    shutdown::install();
    // LIMPET_NATIVE=1 turns on native-tier promotion for job simulations
    // (LIMPET_NATIVE_THRESHOLD tunes the executed-step trigger); the
    // `stats` verb's per-tier counts show promoted jobs as "native".
    limpet_harness::promotion_from_env();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("limpet-serve: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    server.serve_forever();
    println!("limpet-serve: stopped");
    ExitCode::SUCCESS
}
